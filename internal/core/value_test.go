package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestAbstractTypeNames(t *testing.T) {
	cases := []struct {
		at   AbstractType
		name string
	}{
		{Primitive, "PRIMITIVE"},
		{Ref, "REF"},
		{List, "LIST"},
		{Dict, "DICT"},
		{Struct, "STRUCT"},
		{None, "NONE"},
		{Invalid, "INVALID"},
		{Function, "FUNCTION"},
	}
	for _, c := range cases {
		if got := c.at.String(); got != c.name {
			t.Errorf("%d.String() = %q, want %q", c.at, got, c.name)
		}
		back, err := ParseAbstractType(c.name)
		if err != nil || back != c.at {
			t.Errorf("ParseAbstractType(%q) = %v, %v; want %v", c.name, back, err, c.at)
		}
	}
	if _, err := ParseAbstractType("NOPE"); err == nil {
		t.Error("ParseAbstractType accepted garbage")
	}
	if got := AbstractType(99).String(); got != "AbstractType(99)" {
		t.Errorf("out-of-range String() = %q", got)
	}
}

func TestLocationNames(t *testing.T) {
	for _, l := range []Location{LocNowhere, LocStack, LocHeap, LocGlobal, LocRegister} {
		back, err := ParseLocation(l.String())
		if err != nil || back != l {
			t.Errorf("round trip of %v failed: %v %v", l, back, err)
		}
	}
	if _, err := ParseLocation("ATTIC"); err == nil {
		t.Error("ParseLocation accepted garbage")
	}
}

func TestPrimitiveAccessors(t *testing.T) {
	if v, ok := NewInt(42).Int(); !ok || v != 42 {
		t.Errorf("Int() = %v, %v", v, ok)
	}
	if v, ok := NewFloat(2.5).Float(); !ok || v != 2.5 {
		t.Errorf("Float() = %v, %v", v, ok)
	}
	if v, ok := NewBool(true).Bool(); !ok || !v {
		t.Errorf("Bool() = %v, %v", v, ok)
	}
	if v, ok := NewString("hi").Str(); !ok || v != "hi" {
		t.Errorf("Str() = %v, %v", v, ok)
	}
	// Wrong-kind accessors must fail.
	if _, ok := NewInt(1).Str(); ok {
		t.Error("Str() on int succeeded")
	}
	if _, ok := NewString("x").Int(); ok {
		t.Error("Int() on string succeeded")
	}
	if _, ok := NewNone().Int(); ok {
		t.Error("Int() on None succeeded")
	}
}

func TestCompositeAccessors(t *testing.T) {
	inner := NewInt(1)
	ref := NewRef(inner)
	if ref.Deref() != inner {
		t.Error("Deref lost target")
	}
	if NewInt(1).Deref() != nil {
		t.Error("Deref on primitive not nil")
	}

	l := NewList(NewInt(1), NewInt(2))
	if len(l.Elems()) != 2 {
		t.Errorf("Elems() = %v", l.Elems())
	}
	if NewInt(1).Elems() != nil {
		t.Error("Elems on primitive not nil")
	}

	d := NewDict(DictEntry{NewString("a"), NewInt(1)})
	if len(d.Entries()) != 1 {
		t.Errorf("Entries() = %v", d.Entries())
	}

	s := NewStruct(Field{"x", NewInt(3)}, Field{"y", NewInt(4)})
	if got := s.FieldByName("y"); got == nil || got.String() != "4" {
		t.Errorf("FieldByName(y) = %v", got)
	}
	if s.FieldByName("z") != nil {
		t.Error("FieldByName(z) found phantom field")
	}

	f := NewFunction("fib")
	if n, ok := f.FuncName(); !ok || n != "fib" {
		t.Errorf("FuncName() = %q, %v", n, ok)
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    *Value
		want string
	}{
		{NewInt(-7), "-7"},
		{NewFloat(1.5), "1.5"},
		{NewBool(false), "false"},
		{NewString("a\"b"), `"a\"b"`},
		{NewNone(), "None"},
		{NewInvalid(), "<invalid>"},
		{NewFunction("main"), "<function main>"},
		{NewRef(NewInt(9)), "&9"},
		{NewList(NewInt(1), NewString("x")), `[1, "x"]`},
		{NewDict(DictEntry{NewString("k"), NewInt(2)}), `{"k": 2}`},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
	st := NewStruct(Field{"x", NewInt(1)})
	st.LanguageType = "point"
	if got := st.String(); got != "point{x=1}" {
		t.Errorf("struct String() = %q", got)
	}
}

func TestValueStringCycle(t *testing.T) {
	l := NewList(NewInt(1))
	l.Content = append(l.Elems(), l) // l = [1, l]
	got := l.String()
	if got != "[1, ...]" {
		t.Errorf("cyclic String() = %q", got)
	}
}

func TestValueEqual(t *testing.T) {
	a := NewList(NewInt(1), NewRef(NewString("s")))
	b := NewList(NewInt(1), NewRef(NewString("s")))
	if !a.Equal(b) {
		t.Error("structurally equal values reported unequal")
	}
	b.Elems()[0].Content = int64(2)
	if a.Equal(b) {
		t.Error("different values reported equal")
	}
	if a.Equal(nil) || !(*Value)(nil).Equal(nil) {
		t.Error("nil handling wrong")
	}

	// Address and language type participate in equality.
	c := NewInt(1)
	d := NewInt(1)
	d.Address = 8
	if c.Equal(d) {
		t.Error("values with different addresses reported equal")
	}
	e := NewInt(1)
	e.LanguageType = "long"
	if c.Equal(e) {
		t.Error("values with different language types reported equal")
	}
}

func TestValueEqualCycles(t *testing.T) {
	mk := func() *Value {
		l := NewList(NewInt(1))
		l.Content = append(l.Elems(), l)
		return l
	}
	a, b := mk(), mk()
	if !a.Equal(b) {
		t.Error("identical cyclic structures reported unequal")
	}
	c := NewList(NewInt(2))
	c.Content = append(c.Elems(), c)
	if a.Equal(c) {
		t.Error("different cyclic structures reported equal")
	}
}

func TestSortedEntries(t *testing.T) {
	d := NewDict(
		DictEntry{NewString("b"), NewInt(2)},
		DictEntry{NewString("a"), NewInt(1)},
	)
	es := d.SortedEntries()
	if k, _ := es[0].Key.Str(); k != "a" {
		t.Errorf("SortedEntries first key = %q", k)
	}
	// Original untouched.
	if k, _ := d.Entries()[0].Key.Str(); k != "b" {
		t.Error("SortedEntries mutated the dict")
	}
}

// randomValue builds a random value tree of bounded depth, with occasional
// shared subvalues, for property tests.
func randomValue(r *rand.Rand, depth int, pool *[]*Value) *Value {
	if depth <= 0 || r.Intn(3) == 0 {
		switch r.Intn(6) {
		case 0:
			return NewInt(r.Int63() - r.Int63())
		case 1:
			return NewFloat(r.NormFloat64())
		case 2:
			return NewBool(r.Intn(2) == 0)
		case 3:
			return NewString(randString(r))
		case 4:
			return NewNone()
		default:
			return NewFunction(randString(r))
		}
	}
	// Occasionally reuse an existing value to create sharing.
	if len(*pool) > 0 && r.Intn(4) == 0 {
		return (*pool)[r.Intn(len(*pool))]
	}
	var v *Value
	switch r.Intn(4) {
	case 0:
		v = NewRef(randomValue(r, depth-1, pool))
	case 1:
		n := r.Intn(4)
		elems := make([]*Value, n)
		for i := range elems {
			elems[i] = randomValue(r, depth-1, pool)
		}
		v = NewList(elems...)
	case 2:
		n := r.Intn(3)
		entries := make([]DictEntry, n)
		for i := range entries {
			entries[i] = DictEntry{randomValue(r, depth-1, pool), randomValue(r, depth-1, pool)}
		}
		v = NewDict(entries...)
	default:
		n := r.Intn(3)
		fields := make([]Field, n)
		for i := range fields {
			fields[i] = Field{randString(r), randomValue(r, depth-1, pool)}
		}
		v = NewStruct(fields...)
		v.LanguageType = "S"
	}
	v.Address = uint64(r.Intn(1 << 16))
	v.Location = Location(r.Intn(5))
	*pool = append(*pool, v)
	return v
}

func randString(r *rand.Rand) string {
	const alpha = "abcdefgh_日本"
	rs := []rune(alpha)
	n := r.Intn(6)
	out := make([]rune, n)
	for i := range out {
		out[i] = rs[r.Intn(len(rs))]
	}
	return string(out)
}

// valueGen adapts randomValue to testing/quick.
type valueGen struct{ V *Value }

// Generate implements quick.Generator.
func (valueGen) Generate(r *rand.Rand, size int) reflect.Value {
	var pool []*Value
	return reflect.ValueOf(valueGen{randomValue(r, 4, &pool)})
}

func TestQuickEqualReflexive(t *testing.T) {
	f := func(g valueGen) bool { return g.V.Equal(g.V) }
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickStringTerminates(t *testing.T) {
	// String must terminate and be non-panicking for arbitrary graphs.
	f := func(g valueGen) bool { _ = g.V.String(); return true }
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
