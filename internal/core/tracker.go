package core

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Sentinel errors shared by all trackers.
var (
	// ErrNoProgram is returned by control and inspection calls made
	// before LoadProgram.
	ErrNoProgram = errors.New("easytracker: no program loaded")
	// ErrNotStarted is returned by calls that require Start first.
	ErrNotStarted = errors.New("easytracker: inferior not started")
	// ErrExited is returned by control calls after the inferior exited.
	ErrExited = errors.New("easytracker: inferior has exited")
	// ErrUnknownVariable is returned by Watch for an unresolvable
	// variable identifier.
	ErrUnknownVariable = errors.New("easytracker: unknown variable")
	// ErrUnknownFunction is returned for breakpoints or tracking on an
	// unknown function.
	ErrUnknownFunction = errors.New("easytracker: unknown function")
	// ErrBadLine is returned for a breakpoint on a line that holds no
	// executable code.
	ErrBadLine = errors.New("easytracker: no code at line")
	// ErrUnsupported is returned by tracker-specific extensions invoked
	// on a tracker that does not provide them.
	ErrUnsupported = errors.New("easytracker: operation not supported by this tracker")
	// ErrBadQuery is returned by probe-arming calls whose WithCondition
	// expression fails to compile or type-check, and by trace-query tools
	// for a malformed query. The wrapped error carries the position and
	// cause of the compile failure.
	ErrBadQuery = errors.New("easytracker: invalid query expression")
)

// LoadConfig carries the options of LoadProgram.
type LoadConfig struct {
	// Args are the inferior's command-line arguments.
	Args []string
	// Stdout and Stderr receive the inferior's output; nil discards it.
	Stdout io.Writer
	Stderr io.Writer
	// Stdin provides the inferior's input; nil means empty input.
	Stdin io.Reader
	// TrackHeap enables allocator interposition so the tracker maintains
	// a map of live heap blocks and their sizes (the paper's LD_PRELOAD
	// shim). Only meaningful for compiled inferiors.
	TrackHeap bool
	// Source optionally supplies the program text directly instead of
	// reading the file at the path given to LoadProgram. The path is
	// still used as the file name in positions and diagnostics.
	Source string
	// CommandTimeout bounds each debugger round trip for trackers that
	// drive a debugger over a pipe; see WithCommandTimeout.
	CommandTimeout time.Duration
	// ExecTimeout bounds the wall-clock time of each execution-resuming
	// call; see WithExecutionTimeout.
	ExecTimeout time.Duration
	// Budgets are the inferior's resource budgets; see WithBudgets.
	Budgets Budgets
	// Obs configures the tracker's instrumentation; see WithObservability.
	Obs ObsConfig
	// ASTInterpreter selects the tree-walking reference engine for
	// interpreter-based trackers; see WithASTInterpreter.
	ASTInterpreter bool
	// Redial configures the remote client's reconnect loop; nil means the
	// default policy. See WithRedialPolicy. Local trackers ignore it.
	Redial *RedialPolicy
	// Recording enables live omniscient recording: every trace event is
	// captured as a state delta (plus periodic checkpoints), so the session
	// becomes navigable backwards through the TimeTraveler capability. See
	// WithRecording. Ignored by trackers that cannot record.
	Recording bool
	// RecordInterval is the checkpoint interval of the recording in steps;
	// 0 picks the adaptive policy (checkpoint spacing grows with the trace,
	// keeping seek cost O(sqrt n)).
	RecordInterval int
}

// LoadOption customizes LoadProgram.
type LoadOption func(*LoadConfig)

// WithArgs sets the inferior's argv (excluding argv[0]).
func WithArgs(args ...string) LoadOption {
	return func(c *LoadConfig) { c.Args = args }
}

// WithStdout routes the inferior's standard output to w.
func WithStdout(w io.Writer) LoadOption {
	return func(c *LoadConfig) { c.Stdout = w }
}

// WithStderr routes the inferior's standard error to w.
func WithStderr(w io.Writer) LoadOption {
	return func(c *LoadConfig) { c.Stderr = w }
}

// WithStdin provides the inferior's standard input.
func WithStdin(r io.Reader) LoadOption {
	return func(c *LoadConfig) { c.Stdin = r }
}

// WithHeapTracking enables allocator interposition (compiled inferiors).
func WithHeapTracking() LoadOption {
	return func(c *LoadConfig) { c.TrackHeap = true }
}

// WithSource supplies the program text in memory; the LoadProgram path is
// used only as a display name.
func WithSource(src string) LoadOption {
	return func(c *LoadConfig) { c.Source = src }
}

// WithASTInterpreter makes an interpreter-based tracker execute the program
// on its tree-walking engine instead of the default bytecode VM. The two
// engines are observably equivalent (same output, trace events and state);
// the tree-walker is kept as the differential-testing reference and as an
// escape hatch. Ignored by trackers that drive external debuggers.
func WithASTInterpreter() LoadOption {
	return func(c *LoadConfig) { c.ASTInterpreter = true }
}

// WithRecording enables live omniscient recording on trackers that support
// it: the session records every executed step as a delta-encoded trace with
// a full-state checkpoint every interval steps (interval <= 0 picks the
// adaptive O(sqrt n) policy), and the TimeTraveler capability — StepBack,
// SeekTo, reverse watches — becomes available post-hoc on the live session.
func WithRecording(interval int) LoadOption {
	return func(c *LoadConfig) {
		c.Recording = true
		c.RecordInterval = interval
	}
}

// ApplyLoadOptions folds opts into a LoadConfig.
func ApplyLoadOptions(opts []LoadOption) LoadConfig {
	var c LoadConfig
	for _, o := range opts {
		o(&c)
	}
	return c
}

// BreakConfig carries the options of the probe-arming calls. Every probe
// kind — line and function breakpoints, watchpoints, tracked functions —
// accepts the same option set (the unified Probe surface).
type BreakConfig struct {
	// MaxDepth, when positive, restricts the breakpoint to fire only when
	// the current frame depth (entry frame = depth 0) is strictly below
	// the given value — the paper's maxdepth semantic.
	MaxDepth int
	// Condition is a query-language expression (internal/query, e.g.
	// `x > 10 && function == "fib"`) evaluated on every candidate hit;
	// the probe pauses only when the condition matches. The empty string
	// is the always-true condition. A condition that fails to compile
	// surfaces as ErrBadQuery from the arming call.
	Condition string
	// IgnoreHits suppresses the first n hits that pass the condition
	// (GDB's ignore count).
	IgnoreHits int
	// OneShot disarms the probe after its first reported hit (GDB's
	// temporary breakpoint).
	OneShot bool
}

// BreakOption customizes probe placement (BreakBeforeLine, BreakBeforeFunc,
// TrackFunction, Watch, and Arm).
type BreakOption func(*BreakConfig)

// WithMaxDepth restricts a breakpoint to frame depths below d.
func WithMaxDepth(d int) BreakOption {
	return func(c *BreakConfig) { c.MaxDepth = d }
}

// WithCondition attaches a query-language condition to a probe: the probe
// pauses the inferior only on hits where expr evaluates to true. The public
// facade re-exports this as easytracker.When.
func WithCondition(expr string) BreakOption {
	return func(c *BreakConfig) { c.Condition = expr }
}

// WithIgnoreHits suppresses the first n condition-passing hits of a probe.
func WithIgnoreHits(n int) BreakOption {
	return func(c *BreakConfig) { c.IgnoreHits = n }
}

// WithOneShot disarms the probe after its first reported hit.
func WithOneShot() BreakOption {
	return func(c *BreakConfig) { c.OneShot = true }
}

// ApplyBreakOptions folds opts into a BreakConfig.
func ApplyBreakOptions(opts []BreakOption) BreakConfig {
	var c BreakConfig
	for _, o := range opts {
		o(&c)
	}
	return c
}

// Tracker is the language-agnostic control and inspection interface of
// EasyTracker (paper Section II-B). Control functions return only when the
// inferior is paused or terminated. A Tracker is not safe for concurrent
// use; it is driven by one tool goroutine.
type Tracker interface {
	// LoadProgram loads (and for compiled languages, builds) the program
	// at path. It must be called before any other method.
	LoadProgram(path string, opts ...LoadOption) error

	// Start launches the inferior and pauses it at its entry point.
	Start() error
	// Resume continues execution until the next pause condition
	// (breakpoint, watchpoint, tracked-function boundary) or termination.
	Resume() error
	// Step executes one source line, entering calls (step into).
	Step() error
	// Next executes one source line, skipping over calls (step over).
	Next() error
	// Terminate kills the inferior and releases tracker resources.
	// It is safe to call after the inferior exited on its own.
	Terminate() error

	// Arm installs one probe — the unified arming surface behind the
	// four convenience methods below. Every probe kind accepts the same
	// option set: maxdepth, a query-language condition, an ignore count
	// and one-shot disarming.
	Arm(p Probe) error

	// BreakBeforeLine pauses the inferior just before the given source
	// line executes. The empty file means the main program file.
	// Equivalent to Arm(LineProbe(file, line, opts...)).
	BreakBeforeLine(file string, line int, opts ...BreakOption) error
	// BreakBeforeFunc pauses the inferior just before the named function
	// begins executing, with arguments initialized and inspectable.
	// Equivalent to Arm(FuncProbe(name, opts...)).
	BreakBeforeFunc(name string, opts ...BreakOption) error
	// TrackFunction pauses the inferior at the beginning (just after
	// entering) and at the end (just before returning) of every
	// execution of the named function.
	// Equivalent to Arm(TrackProbe(name, opts...)).
	TrackFunction(name string, opts ...BreakOption) error
	// Watch pauses the inferior every time the variable identified by
	// varID is modified. Identifiers are "name" (searched in the current
	// scope chain), "func:name" (local of func) or "::name" (global).
	// Equivalent to Arm(WatchProbe(varID, opts...)).
	Watch(varID string, opts ...BreakOption) error

	// PauseReason reports why the inferior is currently paused.
	PauseReason() PauseReason
	// ExitCode returns the inferior's exit status; ok is false while the
	// inferior has not terminated (the paper's get_exit_code() is None).
	ExitCode() (code int, ok bool)
	// CurrentFrame returns the innermost frame of the paused inferior,
	// linked to its callers via Parent.
	CurrentFrame() (*Frame, error)
	// GlobalVariables returns the program's global variables.
	GlobalVariables() ([]*Variable, error)
	// Position returns the source position of the next line to execute.
	Position() (file string, line int)
	// LastLine returns the line that finished executing most recently,
	// or zero at entry (Listing 6's last_lineno).
	LastLine() int
	// SourceLines returns the inferior's main source file, split into
	// lines, for tools that render the program listing.
	SourceLines() ([]string, error)
}

// RegisterInspector is implemented by trackers that expose machine
// registers (the paper's get_registers_gdb, MiniGDB tracker only).
type RegisterInspector interface {
	// Registers returns the register file as name -> value.
	Registers() (map[string]uint64, error)
}

// MemoryInspector is implemented by trackers that expose raw memory (the
// paper's get_value_at_gdb, MiniGDB tracker only).
type MemoryInspector interface {
	// ValueAt reads size bytes of inferior memory at addr.
	ValueAt(addr uint64, size int) ([]byte, error)
	// MemorySegments describes the mapped regions as (name, start, size)
	// triples so viewers can render memory as a one-dimensional array.
	MemorySegments() []Segment
}

// Segment describes one mapped memory region of a compiled inferior.
type Segment struct {
	Name  string
	Start uint64
	Size  uint64
}

// HeapInspector is implemented by trackers that maintain the interposed
// heap block map.
type HeapInspector interface {
	// HeapBlocks returns the live heap allocations as address -> size.
	HeapBlocks() (map[uint64]uint64, error)
}

// Factory builds a fresh tracker of one kind.
type Factory func() Tracker

var (
	registryMu sync.RWMutex
	registry   = map[string]Factory{}
)

// RegisterTracker installs a tracker factory under the given kind name
// ("minipy", "minigdb", "trace"). It panics on duplicate registration,
// matching database/sql's driver convention.
func RegisterTracker(kind string, f Factory) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[kind]; dup {
		panic(fmt.Sprintf("core: duplicate tracker registration for %q", kind))
	}
	registry[kind] = f
}

// NewTracker instantiates a tracker by kind. This is the init_tracker
// analog of the paper's Listing 1.
func NewTracker(kind string) (Tracker, error) {
	registryMu.RLock()
	f, ok := registry[kind]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("easytracker: unknown tracker kind %q (registered: %s)",
			kind, strings.Join(TrackerKinds(), ", "))
	}
	return f(), nil
}

// TrackerKinds lists the registered tracker kinds, sorted.
func TrackerKinds() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	kinds := make([]string, 0, len(registry))
	for k := range registry {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}

// SplitVarID splits a variable identifier into its function and variable
// parts. "fib:n" -> ("fib", "n"), "::g" -> ("::", "g"), "x" -> ("", "x").
func SplitVarID(id string) (fn, name string) {
	if strings.HasPrefix(id, "::") {
		return "::", id[2:]
	}
	if i := strings.Index(id, ":"); i >= 0 {
		return id[:i], id[i+1:]
	}
	return "", id
}
