package core

import (
	"strings"
	"testing"
)

func sampleStack() *Frame {
	main := &Frame{
		Name: "main", Depth: 0, File: "p.c", Line: 20,
		Vars: []*Variable{{Name: "argc", Value: NewInt(1)}},
	}
	f := &Frame{
		Name: "f", Depth: 1, File: "p.c", Line: 7,
		Vars: []*Variable{
			{Name: "x", Value: NewInt(3)},
			{Name: "p", Value: NewRef(NewInt(3))},
		},
		Parent: main,
	}
	return f
}

func TestFrameLookupAndVariables(t *testing.T) {
	f := sampleStack()
	if v := f.Lookup("x"); v == nil || v.Value.String() != "3" {
		t.Errorf("Lookup(x) = %v", v)
	}
	if f.Lookup("nope") != nil {
		t.Error("Lookup found phantom variable")
	}
	m := f.Variables()
	if len(m) != 2 || m["p"] == nil {
		t.Errorf("Variables() = %v", m)
	}
}

func TestFrameStackOrder(t *testing.T) {
	f := sampleStack()
	s := f.Stack()
	if len(s) != 2 || s[0].Name != "f" || s[1].Name != "main" {
		t.Errorf("Stack() order wrong: %v", s)
	}
}

func TestFrameStrings(t *testing.T) {
	f := sampleStack()
	if got := f.String(); got != "f at p.c:7 (depth 1)" {
		t.Errorf("String() = %q", got)
	}
	bt := f.Backtrace()
	for _, want := range []string{"#1 f at p.c:7", "#0 main at p.c:20", "x = 3", "argc = 1"} {
		if !strings.Contains(bt, want) {
			t.Errorf("Backtrace missing %q in:\n%s", want, bt)
		}
	}
	if got := f.Vars[0].String(); got != "x = 3" {
		t.Errorf("Variable.String() = %q", got)
	}
}

func TestFrameEqual(t *testing.T) {
	a, b := sampleStack(), sampleStack()
	if !a.Equal(b) {
		t.Error("identical stacks unequal")
	}
	b.Parent.Line = 21
	if a.Equal(b) {
		t.Error("stacks with different parents equal")
	}
	if a.Equal(nil) {
		t.Error("frame equal to nil")
	}
	var n *Frame
	if !n.Equal(nil) {
		t.Error("nil frame not equal to nil")
	}
	c := sampleStack()
	c.Vars = c.Vars[:1]
	if a.Equal(c) {
		t.Error("stacks with different var counts equal")
	}
}

func TestPauseReasonStrings(t *testing.T) {
	cases := []struct {
		r    PauseReason
		want string
	}{
		{PauseReason{Type: PauseWatch, Variable: "n", Old: NewInt(1), New: NewInt(2), File: "a.py", Line: 3},
			`WATCH n: 1 -> 2 at a.py:3`},
		{PauseReason{Type: PauseCall, Function: "fib", File: "a.py", Line: 1},
			"CALL fib at a.py:1"},
		{PauseReason{Type: PauseReturn, Function: "fib", ReturnValue: NewInt(8), File: "a.py", Line: 4},
			"RETURN fib -> 8 at a.py:4"},
		{PauseReason{Type: PauseBreakpoint, File: "a.py", Line: 9},
			"BREAKPOINT at a.py:9"},
		{PauseReason{Type: PauseBreakpoint, Function: "g", File: "a.py", Line: 9},
			"BREAKPOINT g at a.py:9"},
		{PauseReason{Type: PauseExited, ExitCode: 3}, "EXITED 3"},
		{PauseReason{Type: PauseStep, File: "a.py", Line: 2}, "STEP at a.py:2"},
		{PauseReason{Type: PauseNone}, "NONE"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestParsePauseReasonType(t *testing.T) {
	for _, p := range []PauseReasonType{PauseNone, PauseEntry, PauseStep,
		PauseBreakpoint, PauseWatch, PauseCall, PauseReturn, PauseExited} {
		back, err := ParsePauseReasonType(p.String())
		if err != nil || back != p {
			t.Errorf("round trip of %v failed", p)
		}
	}
	if _, err := ParsePauseReasonType("XXX"); err == nil {
		t.Error("ParsePauseReasonType accepted garbage")
	}
}

func TestSplitVarID(t *testing.T) {
	cases := []struct{ id, fn, name string }{
		{"x", "", "x"},
		{"fib:n", "fib", "n"},
		{"::g", "::", "g"},
		{"a:b:c", "a", "b:c"},
	}
	for _, c := range cases {
		fn, name := SplitVarID(c.id)
		if fn != c.fn || name != c.name {
			t.Errorf("SplitVarID(%q) = %q, %q; want %q, %q", c.id, fn, name, c.fn, c.name)
		}
	}
}

func TestRegistry(t *testing.T) {
	RegisterTracker("test-kind", func() Tracker { return nil })
	defer func() {
		registryMu.Lock()
		delete(registry, "test-kind")
		registryMu.Unlock()
	}()
	if _, err := NewTracker("test-kind"); err != nil {
		t.Errorf("NewTracker(test-kind): %v", err)
	}
	if _, err := NewTracker("no-such"); err == nil {
		t.Error("NewTracker accepted unknown kind")
	}
	found := false
	for _, k := range TrackerKinds() {
		if k == "test-kind" {
			found = true
		}
	}
	if !found {
		t.Errorf("TrackerKinds() = %v missing test-kind", TrackerKinds())
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	RegisterTracker("test-kind", func() Tracker { return nil })
}

func TestApplyOptions(t *testing.T) {
	lc := ApplyLoadOptions([]LoadOption{
		WithArgs("a", "b"), WithHeapTracking(), WithSource("src"),
	})
	if len(lc.Args) != 2 || !lc.TrackHeap || lc.Source != "src" {
		t.Errorf("LoadConfig = %+v", lc)
	}
	bc := ApplyBreakOptions([]BreakOption{WithMaxDepth(3)})
	if bc.MaxDepth != 3 {
		t.Errorf("BreakConfig = %+v", bc)
	}
}
