package core

import (
	"errors"
	"testing"
	"time"
)

// fakeTracker is a scripted Tracker for async-wrapper tests.
type fakeTracker struct {
	steps      int
	maxSteps   int
	terminated bool
	started    bool
}

func (f *fakeTracker) LoadProgram(string, ...LoadOption) error { return nil }
func (f *fakeTracker) Start() error {
	f.started = true
	return nil
}
func (f *fakeTracker) Resume() error { return f.Step() }
func (f *fakeTracker) Step() error {
	if !f.started {
		return ErrNotStarted
	}
	if f.steps >= f.maxSteps {
		return ErrExited
	}
	f.steps++
	return nil
}
func (f *fakeTracker) Next() error      { return f.Step() }
func (f *fakeTracker) Terminate() error { f.terminated = true; return nil }
func (f *fakeTracker) BreakBeforeLine(string, int, ...BreakOption) error {
	return nil
}
func (f *fakeTracker) BreakBeforeFunc(string, ...BreakOption) error { return nil }
func (f *fakeTracker) TrackFunction(string, ...BreakOption) error   { return nil }
func (f *fakeTracker) Watch(string, ...BreakOption) error           { return nil }
func (f *fakeTracker) Arm(Probe) error                              { return nil }
func (f *fakeTracker) PauseReason() PauseReason {
	if f.steps >= f.maxSteps {
		return PauseReason{Type: PauseExited}
	}
	if f.steps == 0 {
		return PauseReason{Type: PauseEntry, Line: 1}
	}
	return PauseReason{Type: PauseStep, Line: f.steps + 1}
}
func (f *fakeTracker) ExitCode() (int, bool) {
	if f.steps >= f.maxSteps {
		return 7, true
	}
	return 0, false
}
func (f *fakeTracker) CurrentFrame() (*Frame, error) {
	return &Frame{Name: "main", Line: f.steps + 1}, nil
}
func (f *fakeTracker) GlobalVariables() ([]*Variable, error) { return nil, nil }
func (f *fakeTracker) Position() (string, int)               { return "fake", f.steps + 1 }
func (f *fakeTracker) LastLine() int                         { return f.steps }
func (f *fakeTracker) SourceLines() ([]string, error)        { return []string{"x"}, nil }

func recvEvent(t *testing.T, a *AsyncTracker) AsyncEvent {
	t.Helper()
	select {
	case ev := <-a.Events():
		return ev
	case <-time.After(2 * time.Second):
		t.Fatal("no async event")
		return AsyncEvent{}
	}
}

func TestAsyncControlDeliversEvents(t *testing.T) {
	fk := &fakeTracker{maxSteps: 3}
	a := NewAsync(fk)
	defer a.Close()

	a.Start()
	ev := recvEvent(t, a)
	if ev.Err != nil || ev.Reason.Type != PauseEntry {
		t.Fatalf("start event = %+v", ev)
	}
	a.Step()
	a.Step()
	if ev = recvEvent(t, a); ev.Reason.Type != PauseStep || ev.Reason.Line != 2 {
		t.Errorf("step 1 event = %+v", ev)
	}
	if ev = recvEvent(t, a); ev.Reason.Line != 3 {
		t.Errorf("step 2 event = %+v", ev)
	}
}

func TestAsyncExitAndErrors(t *testing.T) {
	fk := &fakeTracker{maxSteps: 1}
	a := NewAsync(fk)
	defer a.Close()
	a.Start()
	recvEvent(t, a)
	a.Step() // reaches exit
	ev := recvEvent(t, a)
	if !ev.Exited || ev.ExitCode != 7 {
		t.Errorf("exit event = %+v", ev)
	}
	a.Step() // stepping after exit errors
	ev = recvEvent(t, a)
	if !errors.Is(ev.Err, ErrExited) {
		t.Errorf("post-exit event = %+v", ev)
	}
}

func TestAsyncDoSerializesWithCommands(t *testing.T) {
	fk := &fakeTracker{maxSteps: 100}
	a := NewAsync(fk)
	defer a.Close()
	a.Start()
	recvEvent(t, a)
	for i := 0; i < 10; i++ {
		a.Step()
	}
	// Do waits for the queued steps, then observes a consistent state.
	err := a.Do(func(tr Tracker) error {
		fr, err := tr.CurrentFrame()
		if err != nil {
			return err
		}
		if fr.Line != 11 {
			t.Errorf("frame line = %d, want 11", fr.Line)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Drain the 10 step events.
	for i := 0; i < 10; i++ {
		recvEvent(t, a)
	}
}

func TestAsyncCloseTerminates(t *testing.T) {
	fk := &fakeTracker{maxSteps: 5}
	a := NewAsync(fk)
	a.Start()
	recvEvent(t, a)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if !fk.terminated {
		t.Error("Terminate not called on Close")
	}
	// Events channel closes after Close.
	if _, open := <-a.Events(); open {
		t.Error("events channel still open")
	}
	// Double close is safe.
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}
