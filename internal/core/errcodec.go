package core

import (
	"errors"
	"fmt"
	"time"
)

// This file is the wire codec for the typed error model: a *TrackerError —
// including which package sentinel it matches — serialized to JSON and
// reconstructed on the other side of a connection so that
// errors.Is(err, ErrCommandTimeout) etc. hold identically for local and
// remote trackers. The remote session subsystem (internal/remote) is the
// first consumer; traces or logs that want durable, typed failures can use
// the same codec.

// errorCodes maps wire code names onto the package sentinels. Codes are
// stable protocol vocabulary: renaming one is a wire-format change.
var errorCodes = []struct {
	code string
	err  error
}{
	{"no_program", ErrNoProgram},
	{"not_started", ErrNotStarted},
	{"exited", ErrExited},
	{"unknown_variable", ErrUnknownVariable},
	{"unknown_function", ErrUnknownFunction},
	{"bad_line", ErrBadLine},
	{"unsupported", ErrUnsupported},
	{"bad_query", ErrBadQuery},
	{"command_timeout", ErrCommandTimeout},
	{"session_lost", ErrSessionLost},
	{"inferior_crash", ErrInferiorCrash},
	{"server_busy", ErrServerBusy},
	{"server_draining", ErrServerDraining},
}

// ErrorCode names the first package sentinel err matches, or "" when it
// matches none (an ordinary error whose type does not survive the wire).
func ErrorCode(err error) string {
	for _, ec := range errorCodes {
		if errors.Is(err, ec.err) {
			return ec.code
		}
	}
	return ""
}

// SentinelFor returns the sentinel behind a wire code, or nil for an unknown
// or empty code (forward compatibility: an unknown code decodes to an
// ordinary error rather than failing).
func SentinelFor(code string) error {
	for _, ec := range errorCodes {
		if ec.code == code {
			return ec.err
		}
	}
	return nil
}

// ErrorJSON is the serializable form of a tracker failure: the structured
// *TrackerError fields plus the sentinel code and rendered message of the
// underlying cause.
type ErrorJSON struct {
	Op        string   `json:"op,omitempty"`
	Kind      string   `json:"kind,omitempty"`
	File      string   `json:"file,omitempty"`
	Line      int      `json:"line,omitempty"`
	Recovery  string   `json:"recovery,omitempty"`
	Lost      []string `json:"lost,omitempty"`
	Trail     []string `json:"trail,omitempty"`
	Backtrace []string `json:"backtrace,omitempty"`
	// Code names the package sentinel the error matches ("session_lost",
	// "exited", ...); empty when it matches none.
	Code string `json:"code,omitempty"`
	// Msg is the rendered message of the underlying cause.
	Msg string `json:"msg,omitempty"`
	// RetryAfter is the server's retry-after hint in nanoseconds for
	// retryable refusals (server_busy, server_draining); zero means none.
	RetryAfter int64 `json:"retry_after,omitempty"`
}

// EncodeError converts err into its serializable form. A nil err encodes to
// nil. Errors that are not *TrackerError still carry their sentinel code and
// message, so plain errors survive with their errors.Is identity.
func EncodeError(err error) *ErrorJSON {
	if err == nil {
		return nil
	}
	ej := &ErrorJSON{Code: ErrorCode(err), Msg: err.Error(), RetryAfter: int64(RetryAfterHint(err))}
	var te *TrackerError
	if errors.As(err, &te) {
		ej.Op = te.Op
		ej.Kind = te.Kind
		ej.File = te.File
		ej.Line = te.Line
		ej.Lost = te.Lost
		ej.Trail = te.Trail
		ej.Backtrace = te.Backtrace
		switch te.Recovery {
		case RecoveryRestarted:
			ej.Recovery = "restarted"
		case RecoveryFailed:
			ej.Recovery = "failed"
		}
		if te.Err != nil {
			ej.Msg = te.Err.Error()
		}
	}
	return ej
}

// codedError is the reconstructed underlying cause: it renders the original
// message and unwraps to the sentinel named by the wire code, so errors.Is
// works identically on both sides of the connection.
type codedError struct {
	sentinel error
	msg      string
}

func (e *codedError) Error() string {
	if e.msg != "" {
		return e.msg
	}
	if e.sentinel != nil {
		return e.sentinel.Error()
	}
	return "unknown error"
}

func (e *codedError) Unwrap() error { return e.sentinel }

// DecodeError reconstructs the error. When the encoded form carried
// *TrackerError structure (an Op or Kind), the result is a *TrackerError
// with all structured fields restored; otherwise it is a plain error. In
// both cases errors.Is against the sentinel named by Code holds.
func (e *ErrorJSON) DecodeError() error {
	if e == nil {
		return nil
	}
	inner := &codedError{sentinel: SentinelFor(e.Code), msg: e.Msg}
	var cause error = inner
	if e.RetryAfter > 0 {
		// Re-wrap the hint so the receiving side's redial policy can
		// honor it. The encoded message already rendered the hint, so
		// the wrapper reuses it verbatim instead of re-rendering.
		cause = &RetryAfterError{After: time.Duration(e.RetryAfter), Err: inner, msg: e.Msg}
	}
	if e.Op == "" && e.Kind == "" {
		if inner.sentinel == nil && inner.msg == "" {
			return errors.New("core: empty wire error")
		}
		return cause
	}
	te := &TrackerError{
		Op: e.Op, Kind: e.Kind, File: e.File, Line: e.Line,
		Lost: e.Lost, Trail: e.Trail, Backtrace: e.Backtrace,
		Err: cause,
	}
	switch e.Recovery {
	case "restarted":
		te.Recovery = RecoveryRestarted
	case "failed":
		te.Recovery = RecoveryFailed
	case "", "none":
		te.Recovery = RecoveryNone
	default:
		// Unknown recovery statuses (a newer peer) degrade to "none"
		// rather than failing the decode; the message still tells the
		// story.
		te.Recovery = RecoveryNone
	}
	return te
}

// RoundTripError is EncodeError followed by DecodeError — the identity a
// remote tracker applies to every error it relays. Exposed for tests
// asserting codec fidelity.
func RoundTripError(err error) error {
	if err == nil {
		return nil
	}
	rt := EncodeError(err).DecodeError()
	if rt == nil {
		return fmt.Errorf("core: error round trip lost %v", err)
	}
	return rt
}
