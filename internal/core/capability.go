package core

// StateProvider is implemented by trackers that expose the full inspection
// snapshot in one call (both built-in live trackers and the trace replayer
// do). Tools prefer it over assembling CurrentFrame + GlobalVariables +
// PauseReason by hand.
type StateProvider interface {
	// State returns the full snapshot (frames, globals, pause reason).
	State() (*State, error)
}

// TrackerUnwrapper is implemented by tracker wrappers (middleware, future
// decorators) that want capability probing to see through them. As and
// CapabilitiesOf follow the chain.
type TrackerUnwrapper interface {
	// UnwrapTracker returns the wrapped tracker.
	UnwrapTracker() Tracker
}

// CapabilityGate is implemented by tracker proxies whose one concrete type
// carries every extension method but whose backing tracker may not provide
// them all — the remote client tracker is the canonical case: it forwards
// Registers() over the wire, but a MiniPy backend has none to forward. As
// consults the gate after a successful type assert, passing a nil pointer to
// the requested interface type ((*RegisterInspector)(nil), ...); returning
// false makes the proxy present exactly its backend's capability surface.
type CapabilityGate interface {
	// SupportsCapability reports whether the capability interface
	// identified by ptr (a nil *T for the requested interface T) is truly
	// provided. Unknown types should return true.
	SupportsCapability(ptr any) bool
}

// CapabilitySet reports which optional extension interfaces a tracker
// provides, so tools can adapt (or refuse early with a clear message)
// instead of scattering raw type asserts. It is JSON-serializable: a remote
// tracker session advertises its backend's set in the connection handshake.
type CapabilitySet struct {
	// Registers: the tracker implements RegisterInspector.
	Registers bool
	// Memory: the tracker implements MemoryInspector.
	Memory bool
	// Heap: the tracker implements HeapInspector.
	Heap bool
	// State: the tracker implements StateProvider.
	State bool
	// Stats: the tracker implements StatsProvider (instrument snapshots).
	Stats bool
	// Spans: the tracker implements SpanProvider (completed-span dumps).
	Spans bool
	// Interrupt: the tracker implements Interrupter (runs can be paused
	// from another goroutine).
	Interrupt bool
	// ConditionalBreak: the tracker implements ConditionalBreaker (probe
	// conditions are evaluated inferior-side before pausing).
	ConditionalBreak bool
	// TimeTravel: the tracker implements TimeTraveler (execution history is
	// recorded and the session can step backwards or seek to any step).
	TimeTravel bool
	// ReverseWatch: the tracker implements ReverseWatcher (reverse
	// watchpoints answered from the recording's delta index).
	ReverseWatch bool
}

// CapabilitiesOf probes tr (and anything it wraps) for the extension
// interfaces.
func CapabilitiesOf(tr Tracker) CapabilitySet {
	var c CapabilitySet
	_, c.Registers = As[RegisterInspector](tr)
	_, c.Memory = As[MemoryInspector](tr)
	_, c.Heap = As[HeapInspector](tr)
	_, c.State = As[StateProvider](tr)
	_, c.Stats = As[StatsProvider](tr)
	_, c.Spans = As[SpanProvider](tr)
	_, c.Interrupt = As[Interrupter](tr)
	_, c.ConditionalBreak = As[ConditionalBreaker](tr)
	_, c.TimeTravel = As[TimeTraveler](tr)
	_, c.ReverseWatch = As[ReverseWatcher](tr)
	return c
}

// As returns tr viewed as the extension interface T, following
// TrackerUnwrapper chains. It is the typed accessor tools use instead of a
// raw type assert:
//
//	if regs, ok := core.As[core.RegisterInspector](tr); ok { ... }
func As[T any](tr Tracker) (T, bool) {
	for tr != nil {
		if v, ok := tr.(T); ok {
			// A gated proxy can decline interfaces its backend lacks
			// even though its concrete type has the methods.
			if g, gated := tr.(CapabilityGate); !gated || g.SupportsCapability((*T)(nil)) {
				return v, true
			}
		}
		u, ok := tr.(TrackerUnwrapper)
		if !ok {
			break
		}
		tr = u.UnwrapTracker()
	}
	var zero T
	return zero, false
}
