// Package core defines the language-agnostic, serializable representation of
// a paused program's state, the pause-reason taxonomy, and the Tracker
// interface implemented by every tracker (MiniPy, MiniGDB/MI, trace replay).
//
// The model mirrors Section II-B2 of the EasyTracker paper: a paused program
// is a stack of Frames; each Frame holds named Variables; each Variable holds
// a Value. A Value carries an abstract type (what kind of thing it is across
// languages), a location in the conceptual memory of the program (stack,
// heap, global space, or a register), a concrete address when meaningful, and
// the type name in the inferior language's own terminology.
package core

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// AbstractType classifies a Value independently of the inferior language.
type AbstractType int

const (
	// Primitive represents MiniPy int, float, bool and str, and MiniC
	// int, long, double, float, char and char*. Content holds a Go
	// int64, float64, bool or string.
	Primitive AbstractType = iota
	// Ref represents MiniC pointers and MiniPy variables/attribute slots.
	// Content holds the pointed-to *Value.
	Ref
	// List represents MiniC arrays and MiniPy lists and tuples.
	// Content holds a []*Value.
	List
	// Dict represents MiniPy dictionaries. Content holds a []DictEntry
	// (a slice rather than a map so key order is stable and keys may be
	// arbitrary Values).
	Dict
	// Struct represents MiniC structures and MiniPy class instances.
	// Content holds a []Field (ordered name/value pairs).
	Struct
	// None represents the MiniPy None instance. Content is nil.
	None
	// Invalid represents MiniC invalid pointers (dangling, wild, or
	// pointing outside any mapped segment). Content is nil.
	Invalid
	// Function represents MiniC function pointers and MiniPy function
	// objects. Content holds the function name as a string.
	Function
)

var abstractTypeNames = [...]string{
	Primitive: "PRIMITIVE",
	Ref:       "REF",
	List:      "LIST",
	Dict:      "DICT",
	Struct:    "STRUCT",
	None:      "NONE",
	Invalid:   "INVALID",
	Function:  "FUNCTION",
}

// String returns the paper's uppercase name for the abstract type.
func (t AbstractType) String() string {
	if t < 0 || int(t) >= len(abstractTypeNames) {
		return fmt.Sprintf("AbstractType(%d)", int(t))
	}
	return abstractTypeNames[t]
}

// ParseAbstractType converts the uppercase wire name back to an AbstractType.
func ParseAbstractType(s string) (AbstractType, error) {
	for i, n := range abstractTypeNames {
		if n == s {
			return AbstractType(i), nil
		}
	}
	return 0, fmt.Errorf("core: unknown abstract type %q", s)
}

// Location says where a Value lives in the conceptual memory of the program.
type Location int

const (
	// LocNowhere is used for synthesized values with no storage (for
	// example the target description of an invalid pointer).
	LocNowhere Location = iota
	// LocStack marks values stored in a stack frame.
	LocStack
	// LocHeap marks values stored in dynamically allocated memory.
	LocHeap
	// LocGlobal marks values in global/static storage.
	LocGlobal
	// LocRegister marks values held in a machine register (assembly-level
	// inspection through the MiniGDB tracker).
	LocRegister
)

var locationNames = [...]string{
	LocNowhere:  "NOWHERE",
	LocStack:    "STACK",
	LocHeap:     "HEAP",
	LocGlobal:   "GLOBAL",
	LocRegister: "REGISTER",
}

// String returns the wire name of the location.
func (l Location) String() string {
	if l < 0 || int(l) >= len(locationNames) {
		return fmt.Sprintf("Location(%d)", int(l))
	}
	return locationNames[l]
}

// ParseLocation converts a wire name back to a Location.
func ParseLocation(s string) (Location, error) {
	for i, n := range locationNames {
		if n == s {
			return Location(i), nil
		}
	}
	return 0, fmt.Errorf("core: unknown location %q", s)
}

// DictEntry is one key/value pair of a Dict value.
type DictEntry struct {
	Key *Value
	Val *Value
}

// Field is one named member of a Struct value, in declaration order.
type Field struct {
	Name  string
	Value *Value
}

// Value is the serializable representation of one runtime value.
//
// Content's dynamic type is determined by Kind:
//
//	Primitive -> int64 | float64 | bool | string
//	Ref       -> *Value
//	List      -> []*Value
//	Dict      -> []DictEntry
//	Struct    -> []Field
//	None      -> nil
//	Invalid   -> nil
//	Function  -> string (function name)
type Value struct {
	// Kind is the language-agnostic classification of the value.
	Kind AbstractType
	// Content holds the payload; see the type table above.
	Content any
	// Location says in which conceptual memory region the value lives.
	Location Location
	// Address is the concrete address of the value when it has one.
	// It is zero for Ref values (the paper: "the notion of address makes
	// no sense" for references) and for synthesized values.
	Address uint64
	// LanguageType is the type name in the inferior language's own
	// terminology, e.g. "char*" for a C string or "tuple" for a MiniPy
	// tuple.
	LanguageType string
}

// NewInt builds a Primitive integer value.
func NewInt(v int64) *Value { return &Value{Kind: Primitive, Content: v} }

// NewFloat builds a Primitive floating-point value.
func NewFloat(v float64) *Value { return &Value{Kind: Primitive, Content: v} }

// NewBool builds a Primitive boolean value.
func NewBool(v bool) *Value { return &Value{Kind: Primitive, Content: v} }

// NewString builds a Primitive string value.
func NewString(v string) *Value { return &Value{Kind: Primitive, Content: v} }

// NewNone builds the None value.
func NewNone() *Value { return &Value{Kind: None} }

// NewInvalid builds an Invalid-pointer value.
func NewInvalid() *Value { return &Value{Kind: Invalid} }

// NewRef builds a Ref value pointing at target.
func NewRef(target *Value) *Value { return &Value{Kind: Ref, Content: target} }

// NewList builds a List value from elems.
func NewList(elems ...*Value) *Value { return &Value{Kind: List, Content: elems} }

// NewDict builds a Dict value from entries.
func NewDict(entries ...DictEntry) *Value { return &Value{Kind: Dict, Content: entries} }

// NewStruct builds a Struct value from fields.
func NewStruct(fields ...Field) *Value { return &Value{Kind: Struct, Content: fields} }

// NewFunction builds a Function value naming fn.
func NewFunction(fn string) *Value { return &Value{Kind: Function, Content: fn} }

// Int returns the integer payload of a Primitive value.
// The second result is false if the value is not an integer primitive.
func (v *Value) Int() (int64, bool) {
	i, ok := v.Content.(int64)
	return i, ok && v.Kind == Primitive
}

// Float returns the floating-point payload of a Primitive value.
func (v *Value) Float() (float64, bool) {
	f, ok := v.Content.(float64)
	return f, ok && v.Kind == Primitive
}

// Bool returns the boolean payload of a Primitive value.
func (v *Value) Bool() (bool, bool) {
	b, ok := v.Content.(bool)
	return b, ok && v.Kind == Primitive
}

// Str returns the string payload of a Primitive value.
func (v *Value) Str() (string, bool) {
	s, ok := v.Content.(string)
	return s, ok && v.Kind == Primitive
}

// Deref returns the target of a Ref value, or nil if v is not a Ref.
func (v *Value) Deref() *Value {
	if v.Kind != Ref {
		return nil
	}
	t, _ := v.Content.(*Value)
	return t
}

// Elems returns the elements of a List value, or nil.
func (v *Value) Elems() []*Value {
	if v.Kind != List {
		return nil
	}
	e, _ := v.Content.([]*Value)
	return e
}

// Entries returns the entries of a Dict value, or nil.
func (v *Value) Entries() []DictEntry {
	if v.Kind != Dict {
		return nil
	}
	e, _ := v.Content.([]DictEntry)
	return e
}

// Fields returns the fields of a Struct value, or nil.
func (v *Value) Fields() []Field {
	if v.Kind != Struct {
		return nil
	}
	f, _ := v.Content.([]Field)
	return f
}

// FieldByName returns the named struct field's value, or nil.
func (v *Value) FieldByName(name string) *Value {
	for _, f := range v.Fields() {
		if f.Name == name {
			return f.Value
		}
	}
	return nil
}

// FuncName returns the function name of a Function value.
func (v *Value) FuncName() (string, bool) {
	s, ok := v.Content.(string)
	return s, ok && v.Kind == Function
}

// Equal reports deep structural equality of two values, including kind,
// location, address and language type. Reference cycles are handled: two
// values are considered equal if every finite observation of them agrees.
func (v *Value) Equal(o *Value) bool {
	return valueEqual(v, o, map[[2]*Value]bool{})
}

func valueEqual(a, b *Value, seen map[[2]*Value]bool) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a == b {
		return true
	}
	key := [2]*Value{a, b}
	if seen[key] {
		return true // already comparing this pair on the current path
	}
	seen[key] = true
	if a.Kind != b.Kind || a.Location != b.Location ||
		a.Address != b.Address || a.LanguageType != b.LanguageType {
		return false
	}
	switch a.Kind {
	case Primitive:
		return a.Content == b.Content
	case Ref:
		return valueEqual(a.Deref(), b.Deref(), seen)
	case List:
		ae, be := a.Elems(), b.Elems()
		if len(ae) != len(be) {
			return false
		}
		for i := range ae {
			if !valueEqual(ae[i], be[i], seen) {
				return false
			}
		}
		return true
	case Dict:
		ae, be := a.Entries(), b.Entries()
		if len(ae) != len(be) {
			return false
		}
		for i := range ae {
			if !valueEqual(ae[i].Key, be[i].Key, seen) ||
				!valueEqual(ae[i].Val, be[i].Val, seen) {
				return false
			}
		}
		return true
	case Struct:
		af, bf := a.Fields(), b.Fields()
		if len(af) != len(bf) {
			return false
		}
		for i := range af {
			if af[i].Name != bf[i].Name ||
				!valueEqual(af[i].Value, bf[i].Value, seen) {
				return false
			}
		}
		return true
	case None, Invalid:
		return true
	case Function:
		return a.Content == b.Content
	}
	return false
}

// Equivalent reports whether two values have the same structure and content,
// ignoring addresses, locations and language-type spelling: re-assigning an
// equal value to a variable allocates a fresh object at a new address but is
// not a modification. Watch checking uses it as the deep-compare fallback.
// Mixed int/float primitives compare numerically (MiniPy 2 == 2.0), two NaNs
// are equivalent (a NaN that stays a NaN did not change), and reference
// cycles are handled: two values are equivalent if every finite observation
// of them agrees. Comparisons of acyclic primitives allocate nothing; the
// cycle-tracking map is only materialized once a Ref or container recurses.
func (v *Value) Equivalent(o *Value) bool {
	return valueEquivalent(v, o, nil)
}

// numEquivalent compares primitive payloads numerically when both are
// numbers; ok is false when either payload is not an int64/float64.
func numEquivalent(a, b any) (eq, ok bool) {
	switch x := a.(type) {
	case int64:
		switch y := b.(type) {
		case int64:
			return x == y, true
		case float64:
			return float64(x) == y, true
		}
	case float64:
		switch y := b.(type) {
		case int64:
			return x == float64(y), true
		case float64:
			return x == y || (x != x && y != y), true // NaN ~ NaN
		}
	}
	return false, false
}

func valueEquivalent(a, b *Value, seen map[[2]*Value]bool) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a == b {
		return true
	}
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case Primitive:
		if eq, ok := numEquivalent(a.Content, b.Content); ok {
			return eq
		}
		return a.Content == b.Content
	case None, Invalid:
		return true
	case Function:
		return a.Content == b.Content
	}
	// Recursive kinds: materialize the cycle guard lazily so the common
	// primitive comparisons above never allocate.
	if seen == nil {
		seen = map[[2]*Value]bool{}
	}
	key := [2]*Value{a, b}
	if seen[key] {
		return true // already comparing this pair on the current path
	}
	seen[key] = true
	switch a.Kind {
	case Ref:
		return valueEquivalent(a.Deref(), b.Deref(), seen)
	case List:
		ae, be := a.Elems(), b.Elems()
		if len(ae) != len(be) {
			return false
		}
		for i := range ae {
			if !valueEquivalent(ae[i], be[i], seen) {
				return false
			}
		}
		return true
	case Dict:
		ae, be := a.Entries(), b.Entries()
		if len(ae) != len(be) {
			return false
		}
		for i := range ae {
			if !valueEquivalent(ae[i].Key, be[i].Key, seen) ||
				!valueEquivalent(ae[i].Val, be[i].Val, seen) {
				return false
			}
		}
		return true
	case Struct:
		// The class/struct name is part of the observable value: an
		// instance of a different class is a modification even when the
		// field values coincide.
		if a.LanguageType != b.LanguageType {
			return false
		}
		af, bf := a.Fields(), b.Fields()
		if len(af) != len(bf) {
			return false
		}
		for i := range af {
			if af[i].Name != bf[i].Name ||
				!valueEquivalent(af[i].Value, bf[i].Value, seen) {
				return false
			}
		}
		return true
	}
	return false
}

// String renders the value in a compact single-line human form used by the
// text tools and by tests. Cycles are cut with "...".
func (v *Value) String() string {
	var b strings.Builder
	v.render(&b, map[*Value]bool{})
	return b.String()
}

func (v *Value) render(b *strings.Builder, seen map[*Value]bool) {
	if v == nil {
		b.WriteString("<nil>")
		return
	}
	if seen[v] {
		b.WriteString("...")
		return
	}
	seen[v] = true
	defer delete(seen, v)
	switch v.Kind {
	case Primitive:
		switch c := v.Content.(type) {
		case int64:
			b.WriteString(strconv.FormatInt(c, 10))
		case float64:
			b.WriteString(strconv.FormatFloat(c, 'g', -1, 64))
		case bool:
			b.WriteString(strconv.FormatBool(c))
		case string:
			b.WriteString(strconv.Quote(c))
		default:
			fmt.Fprintf(b, "<bad primitive %T>", v.Content)
		}
	case Ref:
		b.WriteString("&")
		v.Deref().render(b, seen)
	case List:
		b.WriteString("[")
		for i, e := range v.Elems() {
			if i > 0 {
				b.WriteString(", ")
			}
			e.render(b, seen)
		}
		b.WriteString("]")
	case Dict:
		b.WriteString("{")
		for i, e := range v.Entries() {
			if i > 0 {
				b.WriteString(", ")
			}
			e.Key.render(b, seen)
			b.WriteString(": ")
			e.Val.render(b, seen)
		}
		b.WriteString("}")
	case Struct:
		b.WriteString(v.LanguageType)
		b.WriteString("{")
		for i, f := range v.Fields() {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(f.Name)
			b.WriteString("=")
			f.Value.render(b, seen)
		}
		b.WriteString("}")
	case None:
		b.WriteString("None")
	case Invalid:
		b.WriteString("<invalid>")
	case Function:
		fmt.Fprintf(b, "<function %v>", v.Content)
	default:
		fmt.Fprintf(b, "<bad kind %d>", v.Kind)
	}
}

// SortedEntries returns the entries of a Dict sorted by the rendered key,
// for deterministic display; the underlying value is not modified.
func (v *Value) SortedEntries() []DictEntry {
	es := append([]DictEntry(nil), v.Entries()...)
	sort.SliceStable(es, func(i, j int) bool {
		return es[i].Key.String() < es[j].Key.String()
	})
	return es
}
