package core

import "testing"

// stubTracker implements only the base Tracker interface.
type stubTracker struct{}

func (stubTracker) LoadProgram(string, ...LoadOption) error           { return nil }
func (stubTracker) Start() error                                      { return nil }
func (stubTracker) Resume() error                                     { return nil }
func (stubTracker) Step() error                                       { return nil }
func (stubTracker) Next() error                                       { return nil }
func (stubTracker) Terminate() error                                  { return nil }
func (stubTracker) BreakBeforeLine(string, int, ...BreakOption) error { return nil }
func (stubTracker) BreakBeforeFunc(string, ...BreakOption) error      { return nil }
func (stubTracker) TrackFunction(string, ...BreakOption) error        { return nil }
func (stubTracker) Watch(string, ...BreakOption) error                { return nil }
func (stubTracker) Arm(Probe) error                                   { return nil }
func (stubTracker) PauseReason() PauseReason                          { return PauseReason{} }
func (stubTracker) ExitCode() (int, bool)                             { return 0, false }
func (stubTracker) CurrentFrame() (*Frame, error)                     { return nil, nil }
func (stubTracker) GlobalVariables() ([]*Variable, error)             { return nil, nil }
func (stubTracker) Position() (string, int)                           { return "", 0 }
func (stubTracker) LastLine() int                                     { return 0 }
func (stubTracker) SourceLines() ([]string, error)                    { return nil, nil }

// regTracker adds the register extension.
type regTracker struct{ stubTracker }

func (regTracker) Registers() (map[string]uint64, error) { return map[string]uint64{"sp": 1}, nil }

// wrapped hides a tracker behind a TrackerUnwrapper, like middleware would.
type wrapped struct {
	stubTracker
	inner Tracker
}

func (w wrapped) UnwrapTracker() Tracker { return w.inner }

func TestAsDirectAndNegative(t *testing.T) {
	var tr Tracker = regTracker{}
	if ri, ok := As[RegisterInspector](tr); !ok || ri == nil {
		t.Fatal("As missed a directly implemented interface")
	}
	if _, ok := As[MemoryInspector](tr); ok {
		t.Fatal("As invented an unimplemented interface")
	}
	if _, ok := As[RegisterInspector](nil); ok {
		t.Fatal("As on nil tracker")
	}
}

func TestAsFollowsUnwrapChain(t *testing.T) {
	var tr Tracker = wrapped{inner: wrapped{inner: regTracker{}}}
	ri, ok := As[RegisterInspector](tr)
	if !ok {
		t.Fatal("As did not follow the unwrap chain")
	}
	regs, err := ri.Registers()
	if err != nil || regs["sp"] != 1 {
		t.Fatalf("wrong implementation found: %v %v", regs, err)
	}
	// The chain ends at a non-unwrapper without the interface.
	if _, ok := As[MemoryInspector](tr); ok {
		t.Fatal("As invented an interface at the end of a chain")
	}
}

func TestCapabilitiesOf(t *testing.T) {
	caps := CapabilitiesOf(stubTracker{})
	if caps != (CapabilitySet{}) {
		t.Fatalf("bare tracker reports capabilities: %+v", caps)
	}
	caps = CapabilitiesOf(wrapped{inner: regTracker{}})
	if !caps.Registers || caps.Memory || caps.Heap || caps.State {
		t.Fatalf("wrapped register tracker: %+v", caps)
	}
}
