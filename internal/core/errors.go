package core

import (
	"errors"
	"fmt"
	"strings"
	"time"
)

// Transport-level sentinels. They classify why a debugger session stopped
// answering; tracker methods surface them wrapped in a *TrackerError so
// errors.Is works against them through the public API.
var (
	// ErrCommandTimeout is returned when one debugger round trip exceeds
	// the deadline configured with WithCommandTimeout.
	ErrCommandTimeout = errors.New("easytracker: debugger command timed out")
	// ErrSessionLost is returned when the debugger connection died
	// (subprocess crash, closed pipe, protocol corruption).
	ErrSessionLost = errors.New("easytracker: debugger session lost")
	// ErrServerBusy is a remote server's admission refusal at its session
	// limit. Retryable: the redial policy backs off and tries again,
	// honoring any retry-after hint carried by a RetryAfterError wrapper.
	ErrServerBusy = errors.New("easytracker: server at session limit")
	// ErrServerDraining is a remote server's admission refusal while it
	// shuts down gracefully. Retryable against a replacement backend, not
	// against the draining one.
	ErrServerDraining = errors.New("easytracker: server draining")
)

// RecoveryStatus reports what the session layer did about a failure.
type RecoveryStatus int

const (
	// RecoveryNone: no recovery was attempted (the error is an ordinary
	// tracker error, not a session failure).
	RecoveryNone RecoveryStatus = iota
	// RecoveryRestarted: the debugger session was restarted and the
	// session journal (breakpoints, watchpoints, tracked functions) was
	// replayed. The inferior is paused at its entry point again;
	// execution progress up to the failure was lost.
	RecoveryRestarted
	// RecoveryFailed: a restart was attempted (or the one-shot recovery
	// budget was already spent) and the session is unusable.
	RecoveryFailed
)

// String renders the status for diagnostics.
func (r RecoveryStatus) String() string {
	switch r {
	case RecoveryRestarted:
		return "restarted"
	case RecoveryFailed:
		return "failed"
	default:
		return "none"
	}
}

// TrackerError is the structured error returned by tracker methods: it
// carries the failing operation, the tracker kind, the source position the
// inferior was at, and — for session failures — what the recovery did and
// which armed items could not be re-established. It wraps the underlying
// cause, so errors.Is/errors.As against the package sentinels (ErrExited,
// ErrCommandTimeout, ...) keep working.
type TrackerError struct {
	// Op is the tracker operation that failed ("Resume", "Watch", ...).
	Op string
	// Kind is the tracker kind ("minigdb", "minipy", "trace").
	Kind string
	// File and Line are the inferior's source position at failure time.
	File string
	Line int
	// Recovery reports whether the session layer restarted the debugger.
	Recovery RecoveryStatus
	// Lost lists armed items that could not be re-armed after a restart
	// (e.g. watchpoints on locals with no live activation).
	Lost []string
	// Trail is the flight-recorder dump at failure time, oldest event
	// first — the last commands, MI exchanges and pauses that preceded a
	// session failure. Filled by the session layer whenever it recovers or
	// retires a session; empty for ordinary tracker errors.
	Trail []string
	// Backtrace is the inferior-language backtrace for inferior-crash
	// errors (ErrInferiorCrash), innermost frame first; empty otherwise.
	Backtrace []string
	// Err is the underlying cause.
	Err error
}

// Error implements error.
func (e *TrackerError) Error() string {
	var b strings.Builder
	b.WriteString(e.Kind)
	if e.Op != "" {
		b.WriteString(": ")
		b.WriteString(e.Op)
	}
	if e.File != "" || e.Line > 0 {
		fmt.Fprintf(&b, " at %s:%d", e.File, e.Line)
	}
	b.WriteString(": ")
	if e.Err != nil {
		b.WriteString(e.Err.Error())
	} else {
		b.WriteString("unknown error")
	}
	switch e.Recovery {
	case RecoveryRestarted:
		b.WriteString(" [session restarted, journal replayed")
		if len(e.Lost) > 0 {
			fmt.Fprintf(&b, "; lost: %s", strings.Join(e.Lost, ", "))
		}
		b.WriteString("]")
	case RecoveryFailed:
		b.WriteString(" [session recovery failed]")
	}
	if n := len(e.Trail); n > 0 {
		fmt.Fprintf(&b, " (flight recorder: %d events)", n)
	}
	if n := len(e.Backtrace); n > 0 {
		fmt.Fprintf(&b, " (inferior backtrace: %d frames)", n)
	}
	return b.String()
}

// FlightDump renders the recorded Trail as one block, the way a crash
// report prints it; empty without a trail.
func (e *TrackerError) FlightDump() string {
	if len(e.Trail) == 0 {
		return ""
	}
	return strings.Join(e.Trail, "\n")
}

// Unwrap exposes the cause to errors.Is / errors.As.
func (e *TrackerError) Unwrap() error { return e.Err }

// WrapErr wraps err in a *TrackerError carrying the tracker kind, the
// failing operation and the inferior's position. A nil err stays nil and an
// error that already is a *TrackerError (possibly wrapped) passes through
// unchanged, so session-layer errors keep their recovery details.
func WrapErr(kind, op, file string, line int, err error) error {
	if err == nil {
		return nil
	}
	var te *TrackerError
	if errors.As(err, &te) {
		return err
	}
	return &TrackerError{Op: op, Kind: kind, File: file, Line: line, Err: err}
}

// RetryAfterError decorates a retryable refusal (ErrServerBusy,
// ErrServerDraining) with the server's hint for when to try again. The
// redial policy uses the hint as the next backoff delay, clamped to the
// policy's cap; errors.Is against the wrapped sentinel keeps working.
type RetryAfterError struct {
	// After is the server's suggested wait before the next attempt.
	After time.Duration
	// Err is the refusal being decorated.
	Err error
	// msg, when set, is a pre-rendered message (the wire-decode path uses
	// it so a round trip does not re-append the hint).
	msg string
}

// Error implements error.
func (e *RetryAfterError) Error() string {
	if e.msg != "" {
		return e.msg
	}
	return fmt.Sprintf("%v (retry after %v)", e.Err, e.After)
}

// Unwrap exposes the refusal sentinel to errors.Is / errors.As.
func (e *RetryAfterError) Unwrap() error { return e.Err }

// RetryAfterHint extracts the server's retry-after hint from an error
// chain; zero when the chain carries none.
func RetryAfterHint(err error) time.Duration {
	var ra *RetryAfterError
	if errors.As(err, &ra) && ra.After > 0 {
		return ra.After
	}
	return 0
}

// RedialPolicy governs how the remote client re-establishes a lost
// session: capped exponential backoff with deterministic-per-client
// jitter, bounded both by an attempt count per outage and by a total
// wall-clock budget. The zero value is invalid; use DefaultRedialPolicy
// as a base.
type RedialPolicy struct {
	// MaxAttempts bounds dial attempts per outage (per recovery event).
	MaxAttempts int
	// BaseDelay is the wait before the second attempt (the first redial
	// happens immediately).
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth.
	MaxDelay time.Duration
	// Multiplier scales the delay between attempts (≥ 1).
	Multiplier float64
	// Jitter perturbs each delay by a uniform factor in [1-J, 1+J],
	// 0 ≤ J ≤ 1, decorrelating a fleet of clients redialing at once.
	Jitter float64
	// Budget bounds the total wall-clock time of one outage's redial
	// loop, backoff waits included; zero means attempts-only bounding.
	Budget time.Duration
	// MaxRecoveries bounds how many separate outages one session may
	// survive (each successful recovery restarts the inferior and replays
	// the journal). Zero means the package default of 1 — the pre-policy
	// one-shot behavior.
	MaxRecoveries int
	// DialTimeout bounds each individual dial + hello handshake, so one
	// attempt into a black-holing network cannot eat the whole budget.
	DialTimeout time.Duration
}

// DefaultRedialPolicy is the policy used when LoadProgram got no
// WithRedialPolicy option: three quick attempts, ~3s budget, one recovery
// per session.
func DefaultRedialPolicy() RedialPolicy {
	return RedialPolicy{
		MaxAttempts:   3,
		BaseDelay:     25 * time.Millisecond,
		MaxDelay:      time.Second,
		Multiplier:    2,
		Jitter:        0.2,
		Budget:        3 * time.Second,
		MaxRecoveries: 1,
		DialTimeout:   2 * time.Second,
	}
}

// Normalize fills non-sensical fields with their defaults so a partially
// specified policy behaves predictably.
func (p RedialPolicy) Normalize() RedialPolicy {
	d := DefaultRedialPolicy()
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = d.MaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = d.BaseDelay
	}
	if p.MaxDelay < p.BaseDelay {
		p.MaxDelay = p.BaseDelay
	}
	if p.Multiplier < 1 {
		p.Multiplier = d.Multiplier
	}
	if p.Jitter < 0 || p.Jitter > 1 {
		p.Jitter = d.Jitter
	}
	if p.MaxRecoveries <= 0 {
		p.MaxRecoveries = d.MaxRecoveries
	}
	if p.DialTimeout <= 0 {
		p.DialTimeout = d.DialTimeout
	}
	return p
}

// Delay returns the backoff before attempt number attempt (0-based; 0 is
// the immediate first redial). rand is a uniform sample in [0, 1) used
// for jitter — callers supply their own deterministic source.
func (p RedialPolicy) Delay(attempt int, rand float64) time.Duration {
	if attempt <= 0 {
		return 0
	}
	d := float64(p.BaseDelay)
	for i := 1; i < attempt; i++ {
		d *= p.Multiplier
		if d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if p.Jitter > 0 {
		d *= 1 - p.Jitter + 2*p.Jitter*rand
	}
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	return time.Duration(d)
}

// WithRedialPolicy sets the remote client's reconnect policy for the
// session being loaded; see RedialPolicy. Local trackers ignore it.
func WithRedialPolicy(p RedialPolicy) LoadOption {
	norm := p.Normalize()
	return func(c *LoadConfig) { c.Redial = &norm }
}

// WithCommandTimeout bounds every debugger round trip (trackers that drive
// a debugger over a pipe, i.e. "minigdb"): a command that produces no
// complete response within d fails with ErrCommandTimeout instead of
// blocking forever, and the session layer restarts the debugger. Zero or
// negative d disables the deadline.
func WithCommandTimeout(d time.Duration) LoadOption {
	return func(c *LoadConfig) { c.CommandTimeout = d }
}
