package core

import (
	"errors"
	"fmt"
	"strings"
	"time"
)

// Transport-level sentinels. They classify why a debugger session stopped
// answering; tracker methods surface them wrapped in a *TrackerError so
// errors.Is works against them through the public API.
var (
	// ErrCommandTimeout is returned when one debugger round trip exceeds
	// the deadline configured with WithCommandTimeout.
	ErrCommandTimeout = errors.New("easytracker: debugger command timed out")
	// ErrSessionLost is returned when the debugger connection died
	// (subprocess crash, closed pipe, protocol corruption).
	ErrSessionLost = errors.New("easytracker: debugger session lost")
)

// RecoveryStatus reports what the session layer did about a failure.
type RecoveryStatus int

const (
	// RecoveryNone: no recovery was attempted (the error is an ordinary
	// tracker error, not a session failure).
	RecoveryNone RecoveryStatus = iota
	// RecoveryRestarted: the debugger session was restarted and the
	// session journal (breakpoints, watchpoints, tracked functions) was
	// replayed. The inferior is paused at its entry point again;
	// execution progress up to the failure was lost.
	RecoveryRestarted
	// RecoveryFailed: a restart was attempted (or the one-shot recovery
	// budget was already spent) and the session is unusable.
	RecoveryFailed
)

// String renders the status for diagnostics.
func (r RecoveryStatus) String() string {
	switch r {
	case RecoveryRestarted:
		return "restarted"
	case RecoveryFailed:
		return "failed"
	default:
		return "none"
	}
}

// TrackerError is the structured error returned by tracker methods: it
// carries the failing operation, the tracker kind, the source position the
// inferior was at, and — for session failures — what the recovery did and
// which armed items could not be re-established. It wraps the underlying
// cause, so errors.Is/errors.As against the package sentinels (ErrExited,
// ErrCommandTimeout, ...) keep working.
type TrackerError struct {
	// Op is the tracker operation that failed ("Resume", "Watch", ...).
	Op string
	// Kind is the tracker kind ("minigdb", "minipy", "trace").
	Kind string
	// File and Line are the inferior's source position at failure time.
	File string
	Line int
	// Recovery reports whether the session layer restarted the debugger.
	Recovery RecoveryStatus
	// Lost lists armed items that could not be re-armed after a restart
	// (e.g. watchpoints on locals with no live activation).
	Lost []string
	// Trail is the flight-recorder dump at failure time, oldest event
	// first — the last commands, MI exchanges and pauses that preceded a
	// session failure. Filled by the session layer whenever it recovers or
	// retires a session; empty for ordinary tracker errors.
	Trail []string
	// Backtrace is the inferior-language backtrace for inferior-crash
	// errors (ErrInferiorCrash), innermost frame first; empty otherwise.
	Backtrace []string
	// Err is the underlying cause.
	Err error
}

// Error implements error.
func (e *TrackerError) Error() string {
	var b strings.Builder
	b.WriteString(e.Kind)
	if e.Op != "" {
		b.WriteString(": ")
		b.WriteString(e.Op)
	}
	if e.File != "" || e.Line > 0 {
		fmt.Fprintf(&b, " at %s:%d", e.File, e.Line)
	}
	b.WriteString(": ")
	if e.Err != nil {
		b.WriteString(e.Err.Error())
	} else {
		b.WriteString("unknown error")
	}
	switch e.Recovery {
	case RecoveryRestarted:
		b.WriteString(" [session restarted, journal replayed")
		if len(e.Lost) > 0 {
			fmt.Fprintf(&b, "; lost: %s", strings.Join(e.Lost, ", "))
		}
		b.WriteString("]")
	case RecoveryFailed:
		b.WriteString(" [session recovery failed]")
	}
	if n := len(e.Trail); n > 0 {
		fmt.Fprintf(&b, " (flight recorder: %d events)", n)
	}
	if n := len(e.Backtrace); n > 0 {
		fmt.Fprintf(&b, " (inferior backtrace: %d frames)", n)
	}
	return b.String()
}

// FlightDump renders the recorded Trail as one block, the way a crash
// report prints it; empty without a trail.
func (e *TrackerError) FlightDump() string {
	if len(e.Trail) == 0 {
		return ""
	}
	return strings.Join(e.Trail, "\n")
}

// Unwrap exposes the cause to errors.Is / errors.As.
func (e *TrackerError) Unwrap() error { return e.Err }

// WrapErr wraps err in a *TrackerError carrying the tracker kind, the
// failing operation and the inferior's position. A nil err stays nil and an
// error that already is a *TrackerError (possibly wrapped) passes through
// unchanged, so session-layer errors keep their recovery details.
func WrapErr(kind, op, file string, line int, err error) error {
	if err == nil {
		return nil
	}
	var te *TrackerError
	if errors.As(err, &te) {
		return err
	}
	return &TrackerError{Op: op, Kind: kind, File: file, Line: line, Err: err}
}

// WithCommandTimeout bounds every debugger round trip (trackers that drive
// a debugger over a pipe, i.e. "minigdb"): a command that produces no
// complete response within d fails with ErrCommandTimeout instead of
// blocking forever, and the session layer restarts the debugger. Zero or
// negative d disables the deadline.
func WithCommandTimeout(d time.Duration) LoadOption {
	return func(c *LoadConfig) { c.CommandTimeout = d }
}
