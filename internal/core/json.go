package core

import (
	"encoding/json"
	"fmt"
	"strconv"
)

// The wire format preserves sharing and cycles in the value graph: the first
// time a *Value is encountered it is emitted in full with a fresh "id"; every
// later occurrence is emitted as {"backref": id}. This mirrors what the paper
// obtains from Python pickling across the GDB pipe (Section II-C1) and is
// what flows over our MI connection.

type jsonValue struct {
	ID      int             `json:"id,omitempty"`
	Backref int             `json:"backref,omitempty"`
	Kind    string          `json:"kind,omitempty"`
	Loc     string          `json:"location,omitempty"`
	Addr    uint64          `json:"address,omitempty"`
	LType   string          `json:"ltype,omitempty"`
	Prim    *jsonPrim       `json:"prim,omitempty"`
	Ref     *jsonValue      `json:"ref,omitempty"`
	List    []*jsonValue    `json:"list,omitempty"`
	Dict    []*jsonDictPair `json:"dict,omitempty"`
	Struct  []*jsonField    `json:"struct,omitempty"`
	Func    string          `json:"func,omitempty"`
}

type jsonPrim struct {
	Type  string `json:"t"`
	Value string `json:"v"`
}

type jsonDictPair struct {
	Key *jsonValue `json:"k"`
	Val *jsonValue `json:"v"`
}

type jsonField struct {
	Name  string     `json:"name"`
	Value *jsonValue `json:"value"`
}

type jsonVariable struct {
	Name  string     `json:"name"`
	Value *jsonValue `json:"value"`
}

type jsonFrame struct {
	Name  string          `json:"name"`
	Depth int             `json:"depth"`
	File  string          `json:"file,omitempty"`
	Line  int             `json:"line,omitempty"`
	PC    uint64          `json:"pc,omitempty"`
	Vars  []*jsonVariable `json:"vars,omitempty"`
}

type jsonPause struct {
	Type     string     `json:"type"`
	Function string     `json:"function,omitempty"`
	File     string     `json:"file,omitempty"`
	Line     int        `json:"line,omitempty"`
	Variable string     `json:"variable,omitempty"`
	Old      *jsonValue `json:"old,omitempty"`
	New      *jsonValue `json:"new,omitempty"`
	RetVal   *jsonValue `json:"retval,omitempty"`
	ExitCode int        `json:"exit_code,omitempty"`
	Detail   string     `json:"detail,omitempty"`
}

// jsonState bundles a full inspection snapshot (innermost-first frames,
// globals, pause reason) into one document.
type jsonState struct {
	Frames  []*jsonFrame    `json:"frames,omitempty"`
	Globals []*jsonVariable `json:"globals,omitempty"`
	Reason  *jsonPause      `json:"reason,omitempty"`
}

type valueEncoder struct {
	next int
	ids  map[*Value]int
}

func (e *valueEncoder) encode(v *Value) *jsonValue {
	if v == nil {
		return nil
	}
	if id, seen := e.ids[v]; seen {
		return &jsonValue{Backref: id}
	}
	e.next++
	id := e.next
	e.ids[v] = id
	jv := &jsonValue{
		ID:    id,
		Kind:  v.Kind.String(),
		Loc:   v.Location.String(),
		Addr:  v.Address,
		LType: v.LanguageType,
	}
	switch v.Kind {
	case Primitive:
		switch c := v.Content.(type) {
		case int64:
			jv.Prim = &jsonPrim{Type: "int", Value: strconv.FormatInt(c, 10)}
		case float64:
			jv.Prim = &jsonPrim{Type: "float", Value: strconv.FormatFloat(c, 'g', -1, 64)}
		case bool:
			jv.Prim = &jsonPrim{Type: "bool", Value: strconv.FormatBool(c)}
		case string:
			jv.Prim = &jsonPrim{Type: "str", Value: c}
		default:
			jv.Prim = &jsonPrim{Type: "str", Value: fmt.Sprint(c)}
		}
	case Ref:
		jv.Ref = e.encode(v.Deref())
	case List:
		elems := v.Elems()
		jv.List = make([]*jsonValue, len(elems))
		for i, el := range elems {
			jv.List[i] = e.encode(el)
		}
	case Dict:
		for _, en := range v.Entries() {
			jv.Dict = append(jv.Dict, &jsonDictPair{Key: e.encode(en.Key), Val: e.encode(en.Val)})
		}
	case Struct:
		for _, f := range v.Fields() {
			jv.Struct = append(jv.Struct, &jsonField{Name: f.Name, Value: e.encode(f.Value)})
		}
	case Function:
		s, _ := v.Content.(string)
		jv.Func = s
	case None, Invalid:
		// no payload
	}
	return jv
}

type valueDecoder struct {
	byID map[int]*Value
}

func (d *valueDecoder) decode(jv *jsonValue) (*Value, error) {
	if jv == nil {
		return nil, nil
	}
	if jv.Backref != 0 {
		v, ok := d.byID[jv.Backref]
		if !ok {
			return nil, fmt.Errorf("core: dangling backref %d", jv.Backref)
		}
		return v, nil
	}
	kind, err := ParseAbstractType(jv.Kind)
	if err != nil {
		return nil, err
	}
	loc := LocNowhere
	if jv.Loc != "" {
		loc, err = ParseLocation(jv.Loc)
		if err != nil {
			return nil, err
		}
	}
	v := &Value{Kind: kind, Location: loc, Address: jv.Addr, LanguageType: jv.LType}
	if jv.ID != 0 {
		d.byID[jv.ID] = v
	}
	switch kind {
	case Primitive:
		if jv.Prim == nil {
			return nil, fmt.Errorf("core: primitive value without payload")
		}
		switch jv.Prim.Type {
		case "int":
			n, err := strconv.ParseInt(jv.Prim.Value, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("core: bad int payload %q: %v", jv.Prim.Value, err)
			}
			v.Content = n
		case "float":
			f, err := strconv.ParseFloat(jv.Prim.Value, 64)
			if err != nil {
				return nil, fmt.Errorf("core: bad float payload %q: %v", jv.Prim.Value, err)
			}
			v.Content = f
		case "bool":
			b, err := strconv.ParseBool(jv.Prim.Value)
			if err != nil {
				return nil, fmt.Errorf("core: bad bool payload %q: %v", jv.Prim.Value, err)
			}
			v.Content = b
		case "str":
			v.Content = jv.Prim.Value
		default:
			return nil, fmt.Errorf("core: unknown primitive type %q", jv.Prim.Type)
		}
	case Ref:
		t, err := d.decode(jv.Ref)
		if err != nil {
			return nil, err
		}
		v.Content = t
	case List:
		elems := make([]*Value, len(jv.List))
		for i, je := range jv.List {
			if elems[i], err = d.decode(je); err != nil {
				return nil, err
			}
		}
		v.Content = elems
	case Dict:
		entries := make([]DictEntry, len(jv.Dict))
		for i, jp := range jv.Dict {
			if entries[i].Key, err = d.decode(jp.Key); err != nil {
				return nil, err
			}
			if entries[i].Val, err = d.decode(jp.Val); err != nil {
				return nil, err
			}
		}
		v.Content = entries
	case Struct:
		fields := make([]Field, len(jv.Struct))
		for i, jf := range jv.Struct {
			fields[i].Name = jf.Name
			if fields[i].Value, err = d.decode(jf.Value); err != nil {
				return nil, err
			}
		}
		v.Content = fields
	case Function:
		v.Content = jv.Func
	}
	return v, nil
}

// MarshalJSON encodes the value graph, preserving sharing and cycles.
func (v *Value) MarshalJSON() ([]byte, error) {
	e := &valueEncoder{ids: map[*Value]int{}}
	return json.Marshal(e.encode(v))
}

// UnmarshalJSON decodes a value graph produced by MarshalJSON.
func (v *Value) UnmarshalJSON(data []byte) error {
	var jv jsonValue
	if err := json.Unmarshal(data, &jv); err != nil {
		return err
	}
	d := &valueDecoder{byID: map[int]*Value{}}
	dec, err := d.decode(&jv)
	if err != nil {
		return err
	}
	*v = *dec
	// Self-references in the decoded graph point at dec, not v; rebind.
	rebind(v, dec, map[*Value]bool{})
	return nil
}

// rebind replaces pointers to old with pointers to v inside v's graph, so
// that cycles survive the *v = *dec copy in UnmarshalJSON.
func rebind(v, old *Value, seen map[*Value]bool) {
	if v == nil || seen[v] {
		return
	}
	seen[v] = true
	switch v.Kind {
	case Ref:
		if t, _ := v.Content.(*Value); t == old {
			v.Content = v
		} else {
			rebind(t, old, seen)
		}
	case List:
		elems, _ := v.Content.([]*Value)
		for i, el := range elems {
			if el == old {
				elems[i] = v
			} else {
				rebind(el, old, seen)
			}
		}
	case Dict:
		entries, _ := v.Content.([]DictEntry)
		for i := range entries {
			if entries[i].Key == old {
				entries[i].Key = v
			} else {
				rebind(entries[i].Key, old, seen)
			}
			if entries[i].Val == old {
				entries[i].Val = v
			} else {
				rebind(entries[i].Val, old, seen)
			}
		}
	case Struct:
		fields, _ := v.Content.([]Field)
		for i := range fields {
			if fields[i].Value == old {
				fields[i].Value = v
			} else {
				rebind(fields[i].Value, old, seen)
			}
		}
	}
}

// State is a complete, serializable inspection snapshot of a paused
// inferior: the call stack (innermost first), the globals, and the pause
// reason. It is the unit transferred across the MI pipe by the MiniGDB
// tracker and the unit recorded per step in PT-style traces.
type State struct {
	Frame   *Frame
	Globals []*Variable
	Reason  PauseReason
}

// MarshalJSON encodes the snapshot with one shared value table, so values
// referenced from several frames or globals keep their identity.
func (s *State) MarshalJSON() ([]byte, error) {
	e := &valueEncoder{ids: map[*Value]int{}}
	var js jsonState
	for _, fr := range s.Frame.Stack() {
		jf := &jsonFrame{Name: fr.Name, Depth: fr.Depth, File: fr.File, Line: fr.Line, PC: fr.PC}
		for _, va := range fr.Vars {
			jf.Vars = append(jf.Vars, &jsonVariable{Name: va.Name, Value: e.encode(va.Value)})
		}
		js.Frames = append(js.Frames, jf)
	}
	for _, g := range s.Globals {
		js.Globals = append(js.Globals, &jsonVariable{Name: g.Name, Value: e.encode(g.Value)})
	}
	js.Reason = encodePause(e, s.Reason)
	return json.Marshal(&js)
}

// UnmarshalJSON decodes a snapshot produced by MarshalJSON.
func (s *State) UnmarshalJSON(data []byte) error {
	var js jsonState
	if err := json.Unmarshal(data, &js); err != nil {
		return err
	}
	d := &valueDecoder{byID: map[int]*Value{}}
	// Frames were serialized innermost first; decode in the same order so
	// value backrefs resolve, then link the Parent chain.
	frames := make([]*Frame, len(js.Frames))
	for i, jf := range js.Frames {
		fr := &Frame{Name: jf.Name, Depth: jf.Depth, File: jf.File, Line: jf.Line, PC: jf.PC}
		for _, jv := range jf.Vars {
			val, err := d.decode(jv.Value)
			if err != nil {
				return err
			}
			fr.Vars = append(fr.Vars, &Variable{Name: jv.Name, Value: val})
		}
		frames[i] = fr
	}
	for i := 0; i+1 < len(frames); i++ {
		frames[i].Parent = frames[i+1]
	}
	if len(frames) > 0 {
		s.Frame = frames[0]
	} else {
		s.Frame = nil
	}
	s.Globals = nil
	for _, jg := range js.Globals {
		val, err := d.decode(jg.Value)
		if err != nil {
			return err
		}
		s.Globals = append(s.Globals, &Variable{Name: jg.Name, Value: val})
	}
	if js.Reason != nil {
		r, err := decodePause(d, js.Reason)
		if err != nil {
			return err
		}
		s.Reason = r
	} else {
		s.Reason = PauseReason{}
	}
	return nil
}

// ValueList is a group of values serialized with one shared backref table,
// so aliasing and cycles between the members survive the round trip. It is
// the payload unit of delta-encoded traces (pt format v2): all values written
// by one step are encoded together, preserving any sharing among them.
type ValueList []*Value

// MarshalJSON encodes the list with one shared value table.
func (l ValueList) MarshalJSON() ([]byte, error) {
	e := &valueEncoder{ids: map[*Value]int{}}
	arr := make([]*jsonValue, len(l))
	for i, v := range l {
		arr[i] = e.encode(v)
	}
	return json.Marshal(arr)
}

// UnmarshalJSON decodes a list produced by MarshalJSON. The decoded values
// share one backref table, so aliasing among them is restored.
func (l *ValueList) UnmarshalJSON(data []byte) error {
	var arr []*jsonValue
	if err := json.Unmarshal(data, &arr); err != nil {
		return err
	}
	d := &valueDecoder{byID: map[int]*Value{}}
	out := make(ValueList, len(arr))
	for i, jv := range arr {
		v, err := d.decode(jv)
		if err != nil {
			return err
		}
		out[i] = v
	}
	*l = out
	return nil
}

// EncodePauseReasonJSON encodes a pause reason alone — the unit attached to
// every control-command response on a remote-tracker connection. The value
// graph of Old/New/ReturnValue keeps its sharing through the same backref
// table the State codec uses.
func EncodePauseReasonJSON(r PauseReason) ([]byte, error) {
	e := &valueEncoder{ids: map[*Value]int{}}
	return json.Marshal(encodePause(e, r))
}

// DecodePauseReasonJSON decodes a pause reason produced by
// EncodePauseReasonJSON.
func DecodePauseReasonJSON(data []byte) (PauseReason, error) {
	var jp jsonPause
	if err := json.Unmarshal(data, &jp); err != nil {
		return PauseReason{}, err
	}
	d := &valueDecoder{byID: map[int]*Value{}}
	return decodePause(d, &jp)
}

func encodePause(e *valueEncoder, r PauseReason) *jsonPause {
	return &jsonPause{
		Type:     r.Type.String(),
		Function: r.Function,
		File:     r.File,
		Line:     r.Line,
		Variable: r.Variable,
		Old:      e.encode(r.Old),
		New:      e.encode(r.New),
		RetVal:   e.encode(r.ReturnValue),
		ExitCode: r.ExitCode,
		Detail:   r.Detail,
	}
}

func decodePause(d *valueDecoder, jp *jsonPause) (PauseReason, error) {
	t, err := ParsePauseReasonType(jp.Type)
	if err != nil {
		return PauseReason{}, err
	}
	r := PauseReason{
		Type:     t,
		Function: jp.Function,
		File:     jp.File,
		Line:     jp.Line,
		Variable: jp.Variable,
		ExitCode: jp.ExitCode,
		Detail:   jp.Detail,
	}
	if r.Old, err = d.decode(jp.Old); err != nil {
		return PauseReason{}, err
	}
	if r.New, err = d.decode(jp.New); err != nil {
		return PauseReason{}, err
	}
	if r.ReturnValue, err = d.decode(jp.RetVal); err != nil {
		return PauseReason{}, err
	}
	return r, nil
}
