package core

import (
	"fmt"
	"strings"
)

// Variable is a named slot (local, argument, or global) holding a Value.
type Variable struct {
	// Name is the variable's source-level name.
	Name string
	// Value is the variable's current value. In both language models of
	// the paper every variable slot is itself a small piece of storage;
	// for MiniPy variables the Value is a Ref into the heap, for MiniC
	// the Value may live directly in the frame.
	Value *Value
}

// String renders "name = value".
func (v *Variable) String() string {
	return fmt.Sprintf("%s = %s", v.Name, v.Value)
}

// Frame is one activation record of the paused inferior.
type Frame struct {
	// Name is the function name of the frame ("main", "fib", ...).
	Name string
	// Depth is the frame's position in the call stack; the innermost
	// (currently executing) frame has the largest depth and the program
	// entry frame has depth 0.
	Depth int
	// File is the source file of the frame's current position.
	File string
	// Line is the source line about to be executed (innermost frame) or
	// the line of the pending call (outer frames). 1-based.
	Line int
	// PC is the machine program counter for compiled inferiors; zero for
	// interpreted ones.
	PC uint64
	// Vars lists the frame's variables in declaration order.
	Vars []*Variable
	// Parent is the caller's frame, or nil for the entry frame.
	Parent *Frame
}

// Variables returns the frame's variables as a name-indexed map, mirroring
// the paper's frame.variables dictionary. Declaration order is preserved in
// Vars; use this map for lookup.
func (f *Frame) Variables() map[string]*Variable {
	m := make(map[string]*Variable, len(f.Vars))
	for _, v := range f.Vars {
		m[v.Name] = v
	}
	return m
}

// Lookup returns the named variable in this frame, or nil.
func (f *Frame) Lookup(name string) *Variable {
	for _, v := range f.Vars {
		if v.Name == name {
			return v
		}
	}
	return nil
}

// Stack returns the frames from this frame outward to the entry frame,
// innermost first.
func (f *Frame) Stack() []*Frame {
	var s []*Frame
	for fr := f; fr != nil; fr = fr.Parent {
		s = append(s, fr)
	}
	return s
}

// String renders a one-line summary: "name at file:line (depth d)".
func (f *Frame) String() string {
	return fmt.Sprintf("%s at %s:%d (depth %d)", f.Name, f.File, f.Line, f.Depth)
}

// Backtrace renders a multi-line backtrace with variables, innermost frame
// first, suitable for terminal tools and golden tests.
func (f *Frame) Backtrace() string {
	var b strings.Builder
	for _, fr := range f.Stack() {
		fmt.Fprintf(&b, "#%d %s at %s:%d\n", fr.Depth, fr.Name, fr.File, fr.Line)
		for _, v := range fr.Vars {
			fmt.Fprintf(&b, "    %s\n", v)
		}
	}
	return b.String()
}

// Equal reports deep equality of two frames including their parents.
func (f *Frame) Equal(o *Frame) bool {
	if f == nil || o == nil {
		return f == o
	}
	if f.Name != o.Name || f.Depth != o.Depth || f.File != o.File ||
		f.Line != o.Line || f.PC != o.PC || len(f.Vars) != len(o.Vars) {
		return false
	}
	for i := range f.Vars {
		if f.Vars[i].Name != o.Vars[i].Name ||
			!f.Vars[i].Value.Equal(o.Vars[i].Value) {
			return false
		}
	}
	return f.Parent.Equal(o.Parent)
}
