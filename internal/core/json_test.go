package core

import (
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"
)

func roundTripValue(t *testing.T, v *Value) *Value {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Value
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal %s: %v", data, err)
	}
	return &back
}

func TestJSONRoundTripPrimitives(t *testing.T) {
	vals := []*Value{
		NewInt(0), NewInt(-1), NewInt(1<<62 + 12345), // beyond float64 precision
		NewFloat(0.1), NewFloat(-1e300),
		NewBool(true), NewBool(false),
		NewString(""), NewString("héllo\n\"quoted\""),
		NewNone(), NewInvalid(), NewFunction("fib"),
	}
	for _, v := range vals {
		v.Location = LocHeap
		v.Address = 0xbeef
		v.LanguageType = "T"
		if back := roundTripValue(t, v); !v.Equal(back) {
			t.Errorf("round trip %s != %s", v, back)
		}
	}
}

func TestJSONRoundTripInt64Exact(t *testing.T) {
	// 2^63-1 cannot survive a float64 detour; the string encoding must
	// keep it exact.
	v := NewInt(9223372036854775807)
	back := roundTripValue(t, v)
	if got, _ := back.Int(); got != 9223372036854775807 {
		t.Errorf("int64 round trip lost precision: %d", got)
	}
}

func TestJSONRoundTripComposites(t *testing.T) {
	v := NewStruct(
		Field{"xs", NewList(NewInt(1), NewRef(NewString("deep")))},
		Field{"m", NewDict(DictEntry{NewString("k"), NewNone()})},
	)
	v.LanguageType = "box"
	back := roundTripValue(t, v)
	if !v.Equal(back) {
		t.Errorf("round trip %s != %s", v, back)
	}
}

func TestJSONPreservesSharing(t *testing.T) {
	shared := NewList(NewInt(7))
	v := NewList(NewRef(shared), NewRef(shared))
	back := roundTripValue(t, v)
	e := back.Elems()
	if e[0].Deref() != e[1].Deref() {
		t.Error("sharing lost: two refs decode to distinct targets")
	}
	e[0].Deref().Content = append(e[0].Deref().Elems(), NewInt(8))
	if len(e[1].Deref().Elems()) != 2 {
		t.Error("decoded targets are not aliased")
	}
}

func TestJSONPreservesCycles(t *testing.T) {
	l := NewList(NewInt(1))
	l.Content = append(l.Elems(), l) // l = [1, l]
	back := roundTripValue(t, l)
	e := back.Elems()
	if len(e) != 2 {
		t.Fatalf("len = %d", len(e))
	}
	if e[1] != back {
		t.Error("cycle lost: second element is not the list itself")
	}
	if !back.Equal(l) {
		t.Error("cyclic round trip not Equal")
	}
}

func TestJSONSelfRef(t *testing.T) {
	r := &Value{Kind: Ref}
	r.Content = r // r = &r
	back := roundTripValue(t, r)
	if back.Deref() != back {
		t.Error("self-referential ref lost identity")
	}
}

func TestJSONDanglingBackref(t *testing.T) {
	var v Value
	err := json.Unmarshal([]byte(`{"backref": 99}`), &v)
	if err == nil || !strings.Contains(err.Error(), "backref") {
		t.Errorf("expected dangling backref error, got %v", err)
	}
}

func TestJSONBadPayloads(t *testing.T) {
	cases := []string{
		`{"id":1,"kind":"WHAT"}`,
		`{"id":1,"kind":"PRIMITIVE"}`,
		`{"id":1,"kind":"PRIMITIVE","prim":{"t":"int","v":"abc"}}`,
		`{"id":1,"kind":"PRIMITIVE","prim":{"t":"float","v":"zz"}}`,
		`{"id":1,"kind":"PRIMITIVE","prim":{"t":"bool","v":"maybe"}}`,
		`{"id":1,"kind":"PRIMITIVE","prim":{"t":"complex","v":"1i"}}`,
		`{"id":1,"kind":"PRIMITIVE","location":"MOON","prim":{"t":"int","v":"1"}}`,
	}
	for _, c := range cases {
		var v Value
		if err := json.Unmarshal([]byte(c), &v); err == nil {
			t.Errorf("decode of %s succeeded", c)
		}
	}
}

func TestStateRoundTrip(t *testing.T) {
	shared := NewList(NewInt(5))
	shared.Location = LocHeap
	inner := &Frame{
		Name: "fib", Depth: 1, File: "prog.py", Line: 3,
		Vars: []*Variable{{Name: "n", Value: NewRef(shared)}},
	}
	outer := &Frame{
		Name: "main", Depth: 0, File: "prog.py", Line: 9,
		Vars: []*Variable{{Name: "xs", Value: NewRef(shared)}},
	}
	inner.Parent = outer
	st := &State{
		Frame:   inner,
		Globals: []*Variable{{Name: "G", Value: NewInt(1)}},
		Reason: PauseReason{
			Type: PauseWatch, Variable: "fib:n",
			Old: NewInt(1), New: NewInt(2),
			File: "prog.py", Line: 3,
		},
	}
	data, err := json.Marshal(st)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back State
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !back.Frame.Equal(st.Frame) {
		t.Errorf("frames differ:\n%s\n%s", back.Frame.Backtrace(), st.Frame.Backtrace())
	}
	if len(back.Globals) != 1 || back.Globals[0].Name != "G" {
		t.Errorf("globals differ: %v", back.Globals)
	}
	if back.Reason.Type != PauseWatch || back.Reason.Variable != "fib:n" {
		t.Errorf("reason differs: %v", back.Reason)
	}
	// Sharing across frames must survive.
	bi := back.Frame.Lookup("n").Value.Deref()
	bo := back.Frame.Parent.Lookup("xs").Value.Deref()
	if bi != bo {
		t.Error("cross-frame sharing lost")
	}
}

func TestQuickJSONRoundTrip(t *testing.T) {
	f := func(g valueGen) bool {
		data, err := json.Marshal(g.V)
		if err != nil {
			return false
		}
		var back Value
		if err := json.Unmarshal(data, &back); err != nil {
			return false
		}
		return g.V.Equal(&back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickJSONDeterministic(t *testing.T) {
	f := func(g valueGen) bool {
		a, err1 := json.Marshal(g.V)
		b, err2 := json.Marshal(g.V)
		return err1 == nil && err2 == nil && string(a) == string(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
