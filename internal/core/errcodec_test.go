package core

import (
	"encoding/json"
	"errors"
	"testing"
	"time"
)

// The error codec's contract: errors.Is identity and *TrackerError structure
// survive EncodeError → JSON → DecodeError, so a remote tracker's failures
// are indistinguishable from a local tracker's under the public API.

func TestErrorCodecSentinelIdentity(t *testing.T) {
	sentinels := []error{
		ErrNoProgram, ErrNotStarted, ErrExited, ErrUnknownVariable,
		ErrUnknownFunction, ErrBadLine, ErrUnsupported,
		ErrCommandTimeout, ErrSessionLost, ErrInferiorCrash,
	}
	for _, want := range sentinels {
		rt := RoundTripError(want)
		if !errors.Is(rt, want) {
			t.Errorf("round trip of %v lost its errors.Is identity (got %v)", want, rt)
		}
	}
}

func TestErrorCodecTrackerError(t *testing.T) {
	orig := &TrackerError{
		Op:        "Resume",
		Kind:      "minigdb",
		File:      "prog.c",
		Line:      12,
		Recovery:  RecoveryRestarted,
		Lost:      []string{"watch ::g"},
		Trail:     []string{"cmd exec-continue", "record ^error"},
		Backtrace: []string{"main at prog.c:12"},
		Err:       ErrSessionLost,
	}
	// Through actual JSON, as the wire would carry it.
	data, err := json.Marshal(EncodeError(orig))
	if err != nil {
		t.Fatal(err)
	}
	var ej ErrorJSON
	if err := json.Unmarshal(data, &ej); err != nil {
		t.Fatal(err)
	}
	rt := ej.DecodeError()

	var te *TrackerError
	if !errors.As(rt, &te) {
		t.Fatalf("decoded error is %T, want *TrackerError", rt)
	}
	if te.Op != orig.Op || te.Kind != orig.Kind || te.File != orig.File || te.Line != orig.Line {
		t.Errorf("decoded header = %q/%q/%q:%d, want %q/%q/%q:%d",
			te.Op, te.Kind, te.File, te.Line, orig.Op, orig.Kind, orig.File, orig.Line)
	}
	if te.Recovery != RecoveryRestarted {
		t.Errorf("decoded recovery = %v, want restarted", te.Recovery)
	}
	if len(te.Lost) != 1 || te.Lost[0] != "watch ::g" {
		t.Errorf("decoded lost = %v, want [watch ::g]", te.Lost)
	}
	if len(te.Trail) != 2 || len(te.Backtrace) != 1 {
		t.Errorf("decoded trail/backtrace = %d/%d entries, want 2/1", len(te.Trail), len(te.Backtrace))
	}
	if !errors.Is(rt, ErrSessionLost) {
		t.Error("decoded error lost its ErrSessionLost identity")
	}
}

func TestErrorCodecPlainError(t *testing.T) {
	rt := RoundTripError(errors.New("remote: server at session limit"))
	if rt == nil || rt.Error() != "remote: server at session limit" {
		t.Errorf("plain error round trip = %v", rt)
	}
	if code := ErrorCode(rt); code != "" {
		t.Errorf("plain error got sentinel code %q", code)
	}
}

func TestErrorCodecNil(t *testing.T) {
	if EncodeError(nil) != nil {
		t.Error("EncodeError(nil) != nil")
	}
	var ej *ErrorJSON
	if ej.DecodeError() != nil {
		t.Error("nil ErrorJSON decoded to non-nil error")
	}
}

func TestErrorCodecUnknownForwardCompat(t *testing.T) {
	// A newer peer may send codes and recovery statuses this side does not
	// know; the decode degrades to a plain message instead of failing.
	ej := &ErrorJSON{Op: "Resume", Kind: "minipy", Code: "brand_new_code",
		Recovery: "paused-for-replay", Msg: "something newer"}
	rt := ej.DecodeError()
	var te *TrackerError
	if !errors.As(rt, &te) {
		t.Fatalf("decoded error is %T, want *TrackerError", rt)
	}
	if te.Recovery != RecoveryNone {
		t.Errorf("unknown recovery decoded to %v, want none", te.Recovery)
	}
	if rt.Error() == "" {
		t.Error("decoded error lost its message")
	}
}

func TestErrorCodecRetryAfter(t *testing.T) {
	// A busy refusal decorated with a retry-after hint survives the wire
	// with its sentinel identity, its hint, and its exact message.
	src := &RetryAfterError{After: 500 * time.Millisecond, Err: ErrServerBusy}
	rt := RoundTripError(src)
	if !errors.Is(rt, ErrServerBusy) {
		t.Fatalf("round trip lost sentinel: %v", rt)
	}
	if got := RetryAfterHint(rt); got != 500*time.Millisecond {
		t.Fatalf("round trip hint = %v, want 500ms", got)
	}
	if rt.Error() != src.Error() {
		t.Fatalf("round trip message %q != %q", rt.Error(), src.Error())
	}
	// A second trip is stable (no re-appended hint text).
	rt2 := RoundTripError(rt)
	if rt2.Error() != rt.Error() || RetryAfterHint(rt2) != 500*time.Millisecond {
		t.Fatalf("second round trip drifted: %q", rt2.Error())
	}
}

func TestErrorCodecRefusalSentinels(t *testing.T) {
	for _, tc := range []struct {
		err  error
		code string
	}{
		{ErrServerBusy, "server_busy"},
		{ErrServerDraining, "server_draining"},
	} {
		if got := ErrorCode(tc.err); got != tc.code {
			t.Errorf("ErrorCode(%v) = %q, want %q", tc.err, got, tc.code)
		}
		if !errors.Is(RoundTripError(tc.err), tc.err) {
			t.Errorf("%v lost identity over the wire", tc.err)
		}
	}
}

func TestErrorCodecRetryAfterInsideTrackerError(t *testing.T) {
	src := WrapErr("remote", "LoadProgram", "", 0,
		&RetryAfterError{After: 250 * time.Millisecond, Err: ErrServerDraining})
	rt := RoundTripError(src)
	if !errors.Is(rt, ErrServerDraining) {
		t.Fatalf("sentinel lost: %v", rt)
	}
	if got := RetryAfterHint(rt); got != 250*time.Millisecond {
		t.Fatalf("hint lost inside TrackerError: %v", got)
	}
}
