// Package dbg implements MiniGDB, the source-level debugger for compiled
// MiniC/assembly programs — the GDB stand-in of the EasyTracker
// reproduction. It adds, on top of the raw machine (internal/vm),
// source-line stepping over the debug line table, line/function breakpoints
// with the paper's maxdepth extension, named watchpoints, frame unwinding
// over the fp chain, and typed memory inspection producing the
// language-agnostic core state model.
//
// Everything in this package corresponds to the right-hand box of the
// paper's Fig. 4: GDB plus the custom Python extensions the authors load
// into it. The MI protocol wrapper lives in internal/mi.
package dbg

import (
	"errors"
	"fmt"
	"sort"

	"easytracker/internal/isa"
	"easytracker/internal/vm"
)

// StopReason says why the debugger returned control.
type StopReason int

const (
	// StopNone: not started.
	StopNone StopReason = iota
	// StopEntry: paused at main's first line after Start.
	StopEntry
	// StopStep: a step/next command completed.
	StopStep
	// StopBreakpoint: a breakpoint was hit.
	StopBreakpoint
	// StopWatch: a watchpoint fired.
	StopWatch
	// StopExited: the program terminated.
	StopExited
	// StopFault: the machine faulted (segfault, division by zero).
	StopFault
	// StopInterrupted: the supervision layer converted the running command
	// into a pause — a cooperative interrupt (-exec-interrupt) or a
	// tripped instruction budget. The inferior is alive and resumable.
	StopInterrupted
)

// String names the stop reason.
func (r StopReason) String() string {
	switch r {
	case StopNone:
		return "none"
	case StopEntry:
		return "entry"
	case StopStep:
		return "end-stepping-range"
	case StopBreakpoint:
		return "breakpoint-hit"
	case StopWatch:
		return "watchpoint-trigger"
	case StopExited:
		return "exited"
	case StopFault:
		return "signal-received"
	case StopInterrupted:
		return "interrupted"
	}
	return fmt.Sprintf("StopReason(%d)", int(r))
}

// Stop describes a pause of the inferior.
type Stop struct {
	Reason StopReason
	// Breakpoint is the hit breakpoint's id for StopBreakpoint.
	Breakpoint int
	// Watch describes the watchpoint trigger for StopWatch.
	Watch *WatchStop
	// ExitCode is valid for StopExited.
	ExitCode int
	// Fault holds the fault message for StopFault.
	Fault string
	// Detail names what stopped the run for StopInterrupted ("interrupt"
	// or "step-budget").
	Detail string
	// Line and Function locate the pause.
	Line     int
	Function string
}

// WatchStop is a fired watchpoint.
type WatchStop struct {
	ID   int
	Name string
	// Old and New are the raw watched bytes before/after.
	Old, New []byte
	Addr     uint64
	Size     uint64
}

// Breakpoint is an armed breakpoint.
type Breakpoint struct {
	ID int
	// PCs are the machine addresses armed for this breakpoint (a line
	// may span several ranges; a function-exit breakpoint arms every
	// RET).
	PCs []uint64
	// Line and Function describe the source target.
	Line     int
	Function string
	// MaxDepth, when positive, suppresses hits at frame depth >= it
	// (the paper's custom maxdepth breakpoint).
	MaxDepth int
	// Internal breakpoints never surface to the client; they are used
	// by trackers (heap interposition bookkeeping).
	Internal bool
	// Temporary breakpoints are removed after the first hit.
	Temporary bool
	// Cond, when non-nil, gates reporting: a hit whose condition
	// evaluates false resumes silently, through the same filter as
	// maxdepth. The closure is installed by the session layer (which owns
	// expression compilation and evaluation); the debugger stays
	// expression-agnostic.
	Cond func() bool
	// IgnoreLeft suppresses that many condition-passing hits before the
	// breakpoint reports.
	IgnoreLeft int
}

// Watchpoint is an armed data watchpoint.
type Watchpoint struct {
	ID   int
	Name string
	Addr uint64
	Size uint64
	// Internal watchpoints are consumed by trackers, not reported.
	Internal bool
	// Cond and IgnoreLeft gate reporting like their Breakpoint
	// counterparts: a false condition or an unconsumed ignore credit
	// resumes silently.
	Cond       func() bool
	IgnoreLeft int
	vmID       int
}

// ErrNotStarted is returned by control calls before Start.
var ErrNotStarted = errors.New("dbg: inferior not started")

// ErrExited is returned by control calls after termination.
var ErrExited = errors.New("dbg: inferior has exited")

// Debugger drives one machine instance.
type Debugger struct {
	m    *vm.Machine
	prog *isa.Program

	started  bool
	exited   bool
	exitCode int
	lastStop Stop
	lastLine int

	nextBPID int
	bps      map[int]*Breakpoint
	watches  map[int]*Watchpoint

	// heapMap is the tracker-maintained map of live heap blocks
	// (address -> size), fed through the SetHeapMap extension; used to
	// expand heap pointers into arrays during inspection.
	heapMap map[uint64]uint64

	// StepBudget bounds machine instructions per control command.
	StepBudget uint64
}

// New builds a debugger over a fresh machine for prog.
func New(prog *isa.Program, cfg vm.Config) (*Debugger, error) {
	m, err := vm.New(prog, cfg)
	if err != nil {
		return nil, err
	}
	return &Debugger{
		m: m, prog: prog,
		bps:        map[int]*Breakpoint{},
		watches:    map[int]*Watchpoint{},
		heapMap:    map[uint64]uint64{},
		StepBudget: 200_000_000,
	}, nil
}

// Machine exposes the underlying machine (registers, raw memory).
func (d *Debugger) Machine() *vm.Machine { return d.m }

// DataVersion returns the machine's store counter; see vm.Machine.DataVersion.
func (d *Debugger) DataVersion() uint64 { return d.m.DataVersion() }

// WatchVersions maps each armed watchpoint's debugger ID to its store
// counter (stores so far that overlapped its range).
func (d *Debugger) WatchVersions() map[int]uint64 {
	out := make(map[int]uint64, len(d.watches))
	for id, w := range d.watches {
		out[id] = d.m.WatchVersion(w.vmID)
	}
	return out
}

// Prog returns the program image.
func (d *Debugger) Prog() *isa.Program { return d.prog }

// LastStop returns the most recent stop.
func (d *Debugger) LastStop() Stop { return d.lastStop }

// LastLine returns the line that most recently finished executing.
func (d *Debugger) LastLine() int { return d.lastLine }

// Exited reports termination.
func (d *Debugger) Exited() (int, bool) { return d.exitCode, d.exited }

// CurrentLine returns the source line of the current pc (0 in runtime code).
func (d *Debugger) CurrentLine() int { return d.prog.LineAt(d.m.PC()) }

// CurrentFunc returns the function containing the pc.
func (d *Debugger) CurrentFunc() *isa.FuncInfo { return d.prog.FuncAt(d.m.PC()) }

// Start begins execution and pauses at main's first source line.
func (d *Debugger) Start() (Stop, error) {
	if d.started {
		return Stop{}, errors.New("dbg: already started")
	}
	d.started = true
	main := d.prog.FuncByName("main")
	target := d.prog.Entry
	if main != nil {
		target = main.PrologueEnd
		if target == 0 {
			target = main.Entry
		}
	}
	// Run to the entry stop without honoring user breakpoints (none can
	// legitimately fire before main's first line in our programs).
	for i := uint64(0); i < d.StepBudget; i++ {
		if d.m.PC() == target {
			d.lastStop = d.locate(Stop{Reason: StopEntry})
			return d.lastStop, nil
		}
		stop := d.m.StepOne()
		switch stop.Kind {
		case vm.StopStep:
		case vm.StopExit:
			return d.finish(stop), nil
		case vm.StopFault:
			return d.fault(stop), nil
		default:
			// Watch hits before main belong to nobody; ignore.
		}
	}
	return Stop{}, fmt.Errorf("dbg: entry not reached within budget")
}

// locate fills Line/Function from the current pc.
func (d *Debugger) locate(s Stop) Stop {
	s.Line = d.prog.LineAt(d.m.PC())
	if f := d.prog.FuncAt(d.m.PC()); f != nil {
		s.Function = f.Name
	}
	return s
}

func (d *Debugger) finish(stop vm.Stop) Stop {
	d.exited = true
	d.exitCode = stop.ExitCode
	d.lastStop = Stop{Reason: StopExited, ExitCode: stop.ExitCode}
	return d.lastStop
}

func (d *Debugger) fault(stop vm.Stop) Stop {
	d.exited = true
	d.exitCode = 139
	d.lastStop = d.locate(Stop{Reason: StopFault, Fault: stop.Err.Error(), ExitCode: 139})
	return d.lastStop
}

// interrupted reports a supervision stop (cooperative interrupt or tripped
// instruction budget) as a normal, located pause: the inferior stays alive
// and resumable, with registers, memory and frames inspectable.
func (d *Debugger) interrupted(detail string) Stop {
	d.lastStop = d.locate(Stop{Reason: StopInterrupted, Detail: detail})
	return d.lastStop
}

// Depth returns the current frame depth: main's frame is 0.
func (d *Debugger) Depth() int {
	return len(d.Unwind()) - 1
}

// FrameRec is one unwound stack frame.
type FrameRec struct {
	Fn *isa.FuncInfo
	PC uint64
	FP uint64
}

// Unwind walks the fp chain from the current pc outward, stopping at
// _start. The innermost frame is first.
func (d *Debugger) Unwind() []FrameRec {
	var out []FrameRec
	pc := d.m.PC()
	fp := d.m.Reg(isa.FP)
	for i := 0; i < 10000; i++ {
		fn := d.prog.FuncAt(pc)
		if fn == nil || fn.Name == "_start" {
			break
		}
		out = append(out, FrameRec{Fn: fn, PC: pc, FP: fp})
		retPC, err1 := d.m.ReadU64(fp - 8)
		callerFP, err2 := d.m.ReadU64(fp - 16)
		if err1 != nil || err2 != nil {
			break
		}
		pc, fp = retPC, callerFP
	}
	return out
}

// BreakAtLine arms a breakpoint before the given source line.
func (d *Debugger) BreakAtLine(line, maxDepth int) (*Breakpoint, error) {
	pcs := d.prog.PCsForLine(line)
	if len(pcs) == 0 {
		return nil, fmt.Errorf("dbg: no code at line %d", line)
	}
	return d.addBP(&Breakpoint{PCs: pcs, Line: line, MaxDepth: maxDepth}), nil
}

// BreakAtFunc arms a breakpoint at the named function's prologue end, so
// arguments are inspectable when it fires.
func (d *Debugger) BreakAtFunc(name string, maxDepth int) (*Breakpoint, error) {
	fn := d.prog.FuncByName(name)
	if fn == nil {
		return nil, fmt.Errorf("dbg: no function %q", name)
	}
	pc := fn.PrologueEnd
	if pc == 0 {
		pc = fn.Entry
	}
	return d.addBP(&Breakpoint{
		PCs: []uint64{pc}, Function: name,
		Line: d.prog.LineAt(pc), MaxDepth: maxDepth,
	}), nil
}

// BreakAtFuncExit disassembles the function and arms a breakpoint at every
// RET instruction found — the paper's function-exit mechanism (its x86
// retq scan). The return value is in a0 when it fires.
func (d *Debugger) BreakAtFuncExit(name string) (*Breakpoint, error) {
	fn := d.prog.FuncByName(name)
	if fn == nil {
		return nil, fmt.Errorf("dbg: no function %q", name)
	}
	var pcs []uint64
	for _, line := range d.prog.Disassemble(fn.Entry, fn.End) {
		if line.Instr.IsRet() {
			pcs = append(pcs, line.PC)
		}
	}
	if len(pcs) == 0 {
		return nil, fmt.Errorf("dbg: no ret instruction found in %q", name)
	}
	return d.addBP(&Breakpoint{PCs: pcs, Function: name, Line: fn.BodyEnd}), nil
}

// BreakAtPC arms a raw instruction breakpoint.
func (d *Debugger) BreakAtPC(pc uint64) *Breakpoint {
	return d.addBP(&Breakpoint{PCs: []uint64{pc}})
}

func (d *Debugger) addBP(bp *Breakpoint) *Breakpoint {
	d.nextBPID++
	bp.ID = d.nextBPID
	d.bps[bp.ID] = bp
	for _, pc := range bp.PCs {
		d.m.AddBreakpoint(pc)
	}
	return bp
}

// RemoveBreakpoint disarms a breakpoint; machine breakpoints shared with
// other Breakpoints stay armed.
func (d *Debugger) RemoveBreakpoint(id int) {
	bp, ok := d.bps[id]
	if !ok {
		return
	}
	delete(d.bps, id)
	for _, pc := range bp.PCs {
		if !d.pcArmed(pc) {
			d.m.RemoveBreakpoint(pc)
		}
	}
}

func (d *Debugger) pcArmed(pc uint64) bool {
	for _, bp := range d.bps {
		for _, p := range bp.PCs {
			if p == pc {
				return true
			}
		}
	}
	return false
}

// bpsAt returns the breakpoints armed at pc.
func (d *Debugger) bpsAt(pc uint64) []*Breakpoint {
	var out []*Breakpoint
	for _, bp := range d.bps {
		for _, p := range bp.PCs {
			if p == pc {
				out = append(out, bp)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// WatchGlobal arms a watchpoint on a global variable.
func (d *Debugger) WatchGlobal(name string, internal bool) (*Watchpoint, error) {
	g := d.prog.GlobalByName(name)
	if g == nil {
		return nil, fmt.Errorf("dbg: no global %q", name)
	}
	size := uint64(g.Type.Sizeof(d.prog.Structs))
	return d.watchAddr(name, uint64(g.Offset), size, internal), nil
}

// WatchLocal arms a watchpoint on a local of the named function. The
// address is frame-relative, so the watch is bound to the innermost live
// activation of that function at arming time.
func (d *Debugger) WatchLocal(fn, name string) (*Watchpoint, error) {
	for _, fr := range d.Unwind() {
		if fr.Fn.Name != fn {
			continue
		}
		for _, lv := range fr.Fn.Locals {
			if lv.Name == name {
				size := uint64(lv.Type.Sizeof(d.prog.Structs))
				return d.watchAddr(fn+":"+name, fr.FP+uint64(lv.Offset), size, false), nil
			}
		}
	}
	return nil, fmt.Errorf("dbg: no live local %s:%s", fn, name)
}

// WatchAddr arms a raw watchpoint.
func (d *Debugger) WatchAddr(name string, addr, size uint64) *Watchpoint {
	return d.watchAddr(name, addr, size, false)
}

func (d *Debugger) watchAddr(name string, addr, size uint64, internal bool) *Watchpoint {
	d.nextBPID++
	w := &Watchpoint{ID: d.nextBPID, Name: name, Addr: addr, Size: size, Internal: internal}
	w.vmID = d.m.AddWatch(addr, size)
	d.watches[w.ID] = w
	return w
}

// RemoveWatch disarms a watchpoint.
func (d *Debugger) RemoveWatch(id int) {
	if w, ok := d.watches[id]; ok {
		d.m.RemoveWatch(w.vmID)
		delete(d.watches, id)
	}
}

func (d *Debugger) watchByVMID(id int) *Watchpoint {
	for _, w := range d.watches {
		if w.vmID == id {
			return w
		}
	}
	return nil
}

// Continue resumes until a reportable stop. Internal and maxdepth-filtered
// hits are handled by resuming transparently; internal watch hits are
// delivered to onInternal (may be nil) without pausing.
func (d *Debugger) Continue(onInternal func(*Watchpoint, *vm.WatchHit)) (Stop, error) {
	if !d.started {
		return Stop{}, ErrNotStarted
	}
	if d.exited {
		return Stop{}, ErrExited
	}
	start := d.m.Steps()
	for d.m.Steps()-start < d.StepBudget {
		stop := d.m.Run(d.StepBudget)
		switch stop.Kind {
		case vm.StopExit:
			return d.finish(stop), nil
		case vm.StopFault:
			return d.fault(stop), nil
		case vm.StopInterrupt:
			return d.interrupted("interrupt"), nil
		case vm.StopBudget:
			return d.interrupted("step-budget"), nil
		case vm.StopBreak:
			hit := d.reportableBP()
			if hit == nil {
				// Filtered out: step past and keep going.
				if s := d.m.StepOne(); s.Kind != vm.StopStep {
					return d.handleRaw(s, onInternal)
				}
				continue
			}
			if hit.Temporary {
				d.RemoveBreakpoint(hit.ID)
			}
			d.lastLine = d.prog.LineAt(d.m.PC()) // breakpoint is *before* the line
			d.lastStop = d.locate(Stop{Reason: StopBreakpoint, Breakpoint: hit.ID})
			if hit.Function != "" {
				d.lastStop.Function = hit.Function
			}
			return d.lastStop, nil
		case vm.StopWatch:
			w := d.watchByVMID(stop.Watch.ID)
			if w == nil {
				continue
			}
			if w.Internal {
				if onInternal != nil {
					onInternal(w, stop.Watch)
				}
				continue
			}
			if !d.reportableWatch(w) {
				continue
			}
			d.lastStop = d.locate(Stop{Reason: StopWatch, Watch: &WatchStop{
				ID: w.ID, Name: w.Name, Addr: w.Addr, Size: w.Size,
				Old: stop.Watch.Old, New: stop.Watch.New,
			}})
			return d.lastStop, nil
		case vm.StopEBreak:
			d.lastStop = d.locate(Stop{Reason: StopBreakpoint})
			return d.lastStop, nil
		default:
			return Stop{}, fmt.Errorf("dbg: unexpected machine stop %v", stop.Kind)
		}
	}
	// The per-command safety budget ran dry (a runaway that armed no
	// explicit limit): report it the same way as a tripped budget, so the
	// tool gets an inspectable pause, not a dead session.
	return d.interrupted("step-budget"), nil
}

func (d *Debugger) handleRaw(s vm.Stop, onInternal func(*Watchpoint, *vm.WatchHit)) (Stop, error) {
	switch s.Kind {
	case vm.StopExit:
		return d.finish(s), nil
	case vm.StopFault:
		return d.fault(s), nil
	case vm.StopWatch:
		w := d.watchByVMID(s.Watch.ID)
		if w != nil && w.Internal && onInternal != nil {
			onInternal(w, s.Watch)
		}
		return d.Continue(onInternal)
	}
	return Stop{}, fmt.Errorf("dbg: unexpected stop %v", s.Kind)
}

// reportableBP picks the breakpoint to report at the current pc, applying
// maxdepth filtering; nil means resume silently.
func (d *Debugger) reportableBP() *Breakpoint {
	var depth = -1
	for _, bp := range d.bpsAt(d.m.PC()) {
		if bp.Internal {
			continue
		}
		if bp.MaxDepth > 0 {
			if depth < 0 {
				depth = d.Depth()
			}
			if depth >= bp.MaxDepth {
				continue
			}
		}
		if bp.Cond != nil && !bp.Cond() {
			continue
		}
		if bp.IgnoreLeft > 0 {
			bp.IgnoreLeft--
			continue
		}
		return bp
	}
	return nil
}

// reportableWatch applies condition and ignore filtering to a non-internal
// watchpoint hit; false means resume silently.
func (d *Debugger) reportableWatch(w *Watchpoint) bool {
	if w.Cond != nil && !w.Cond() {
		return false
	}
	if w.IgnoreLeft > 0 {
		w.IgnoreLeft--
		return false
	}
	return true
}

// StepLine executes until a different source line is reached, entering
// calls (GDB's step). Runtime code (no line info) is skipped; entering a
// function lands past its prologue. Breakpoints, watchpoints, exits and
// faults interrupt the step and are reported instead.
func (d *Debugger) StepLine(onInternal func(*Watchpoint, *vm.WatchHit)) (Stop, error) {
	return d.stepCore(false, onInternal)
}

// NextLine executes until a different source line at the same or shallower
// frame depth (GDB's next).
func (d *Debugger) NextLine(onInternal func(*Watchpoint, *vm.WatchHit)) (Stop, error) {
	return d.stepCore(true, onInternal)
}

func (d *Debugger) stepCore(over bool, onInternal func(*Watchpoint, *vm.WatchHit)) (Stop, error) {
	if !d.started {
		return Stop{}, ErrNotStarted
	}
	if d.exited {
		return Stop{}, ErrExited
	}
	startLine := d.prog.LineAt(d.m.PC())
	// depth counts call/return transitions relative to the start frame,
	// by classifying the executed instructions: +1 on `jal/jalr ra`,
	// -1 on `ret`.
	depth := 0

	for i := uint64(0); i < d.StepBudget; i++ {
		if d.m.TakeInterrupt() {
			return d.interrupted("interrupt"), nil
		}
		if d.m.TripStepLimit() {
			return d.interrupted("step-budget"), nil
		}
		var isCall, isRet bool
		if idx, ok := isa.PCToIndex(d.m.PC()); ok && idx < len(d.prog.Instrs) {
			ins := d.prog.Instrs[idx]
			isCall = (ins.Op == isa.JAL || ins.Op == isa.JALR) && ins.Rd == isa.RA
			isRet = ins.IsRet()
		}
		stop := d.m.StepOne()
		if stop.Kind != vm.StopFault {
			if isCall {
				depth++
			}
			if isRet {
				depth--
			}
		}
		switch stop.Kind {
		case vm.StopStep:
		case vm.StopExit:
			d.lastLine = startLine
			return d.finish(stop), nil
		case vm.StopFault:
			return d.fault(stop), nil
		case vm.StopWatch:
			w := d.watchByVMID(stop.Watch.ID)
			if w != nil && w.Internal {
				if onInternal != nil {
					onInternal(w, stop.Watch)
				}
				continue
			}
			if w == nil || !d.reportableWatch(w) {
				continue
			}
			d.lastStop = d.locate(Stop{Reason: StopWatch, Watch: &WatchStop{
				ID: w.ID, Name: w.Name, Addr: w.Addr, Size: w.Size,
				Old: stop.Watch.Old, New: stop.Watch.New,
			}})
			return d.lastStop, nil
		case vm.StopEBreak:
			d.lastStop = d.locate(Stop{Reason: StopBreakpoint})
			return d.lastStop, nil
		}

		pc := d.m.PC()
		// User breakpoints interrupt stepping.
		if len(d.bpsAt(pc)) > 0 {
			if hit := d.reportableBP(); hit != nil {
				if hit.Temporary {
					d.RemoveBreakpoint(hit.ID)
				}
				d.lastLine = startLine
				d.lastStop = d.locate(Stop{Reason: StopBreakpoint, Breakpoint: hit.ID})
				return d.lastStop, nil
			}
		}

		if over && depth > 0 {
			continue // inside a callee: step over it
		}
		line := d.prog.LineAt(pc)
		if line == 0 {
			continue // runtime or _start code: invisible to stepping
		}
		fn := d.prog.FuncAt(pc)
		if fn == nil {
			continue
		}
		// Skip prologues: land where arguments are stored.
		if pc >= fn.Entry && pc < fn.PrologueEnd {
			continue
		}
		if line != startLine || depth != 0 {
			d.lastLine = startLine
			d.lastStop = d.locate(Stop{Reason: StopStep})
			return d.lastStop, nil
		}
	}
	return d.interrupted("step-budget"), nil
}

// SetHeapMap installs the tracker-maintained live-heap map used by
// inspection to size heap arrays (paper Section II-C1).
func (d *Debugger) SetHeapMap(m map[uint64]uint64) {
	d.heapMap = m
}

// HeapMap returns the installed heap map.
func (d *Debugger) HeapMap() map[uint64]uint64 { return d.heapMap }
