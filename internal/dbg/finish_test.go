package dbg

import (
	"testing"

	"easytracker/internal/isa"
	"easytracker/internal/vm"
)

func TestFinishReturnsToCaller(t *testing.T) {
	d := started(t, fibC, vm.Config{})
	// Step into fib(4).
	if _, err := d.StepLine(nil); err != nil {
		t.Fatal(err)
	}
	if d.CurrentFunc().Name != "fib" {
		t.Fatalf("not in fib: %s", d.CurrentFunc().Name)
	}
	stop, err := d.Finish(nil)
	if err != nil {
		t.Fatal(err)
	}
	if stop.Reason != StopBreakpoint {
		t.Fatalf("stop = %+v", stop)
	}
	if fn := d.CurrentFunc(); fn == nil || fn.Name != "main" {
		t.Errorf("finish landed in %v", fn)
	}
	// The return value of fib(4) is in a0.
	if got := int64(d.Machine().Reg(isa.A0)); got != 3 {
		t.Errorf("a0 = %d, want 3", got)
	}
}

func TestFinishSkipsRecursiveSiblings(t *testing.T) {
	d := started(t, fibC, vm.Config{})
	// Run into the deepest fib frame (`return n` with n=1 at depth 4).
	if _, err := d.BreakAtLine(3, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Continue(nil); err != nil {
		t.Fatal(err)
	}
	if d.Depth() != 4 {
		t.Fatalf("depth = %d", d.Depth())
	}
	stop, err := d.Finish(nil)
	if err != nil {
		t.Fatal(err)
	}
	if stop.Reason != StopBreakpoint {
		t.Fatalf("stop = %+v", stop)
	}
	// Finishing from depth 4 lands in the depth-3 activation, not in a
	// sibling activation that shares the same return address.
	if d.Depth() != 3 {
		t.Errorf("after finish depth = %d, want 3", d.Depth())
	}
}

// TestFinishInterruptedDoesNotRearm demonstrates the GDB limitation the
// paper describes: a finish interrupted by another stop does not pause at
// the function's return later.
func TestFinishInterruptedDoesNotRearm(t *testing.T) {
	src := `int g = 0;
int work() {
    g = 1;
    g = 2;
    return 9;
}
int main() {
    int r = work();
    return r;
}`
	d := started(t, src, vm.Config{})
	if _, err := d.BreakAtFunc("work", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Continue(nil); err != nil {
		t.Fatal(err)
	}
	if d.CurrentFunc().Name != "work" {
		t.Fatal("not in work")
	}
	// Watch g so the finish is interrupted mid-function.
	if _, err := d.WatchGlobal("g", false); err != nil {
		t.Fatal(err)
	}
	stop, err := d.Finish(nil)
	if err != nil {
		t.Fatal(err)
	}
	if stop.Reason != StopWatch {
		t.Fatalf("finish not interrupted: %+v", stop)
	}
	// Continue past the second watch hit; the finish breakpoint fires
	// because it has not been consumed yet — then after it is consumed,
	// nothing re-arms (run to completion).
	stops := []StopReason{}
	for {
		s, err := d.Continue(nil)
		if err != nil {
			t.Fatal(err)
		}
		stops = append(stops, s.Reason)
		if s.Reason == StopExited {
			break
		}
	}
	// watch (g=2), then the leftover finish breakpoint once, then exit.
	want := []StopReason{StopWatch, StopBreakpoint, StopExited}
	if len(stops) != len(want) {
		t.Fatalf("stops = %v", stops)
	}
	for i := range want {
		if stops[i] != want[i] {
			t.Errorf("stop %d = %v, want %v", i, stops[i], want[i])
		}
	}
}

func TestFinishFromMainFails(t *testing.T) {
	d := started(t, "int main() { return 0; }", vm.Config{})
	if _, err := d.Finish(nil); err == nil {
		t.Error("finish with no caller succeeded")
	}
}
