package dbg

import (
	"fmt"
	"math"
	"strings"

	"easytracker/internal/core"
	"easytracker/internal/isa"
)

// Inspector converts typed inferior memory into the language-agnostic core
// state model. One Inspector corresponds to one snapshot: (address, type)
// pairs are memoized so aliased pointers share core.Value identity and
// cyclic structures (linked lists pointing back) terminate.
//
// This is the paper's custom GDB inspection command (Section II-C1): it
// recursively explores stack frames and the memory reachable from local
// variables, using the heap-block map for dynamic array sizes.
type Inspector struct {
	d    *Debugger
	memo map[string]*core.Value
}

// NewInspector starts a fresh inspection snapshot.
func (d *Debugger) NewInspector() *Inspector {
	return &Inspector{d: d, memo: map[string]*core.Value{}}
}

// locationOf classifies an address into the conceptual memory regions.
func (in *Inspector) locationOf(addr uint64) core.Location {
	for _, seg := range in.d.m.Segments() {
		if addr >= seg.Start && addr < seg.Start+seg.Size {
			switch seg.Name {
			case "stack":
				return core.LocStack
			case "heap":
				return core.LocHeap
			case "data":
				return core.LocGlobal
			case "text":
				return core.LocGlobal
			}
		}
	}
	return core.LocNowhere
}

// ValueAt reads a value of the given type at addr.
func (in *Inspector) ValueAt(addr uint64, ty *isa.TypeInfo) *core.Value {
	key := fmt.Sprintf("%d:%s", addr, ty)
	if v, ok := in.memo[key]; ok {
		return v
	}
	v := &core.Value{
		Address:      addr,
		Location:     in.locationOf(addr),
		LanguageType: ty.String(),
	}
	in.memo[key] = v
	in.fill(v, addr, ty)
	return v
}

func (in *Inspector) fill(v *core.Value, addr uint64, ty *isa.TypeInfo) {
	m := in.d.m
	switch ty.Kind {
	case isa.KInt:
		raw, err := m.ReadU64(addr)
		if err != nil {
			v.Kind = core.Invalid
			return
		}
		v.Kind = core.Primitive
		v.Content = int64(raw)
	case isa.KChar:
		b, err := m.ReadMem(addr, 1)
		if err != nil {
			v.Kind = core.Invalid
			return
		}
		v.Kind = core.Primitive
		v.Content = int64(int8(b[0]))
	case isa.KDouble:
		raw, err := m.ReadU64(addr)
		if err != nil {
			v.Kind = core.Invalid
			return
		}
		v.Kind = core.Primitive
		v.Content = math.Float64frombits(raw)
	case isa.KPtr:
		raw, err := m.ReadU64(addr)
		if err != nil {
			v.Kind = core.Invalid
			return
		}
		in.fillPointer(v, raw, ty.Elem)
	case isa.KArray:
		v.Kind = core.List
		esz := uint64(ty.Elem.Sizeof(in.d.prog.Structs))
		elems := make([]*core.Value, ty.Len)
		for i := range elems {
			elems[i] = in.ValueAt(addr+uint64(i)*esz, ty.Elem)
		}
		v.Content = elems
	case isa.KStruct:
		lay, ok := in.d.prog.Structs[ty.Name]
		if !ok {
			v.Kind = core.Invalid
			return
		}
		v.Kind = core.Struct
		fields := make([]core.Field, len(lay.Fields))
		for i, f := range lay.Fields {
			fields[i] = core.Field{
				Name:  f.Name,
				Value: in.ValueAt(addr+uint64(f.Offset), f.Type),
			}
		}
		v.Content = fields
	case isa.KFunc:
		raw, err := m.ReadU64(addr)
		if err != nil {
			v.Kind = core.Invalid
			return
		}
		if fn := in.d.prog.FuncAt(raw); fn != nil {
			v.Kind = core.Function
			v.Content = fn.Name
		} else {
			v.Kind = core.Invalid
		}
	default:
		v.Kind = core.Invalid
	}
}

// fillPointer interprets a pointer value (the pointer cell itself lives at
// v.Address; ptr is the target address).
func (in *Inspector) fillPointer(v *core.Value, ptr uint64, elem *isa.TypeInfo) {
	m := in.d.m
	// char* is a PRIMITIVE string per the paper's model.
	if elem.Kind == isa.KChar {
		if ptr == 0 || !m.InRange(ptr, 1) {
			v.Kind = core.Invalid
			return
		}
		s, err := m.ReadCString(ptr, 1<<16)
		if err != nil {
			v.Kind = core.Invalid
			return
		}
		v.Kind = core.Primitive
		v.Content = s
		return
	}
	// Function pointers resolve to the pointed-to function's name.
	if elem.Kind == isa.KFunc || in.d.prog.FuncAt(ptr) != nil && elem.Kind == isa.KVoid {
		if fn := in.d.prog.FuncAt(ptr); fn != nil {
			v.Kind = core.Function
			v.Content = fn.Name
			return
		}
	}
	esz := uint64(elem.Sizeof(in.d.prog.Structs))
	if ptr == 0 || esz == 0 || !m.InRange(ptr, esz) {
		v.Kind = core.Invalid
		return
	}
	// Data pointers into the text segment are invalid (code is not data).
	if ptr < isa.DataBase {
		v.Kind = core.Invalid
		return
	}
	// Heap pointers to a tracked block expand to the whole array when
	// the block holds more than one element (the paper's heap-size
	// mechanism: plain int* plus the interposition map).
	if size, ok := in.d.heapMap[ptr]; ok && size > esz {
		n := int(size / esz)
		v.Kind = core.Ref
		arr := &core.Value{
			Address:      ptr,
			Location:     core.LocHeap,
			LanguageType: fmt.Sprintf("%s[%d]", elem, n),
			Kind:         core.List,
		}
		akey := fmt.Sprintf("%d:%s[%d]", ptr, elem, n)
		if prev, ok := in.memo[akey]; ok {
			v.Content = prev
			return
		}
		in.memo[akey] = arr
		elems := make([]*core.Value, n)
		for i := range elems {
			elems[i] = in.ValueAt(ptr+uint64(i)*esz, elem)
		}
		arr.Content = elems
		v.Content = arr
		return
	}
	v.Kind = core.Ref
	v.Content = in.ValueAt(ptr, elem)
}

// FrameVars builds the Variables of one unwound frame, honoring the scope
// ranges in the debug info (a local shows up only after its declaration).
func (in *Inspector) FrameVars(fr FrameRec) []*core.Variable {
	var out []*core.Variable
	for _, lv := range fr.Fn.Locals {
		if lv.ScopeStart != 0 && (fr.PC < lv.ScopeStart || fr.PC >= lv.ScopeEnd) {
			continue
		}
		addr := fr.FP + uint64(lv.Offset)
		out = append(out, &core.Variable{
			Name:  lv.Name,
			Value: in.ValueAt(addr, lv.Type),
		})
	}
	return out
}

// Frame converts the whole unwound stack into a core.Frame chain; the
// innermost frame is returned. Depth 0 is main.
func (in *Inspector) Frame() *core.Frame {
	recs := in.d.Unwind()
	var parent *core.Frame
	// Build outermost -> innermost.
	for i := len(recs) - 1; i >= 0; i-- {
		fr := recs[i]
		cf := &core.Frame{
			Name:   fr.Fn.Name,
			Depth:  len(recs) - 1 - i,
			File:   in.d.prog.SourceFile,
			Line:   in.d.prog.LineAt(fr.PC),
			PC:     fr.PC,
			Vars:   in.FrameVars(fr),
			Parent: parent,
		}
		parent = cf
	}
	return parent
}

// Globals converts the program's global variables, hiding runtime internals
// (names starting with __).
func (in *Inspector) Globals(includeInternal bool) []*core.Variable {
	var out []*core.Variable
	for _, g := range in.d.prog.Globals {
		if !includeInternal && strings.HasPrefix(g.Name, "__") {
			continue
		}
		out = append(out, &core.Variable{
			Name:  g.Name,
			Value: in.ValueAt(uint64(g.Offset), g.Type),
		})
	}
	return out
}

// State assembles a full snapshot with the given pause reason.
func (d *Debugger) State(reason core.PauseReason) *core.State {
	in := d.NewInspector()
	return &core.State{
		Frame:   in.Frame(),
		Globals: in.Globals(false),
		Reason:  reason,
	}
}
