package dbg

import (
	"strings"
	"testing"

	"easytracker/internal/core"
	"easytracker/internal/isa"
	"easytracker/internal/vm"
)

func TestAccessors(t *testing.T) {
	d := started(t, fibC, vm.Config{})
	if d.Prog() == nil {
		t.Error("Prog nil")
	}
	if d.LastStop().Reason != StopEntry {
		t.Errorf("LastStop = %v", d.LastStop())
	}
	if _, err := d.StepLine(nil); err != nil {
		t.Fatal(err)
	}
	if d.LastLine() != 8 {
		t.Errorf("LastLine = %d", d.LastLine())
	}
	for _, r := range []StopReason{StopNone, StopEntry, StopStep,
		StopBreakpoint, StopWatch, StopExited, StopFault, StopReason(99)} {
		if r.String() == "" {
			t.Errorf("empty name for %d", int(r))
		}
	}
	if d.HeapMap() == nil {
		t.Error("HeapMap nil")
	}
}

func TestWatchAddrAndRemove(t *testing.T) {
	src := `int g = 0;
int main() {
    g = 1;
    g = 2;
    return 0;
}`
	d := started(t, src, vm.Config{})
	g := d.Prog().GlobalByName("g")
	w := d.WatchAddr("raw-g", uint64(g.Offset), 8)
	stop, err := d.Continue(nil)
	if err != nil {
		t.Fatal(err)
	}
	if stop.Reason != StopWatch || stop.Watch.Name != "raw-g" {
		t.Fatalf("stop = %+v", stop)
	}
	d.RemoveWatch(w.ID)
	stop, err = d.Continue(nil)
	if err != nil {
		t.Fatal(err)
	}
	if stop.Reason != StopExited {
		t.Errorf("after removal: %v", stop.Reason)
	}
	// Removing an unknown id is a no-op.
	d.RemoveWatch(99999)
}

// TestMaxDepthFilteredWithInternalWatch drives the Continue path where a
// maxdepth-filtered breakpoint coincides with internal watch traffic
// (exercising handleRaw).
func TestMaxDepthFilteredBreakpointInLoop(t *testing.T) {
	src := `int g = 0;
int tick(int d) {
    g = g + 1;
    if (d == 0) {
        return 0;
    }
    return tick(d - 1);
}
int main() {
    tick(5);
    return 0;
}`
	d := started(t, src, vm.Config{})
	// Watch internally so each g mutation produces internal traffic.
	if _, err := d.WatchGlobal("g", true); err != nil {
		t.Fatal(err)
	}
	if _, err := d.BreakAtFunc("tick", 2); err != nil {
		t.Fatal(err)
	}
	internal := 0
	hits := 0
	for {
		stop, err := d.Continue(func(w *Watchpoint, h *vm.WatchHit) { internal++ })
		if err != nil {
			t.Fatal(err)
		}
		if stop.Reason == StopExited {
			break
		}
		hits++
	}
	if hits != 1 {
		t.Errorf("reported hits = %d, want 1", hits)
	}
	if internal != 6 {
		t.Errorf("internal watch hits = %d, want 6", internal)
	}
}

func TestInspectDoubleAndFuncPointer(t *testing.T) {
	src := `int helper() {
    return 1;
}
int main() {
    double d = 2.5;
    double* pd = &d;
    long fn = (long)helper;
    return 0;
}`
	d := started(t, src, vm.Config{})
	if _, err := d.BreakAtLine(8, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Continue(nil); err != nil {
		t.Fatal(err)
	}
	fr := d.NewInspector().Frame()
	pd := fr.Lookup("pd").Value
	if pd.Kind != core.Ref {
		t.Fatalf("pd = %+v", pd)
	}
	if f, ok := pd.Deref().Float(); !ok || f != 2.5 {
		t.Errorf("*pd = %s", pd.Deref())
	}
	fn := fr.Lookup("fn").Value
	if v, ok := fn.Int(); !ok || v == 0 {
		t.Errorf("fn = %s", fn)
	}
}

func TestInspectCharArrayAndGlobalsInternalFlag(t *testing.T) {
	src := `char msg[4] = {104, 105, 33, 0};
int main() {
    return 0;
}`
	// Globals with brace-initialized char arrays.
	d := started(t, src, vm.Config{})
	in := d.NewInspector()
	var msg *core.Value
	for _, g := range in.Globals(false) {
		if g.Name == "msg" {
			msg = g.Value
		}
	}
	if msg == nil || msg.Kind != core.List || len(msg.Elems()) != 4 {
		t.Fatalf("msg = %v", msg)
	}
	if v, _ := msg.Elems()[0].Int(); v != 104 {
		t.Errorf("msg[0] = %s", msg.Elems()[0])
	}
	// Internal globals only appear when requested.
	hasInternal := func(include bool) bool {
		for _, g := range d.NewInspector().Globals(include) {
			if strings.HasPrefix(g.Name, "__et_") {
				return true
			}
		}
		return false
	}
	if hasInternal(false) {
		t.Error("internal globals leaked")
	}
	if !hasInternal(true) {
		t.Error("internal globals missing when requested")
	}
}

func TestStepInterruptedByUserWatch(t *testing.T) {
	// A watchpoint firing during a NextLine (inside the skipped callee)
	// interrupts the step.
	src := `int g = 0;
int work() {
    g = 7;
    return 0;
}
int main() {
    work();
    return 0;
}`
	d := started(t, src, vm.Config{})
	if _, err := d.WatchGlobal("g", false); err != nil {
		t.Fatal(err)
	}
	stop, err := d.NextLine(nil)
	if err != nil {
		t.Fatal(err)
	}
	if stop.Reason != StopWatch {
		t.Errorf("stop = %v, want watch interrupt", stop.Reason)
	}
}

func TestStepToExitReportsExit(t *testing.T) {
	d := started(t, "int main() { return 3; }", vm.Config{})
	stop, err := d.StepLine(nil)
	if err != nil {
		t.Fatal(err)
	}
	if stop.Reason != StopExited || stop.ExitCode != 3 {
		t.Errorf("stop = %+v", stop)
	}
	if _, err := d.StepLine(nil); err != ErrExited {
		t.Errorf("step after exit = %v", err)
	}
	if _, err := d.NextLine(nil); err != ErrExited {
		t.Errorf("next after exit = %v", err)
	}
}

func TestUnstartedErrors(t *testing.T) {
	d := build(t, fibC, vm.Config{})
	if _, err := d.Continue(nil); err != ErrNotStarted {
		t.Errorf("Continue = %v", err)
	}
	if _, err := d.StepLine(nil); err != ErrNotStarted {
		t.Errorf("StepLine = %v", err)
	}
	if _, err := d.Finish(nil); err != ErrNotStarted {
		t.Errorf("Finish = %v", err)
	}
}

func TestBreakAtPCDirect(t *testing.T) {
	d := started(t, fibC, vm.Config{})
	fn := d.Prog().FuncByName("fib")
	bp := d.BreakAtPC(fn.Entry)
	if bp.ID == 0 {
		t.Fatal("no id")
	}
	stop, err := d.Continue(nil)
	if err != nil {
		t.Fatal(err)
	}
	if stop.Reason != StopBreakpoint {
		t.Errorf("stop = %v", stop.Reason)
	}
	if d.Machine().PC() != fn.Entry {
		t.Errorf("pc = %#x, want %#x", d.Machine().PC(), fn.Entry)
	}
	_ = isa.TextBase
}
