package dbg

import (
	"strings"
	"testing"

	"easytracker/internal/core"
	"easytracker/internal/isa"
	"easytracker/internal/minic"
	"easytracker/internal/vm"
)

const fibC = `int fib(int n) {
    if (n < 2) {
        return n;
    }
    return fib(n - 1) + fib(n - 2);
}
int main() {
    int r = fib(4);
    printf("%d\n", r);
    return 0;
}`

const ptrC = `int g = 7;
int main() {
    int x = 3;
    int* p = &x;
    int* bad = (int*)12345;
    int a[3] = {10, 20, 30};
    char* s = "hi";
    double d = 1.5;
    *p = 4;
    return 0;
}`

// build compiles src and starts a debugger over it.
func build(t *testing.T, src string, cfg vm.Config) *Debugger {
	t.Helper()
	prog, err := minic.Compile("prog.c", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	d, err := New(prog, cfg)
	if err != nil {
		t.Fatalf("dbg.New: %v", err)
	}
	return d
}

func started(t *testing.T, src string, cfg vm.Config) *Debugger {
	t.Helper()
	d := build(t, src, cfg)
	stop, err := d.Start()
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	if stop.Reason != StopEntry {
		t.Fatalf("start stop = %v", stop.Reason)
	}
	return d
}

func TestStartPausesAtMainFirstLine(t *testing.T) {
	d := started(t, fibC, vm.Config{})
	if d.CurrentLine() != 8 { // int r = fib(4);
		t.Errorf("entry line = %d, want 8", d.CurrentLine())
	}
	if fn := d.CurrentFunc(); fn == nil || fn.Name != "main" {
		t.Errorf("entry func = %v", fn)
	}
	if _, exited := d.Exited(); exited {
		t.Error("exited at entry")
	}
}

func TestStepAndNext(t *testing.T) {
	// step enters fib.
	d := started(t, fibC, vm.Config{})
	stop, err := d.StepLine(nil)
	if err != nil {
		t.Fatal(err)
	}
	if stop.Reason != StopStep || stop.Function != "fib" || stop.Line != 2 {
		t.Errorf("step landed at %s:%d (%v)", stop.Function, stop.Line, stop.Reason)
	}

	// next steps over the whole fib(4) call tree.
	var out strings.Builder
	d2 := started(t, fibC, vm.Config{Stdout: &out})
	stop, err = d2.NextLine(nil)
	if err != nil {
		t.Fatal(err)
	}
	if stop.Function != "main" || stop.Line != 9 {
		t.Errorf("next landed at %s:%d", stop.Function, stop.Line)
	}
	// r must already hold fib(4) = 3.
	in := d2.NewInspector()
	fr := in.Frame()
	if v, _ := fr.Lookup("r").Value.Int(); v != 3 {
		t.Errorf("r = %s", fr.Lookup("r").Value)
	}
}

func TestStepToCompletion(t *testing.T) {
	var out strings.Builder
	d := started(t, fibC, vm.Config{Stdout: &out})
	steps := 0
	for {
		if _, exited := d.Exited(); exited {
			break
		}
		if _, err := d.StepLine(nil); err != nil {
			t.Fatal(err)
		}
		steps++
		if steps > 500 {
			t.Fatal("too many steps")
		}
	}
	if out.String() != "3\n" {
		t.Errorf("output = %q", out.String())
	}
	if code, _ := d.Exited(); code != 0 {
		t.Errorf("exit code = %d", code)
	}
	// fib(4): enough steps to have entered the recursion.
	if steps < 20 {
		t.Errorf("only %d steps for fib(4) — stepping skipped lines?", steps)
	}
}

func TestLineBreakpoint(t *testing.T) {
	d := started(t, fibC, vm.Config{})
	bp, err := d.BreakAtLine(3, 0) // return n
	if err != nil {
		t.Fatal(err)
	}
	stop, err := d.Continue(nil)
	if err != nil {
		t.Fatal(err)
	}
	if stop.Reason != StopBreakpoint || stop.Breakpoint != bp.ID || stop.Line != 3 {
		t.Errorf("stop = %+v", stop)
	}
	// fib(4) reaches `return n` first with n=1 at depth 4.
	if d.Depth() != 4 {
		t.Errorf("depth = %d, want 4", d.Depth())
	}
	in := d.NewInspector()
	fr := in.Frame()
	if v, _ := fr.Lookup("n").Value.Int(); v != 1 {
		t.Errorf("n = %s", fr.Lookup("n").Value)
	}
}

func TestBreakpointMaxDepth(t *testing.T) {
	d := started(t, fibC, vm.Config{})
	if _, err := d.BreakAtFunc("fib", 2); err != nil {
		t.Fatal(err)
	}
	hits := 0
	for {
		stop, err := d.Continue(nil)
		if err != nil {
			t.Fatal(err)
		}
		if stop.Reason == StopExited {
			break
		}
		hits++
		if d.Depth() >= 2 {
			t.Errorf("paused at depth %d despite maxdepth 2", d.Depth())
		}
	}
	if hits != 1 {
		t.Errorf("hits = %d, want 1 (outermost fib only)", hits)
	}
}

func TestFuncEntryAndExitBreakpoints(t *testing.T) {
	d := started(t, fibC, vm.Config{})
	if _, err := d.BreakAtFunc("fib", 0); err != nil {
		t.Fatal(err)
	}
	exitBP, err := d.BreakAtFuncExit("fib")
	if err != nil {
		t.Fatal(err)
	}
	entries, exits := 0, 0
	var lastRet int64 = -99
	for {
		stop, err := d.Continue(nil)
		if err != nil {
			t.Fatal(err)
		}
		if stop.Reason == StopExited {
			break
		}
		if stop.Breakpoint == exitBP.ID {
			exits++
			lastRet = int64(d.Machine().Reg(isa.A0))
		} else {
			entries++
			// Entry breakpoint: argument must be initialized.
			in := d.NewInspector()
			if in.Frame().Lookup("n") == nil {
				t.Fatal("n not inspectable at function entry")
			}
		}
	}
	if entries != 9 || exits != 9 {
		t.Errorf("entries=%d exits=%d, want 9/9 for fib(4)", entries, exits)
	}
	if lastRet != 3 {
		t.Errorf("last return value = %d, want 3", lastRet)
	}
}

func TestExitBreakpointFindsAllRets(t *testing.T) {
	// The compiler emits a single epilogue, so one RET per function.
	d := build(t, fibC, vm.Config{})
	bp, err := d.BreakAtFuncExit("fib")
	if err != nil {
		t.Fatal(err)
	}
	if len(bp.PCs) != 1 {
		t.Errorf("fib exit breakpoints = %d, want 1 (single epilogue)", len(bp.PCs))
	}
	if _, err := d.BreakAtFuncExit("nosuch"); err == nil {
		t.Error("exit breakpoint on unknown function succeeded")
	}
}

func TestWatchGlobal(t *testing.T) {
	src := `int count = 0;
int main() {
    for (int i = 0; i < 3; i++) {
        count += 10;
    }
    return 0;
}`
	d := started(t, src, vm.Config{})
	w, err := d.WatchGlobal("count", false)
	if err != nil {
		t.Fatal(err)
	}
	var news []uint64
	for {
		stop, err := d.Continue(nil)
		if err != nil {
			t.Fatal(err)
		}
		if stop.Reason == StopExited {
			break
		}
		if stop.Reason != StopWatch || stop.Watch.ID != w.ID {
			t.Fatalf("unexpected stop %+v", stop)
		}
		news = append(news, leU64(stop.Watch.New))
	}
	want := []uint64{10, 20, 30}
	if len(news) != len(want) {
		t.Fatalf("watch fired %d times: %v", len(news), news)
	}
	for i := range want {
		if news[i] != want[i] {
			t.Errorf("hit %d: new = %d, want %d", i, news[i], want[i])
		}
	}
}

func leU64(b []byte) uint64 {
	var v uint64
	for i := len(b) - 1; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

func TestWatchLocal(t *testing.T) {
	src := `int main() {
    int x = 1;
    x = 2;
    x = 3;
    return x;
}`
	d := started(t, src, vm.Config{})
	if _, err := d.WatchLocal("main", "x"); err != nil {
		t.Fatal(err)
	}
	hits := 0
	for {
		stop, err := d.Continue(nil)
		if err != nil {
			t.Fatal(err)
		}
		if stop.Reason == StopExited {
			break
		}
		hits++
	}
	if hits != 3 {
		t.Errorf("watch hits = %d, want 3", hits)
	}
	if _, err := d.WatchLocal("main", "nope"); err == nil {
		t.Error("watch on unknown local succeeded")
	}
}

func TestInternalWatchNotReported(t *testing.T) {
	src := `int g = 0;
int main() {
    g = 1;
    g = 2;
    return 0;
}`
	d := started(t, src, vm.Config{})
	w, err := d.WatchGlobal("g", true)
	if err != nil {
		t.Fatal(err)
	}
	internal := 0
	stop, err := d.Continue(func(wp *Watchpoint, hit *vm.WatchHit) {
		if wp.ID == w.ID {
			internal++
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if stop.Reason != StopExited {
		t.Errorf("stop = %v, want exit (internal watch must not pause)", stop.Reason)
	}
	if internal != 2 {
		t.Errorf("internal callbacks = %d, want 2", internal)
	}
}

func TestUnwindAndDepth(t *testing.T) {
	d := started(t, fibC, vm.Config{})
	if _, err := d.BreakAtLine(3, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Continue(nil); err != nil {
		t.Fatal(err)
	}
	recs := d.Unwind()
	// fib fib fib fib main
	if len(recs) != 5 {
		t.Fatalf("unwound %d frames", len(recs))
	}
	for i := 0; i < 4; i++ {
		if recs[i].Fn.Name != "fib" {
			t.Errorf("frame %d = %s", i, recs[i].Fn.Name)
		}
	}
	if recs[4].Fn.Name != "main" {
		t.Errorf("outermost = %s", recs[4].Fn.Name)
	}
	// Frame chain with core conversion.
	fr := d.NewInspector().Frame()
	if fr.Depth != 4 {
		t.Errorf("innermost depth = %d", fr.Depth)
	}
	stack := fr.Stack()
	if stack[len(stack)-1].Name != "main" || stack[len(stack)-1].Depth != 0 {
		t.Errorf("outermost frame: %v", stack[len(stack)-1])
	}
	// Each fib frame has its own n: 1, 2, 3, 4.
	for i, want := range []int64{1, 2, 3, 4} {
		if v, _ := stack[i].Lookup("n").Value.Int(); v != want {
			t.Errorf("frame %d n = %s, want %d", i, stack[i].Lookup("n").Value, want)
		}
	}
}

func TestInspectionValues(t *testing.T) {
	d := started(t, ptrC, vm.Config{})
	// Run to the last line so everything is initialized.
	if _, err := d.BreakAtLine(10, 0); err != nil { // return 0;
		t.Fatal(err)
	}
	if _, err := d.Continue(nil); err != nil {
		t.Fatal(err)
	}
	in := d.NewInspector()
	fr := in.Frame()

	x := fr.Lookup("x").Value
	if x.Kind != core.Primitive || x.Location != core.LocStack {
		t.Errorf("x = %+v", x)
	}
	if v, _ := x.Int(); v != 4 {
		t.Errorf("x = %s (want 4, set through *p)", x)
	}
	if x.LanguageType != "int" {
		t.Errorf("x language type = %q", x.LanguageType)
	}

	p := fr.Lookup("p").Value
	if p.Kind != core.Ref {
		t.Fatalf("p = %+v", p)
	}
	if p.Deref() != x {
		t.Error("p does not alias x in the snapshot (identity lost)")
	}

	bad := fr.Lookup("bad").Value
	if bad.Kind != core.Invalid {
		t.Errorf("bad pointer kind = %v, want INVALID", bad.Kind)
	}

	a := fr.Lookup("a").Value
	if a.Kind != core.List || len(a.Elems()) != 3 {
		t.Fatalf("a = %s", a)
	}
	if v, _ := a.Elems()[1].Int(); v != 20 {
		t.Errorf("a[1] = %s", a.Elems()[1])
	}
	if a.LanguageType != "int[3]" {
		t.Errorf("a language type = %q", a.LanguageType)
	}

	s := fr.Lookup("s").Value
	if s.Kind != core.Primitive || s.LanguageType != "char*" {
		t.Fatalf("s = %+v", s)
	}
	if str, _ := s.Str(); str != "hi" {
		t.Errorf("s = %q", str)
	}

	dv := fr.Lookup("d").Value
	if f, ok := dv.Float(); !ok || f != 1.5 {
		t.Errorf("d = %s", dv)
	}

	// Global g.
	var g *core.Value
	for _, gv := range in.Globals(false) {
		if gv.Name == "g" {
			g = gv.Value
		}
	}
	if g == nil || g.Location != core.LocGlobal {
		t.Fatalf("g = %+v", g)
	}
	if v, _ := g.Int(); v != 7 {
		t.Errorf("g = %s", g)
	}
}

func TestScopeVisibility(t *testing.T) {
	src := `int main() {
    int x = 1;
    {
        int y = 2;
        x = y;
    }
    x = 9;
    return 0;
}`
	d := started(t, src, vm.Config{})
	// At entry, neither x nor y declared yet.
	fr := d.NewInspector().Frame()
	if fr.Lookup("y") != nil {
		t.Error("y visible before its block")
	}
	// Break inside block.
	if _, err := d.BreakAtLine(5, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Continue(nil); err != nil {
		t.Fatal(err)
	}
	fr = d.NewInspector().Frame()
	if fr.Lookup("y") == nil || fr.Lookup("x") == nil {
		t.Errorf("x/y not visible inside block: %s", fr.Backtrace())
	}
	// After block.
	if _, err := d.BreakAtLine(7, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Continue(nil); err != nil {
		t.Fatal(err)
	}
	fr = d.NewInspector().Frame()
	if fr.Lookup("y") != nil {
		t.Error("y visible after its block closed")
	}
}

func TestHeapMapExpandsArrays(t *testing.T) {
	src := `int main() {
    int* xs = (int*)malloc(3 * sizeof(int));
    xs[0] = 5;
    xs[1] = 6;
    xs[2] = 7;
    return 0;
}`
	d := started(t, src, vm.Config{})
	if _, err := d.BreakAtLine(6, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Continue(nil); err != nil {
		t.Fatal(err)
	}
	in := d.NewInspector()
	fr := in.Frame()
	xs := fr.Lookup("xs").Value

	// Without a heap map, GDB-style inspection sees a plain int*.
	if xs.Kind != core.Ref {
		t.Fatalf("xs = %+v", xs)
	}
	if xs.Deref().Kind != core.Primitive {
		t.Errorf("without heap map, *xs = %v (want single int)", xs.Deref().Kind)
	}

	// With the interposition-derived map, the same pointer expands.
	target, _ := xs.Deref().Int()
	_ = target
	ptr := xs.Deref().Address
	d.SetHeapMap(map[uint64]uint64{ptr: 24})
	fr = d.NewInspector().Frame()
	xs = fr.Lookup("xs").Value
	arr := xs.Deref()
	if arr.Kind != core.List || len(arr.Elems()) != 3 {
		t.Fatalf("with heap map xs -> %s", arr)
	}
	if v, _ := arr.Elems()[2].Int(); v != 7 {
		t.Errorf("xs[2] = %s", arr.Elems()[2])
	}
	if arr.Location != core.LocHeap {
		t.Errorf("heap array location = %v", arr.Location)
	}
}

func TestLinkedListCycleSafe(t *testing.T) {
	src := `struct node { int v; struct node* next; };
int main() {
    struct node a;
    struct node b;
    a.v = 1;
    b.v = 2;
    a.next = &b;
    b.next = &a;
    return 0;
}`
	d := started(t, src, vm.Config{})
	if _, err := d.BreakAtLine(9, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Continue(nil); err != nil {
		t.Fatal(err)
	}
	fr := d.NewInspector().Frame()
	a := fr.Lookup("a").Value
	if a.Kind != core.Struct {
		t.Fatalf("a = %+v", a)
	}
	next := a.FieldByName("next")
	if next.Kind != core.Ref {
		t.Fatalf("a.next = %+v", next)
	}
	b := next.Deref()
	back := b.FieldByName("next").Deref()
	if back != a {
		t.Error("cycle lost: b.next does not point back to a's Value")
	}
	// Rendering a cyclic state must terminate.
	_ = a.String()
}

func TestFaultReporting(t *testing.T) {
	src := `int main() {
    int* p = 0;
    return *p;
}`
	d := started(t, src, vm.Config{})
	stop, err := d.Continue(nil)
	if err != nil {
		t.Fatal(err)
	}
	if stop.Reason != StopFault || !strings.Contains(stop.Fault, "segmentation") {
		t.Errorf("stop = %+v", stop)
	}
	if code, exited := d.Exited(); !exited || code != 139 {
		t.Errorf("exit = %d, %v", code, exited)
	}
	if _, err := d.Continue(nil); err != ErrExited {
		t.Errorf("Continue after fault = %v", err)
	}
}

func TestExitCode(t *testing.T) {
	d := started(t, "int main() { return 5; }", vm.Config{})
	stop, err := d.Continue(nil)
	if err != nil {
		t.Fatal(err)
	}
	if stop.Reason != StopExited || stop.ExitCode != 5 {
		t.Errorf("stop = %+v", stop)
	}
}

func TestStateSnapshot(t *testing.T) {
	d := started(t, fibC, vm.Config{})
	if _, err := d.BreakAtLine(3, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Continue(nil); err != nil {
		t.Fatal(err)
	}
	st := d.State(core.PauseReason{Type: core.PauseBreakpoint, Line: 3})
	if st.Frame == nil || st.Frame.Name != "fib" {
		t.Fatalf("state frame = %v", st.Frame)
	}
	data, err := st.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back core.State
	if err := back.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	if !back.Frame.Equal(st.Frame) {
		t.Error("state did not survive the pipe format")
	}
}

func TestBreakpointRemoval(t *testing.T) {
	d := started(t, fibC, vm.Config{})
	bp, err := d.BreakAtFunc("fib", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Continue(nil); err != nil {
		t.Fatal(err)
	}
	d.RemoveBreakpoint(bp.ID)
	stop, err := d.Continue(nil)
	if err != nil {
		t.Fatal(err)
	}
	if stop.Reason != StopExited {
		t.Errorf("after removal stop = %v", stop.Reason)
	}
}

func TestRegistersAndMemoryAccess(t *testing.T) {
	d := started(t, fibC, vm.Config{})
	regs := d.Machine().Registers()
	if regs[isa.SP] == 0 || regs[isa.FP] == 0 {
		t.Error("sp/fp zero at entry")
	}
	segs := d.Machine().Segments()
	if len(segs) != 4 {
		t.Errorf("segments = %v", segs)
	}
	b, err := d.Machine().ReadMem(isa.TextBase, 8)
	if err != nil || len(b) != 8 {
		t.Errorf("text read: %v", err)
	}
}
