package dbg

import (
	"fmt"

	"easytracker/internal/isa"
	"easytracker/internal/vm"
)

// Finish runs until the current function returns, pausing in the caller —
// GDB's finish command. The paper (Section II-C1) points out its key
// limitation, reproduced faithfully here: finish arms a *temporary*
// breakpoint at the saved return address, so if another stop interrupts it
// on the way, execution will NOT pause at the function's end later. That is
// precisely why the paper's track_function places persistent breakpoints on
// the RET instructions found by disassembly instead.
func (d *Debugger) Finish(onInternal func(*Watchpoint, *vm.WatchHit)) (Stop, error) {
	if !d.started {
		return Stop{}, ErrNotStarted
	}
	if d.exited {
		return Stop{}, ErrExited
	}
	recs := d.Unwind()
	if len(recs) < 2 {
		return Stop{}, fmt.Errorf("dbg: no caller frame to finish into")
	}
	// The saved return address lives at fp-8 of the current frame.
	retPC, err := d.m.ReadU64(recs[0].FP - 8)
	if err != nil {
		return Stop{}, fmt.Errorf("dbg: cannot read return address: %w", err)
	}
	callerFP := recs[1].FP

	bp := d.BreakAtPC(retPC)
	bp.Temporary = true
	for {
		stop, err := d.Continue(onInternal)
		if err != nil {
			return Stop{}, err
		}
		if stop.Reason != StopBreakpoint || stop.Breakpoint != bp.ID {
			// Interrupted by another condition (or exited): the
			// temporary breakpoint stays armed only if it has not
			// fired, matching GDB; report the interrupting stop.
			return stop, nil
		}
		// The return-address breakpoint fired; make sure it is our
		// frame returning, not a recursive sibling passing the same
		// address at a deeper stack position.
		if d.m.Reg(isa.FP) == callerFP {
			return stop, nil
		}
		// Deeper activation: re-arm and keep going.
		bp = d.BreakAtPC(retPC)
		bp.Temporary = true
	}
}
