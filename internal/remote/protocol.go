package remote

import (
	"encoding/json"
	"strings"
	"time"

	"easytracker/internal/core"
)

// Protocol vocabulary. One Request frame carries one operation; the server
// answers every request with exactly one Response frame carrying the same
// ID. Requests on one session execute in arrival order on the session's own
// goroutine — except OpInterrupt, which is handled out of band so it can
// land while a control command is still running.
const (
	// Session lifecycle.
	OpHello     = "hello"
	OpLoad      = "load"
	OpTerminate = "terminate"

	// Control (execution-resuming; responses carry a fresh Status).
	OpStart  = "start"
	OpResume = "resume"
	OpStep   = "step"
	OpNext   = "next"

	// Arming.
	OpBreakLine = "break-line"
	OpBreakFunc = "break-func"
	OpTrack     = "track"
	OpWatch     = "watch"

	// Server-side pause filtering: a subscription expression makes Resume
	// loop on the server until a pause matches (or the inferior exits), so
	// non-matching pauses never cross the socket.
	OpSubscribe = "subscribe"

	// Inspection.
	OpState    = "state"
	OpSource   = "source"
	OpStats    = "stats"
	OpRegs     = "registers"
	OpReadMem  = "read-mem"
	OpSegments = "segments"
	OpHeap     = "heap-blocks"

	// Time travel (backends advertising TimeTraveler/ReverseWatch). The
	// reverse ops move the session's replay cursor; like forward control
	// ops their responses carry a fresh Status, whose TTPos/TTLen fields
	// keep the client's cursor cache (and its reconnect journal) current.
	OpStepBack   = "step-back"
	OpResumeBack = "resume-back"
	OpNextBack   = "next-back"
	OpSeek       = "seek"
	OpLastChange = "last-change"

	// Out-of-band supervision.
	OpInterrupt = "interrupt"

	// Liveness. OpPing is answered inline by the connection reader — like
	// OpInterrupt it never queues behind the executor, so a beat proves the
	// peer and the wire are alive even while a long Resume runs. Pings do
	// not count as activity for idle eviction: a client that only pings is
	// keeping the socket warm, not using the session.
	OpPing = "ping"
)

// LoadSpec is the serializable subset of core.LoadConfig: everything a load
// option can say except the I/O streams, which stay client-side (the server
// buffers inferior output and ships deltas back in Status).
type LoadSpec struct {
	Args      []string     `json:"args,omitempty"`
	Source    string       `json:"source,omitempty"`
	Stdin     string       `json:"stdin,omitempty"`
	TrackHeap bool         `json:"track_heap,omitempty"`
	CmdNs     int64        `json:"cmd_timeout_ns,omitempty"`
	ExecNs    int64        `json:"exec_timeout_ns,omitempty"`
	Budgets   core.Budgets `json:"budgets,omitempty"`
	Obs       bool         `json:"obs,omitempty"`
	ObsEvents int          `json:"obs_events,omitempty"`
	// WantStdout/WantStderr ask the server to capture the stream and ship
	// deltas back; without them inferior output is discarded server-side.
	WantStdout bool `json:"want_stdout,omitempty"`
	WantStderr bool `json:"want_stderr,omitempty"`
	// Recording asks the backend to record execution for time travel
	// (core.WithRecording); RecordInterval is the checkpoint interval hint
	// (0 = adaptive).
	Recording      bool `json:"recording,omitempty"`
	RecordInterval int  `json:"record_interval,omitempty"`
}

// TraceVersion is the highest trace-context framing version this build
// speaks (see wire.go). Hellos advertise it; both sides then use
// min(client, server), so an old peer that never sends the field (JSON
// drops zero values and ignores unknown ones) pins the connection to the
// bare-JSON v0 framing.
const TraceVersion = 1

// Request is one client frame.
type Request struct {
	ID uint64 `json:"id"`
	Op string `json:"op"`

	// OpHello.
	Kind string `json:"kind,omitempty"`
	// TraceV advertises the client's trace-context framing version.
	TraceV int `json:"tracev,omitempty"`
	// HB advertises that the client can answer and emit heartbeats
	// (OpPing). The server only arms heartbeat eviction — and only tells
	// the client to beat — when both sides opted in, so old peers in
	// either direction keep the pre-heartbeat behavior.
	HB bool `json:"hb,omitempty"`

	// OpLoad.
	Path string    `json:"path,omitempty"`
	Load *LoadSpec `json:"load,omitempty"`

	// Arming and inspection operands.
	File     string `json:"file,omitempty"`
	Line     int    `json:"line,omitempty"`
	Func     string `json:"func,omitempty"`
	Var      string `json:"var,omitempty"`
	MaxDepth int    `json:"max_depth,omitempty"`
	Addr     uint64 `json:"addr,omitempty"`
	Size     int    `json:"size,omitempty"`

	// Probe condition operands (arming ops) and the subscription
	// expression (OpSubscribe; empty clears the subscription).
	Cond    string `json:"cond,omitempty"`
	Ignore  int    `json:"ignore,omitempty"`
	OneShot bool   `json:"one_shot,omitempty"`

	// OpSeek operand: the absolute recorded step to seek to.
	Step int `json:"step,omitempty"`
}

// Status is the tracker's observable condition after an operation: the
// pause reason (core's pause codec), termination state, source position and
// any inferior output produced since the previous response. Every response
// on a loaded session carries one, so the client needs no extra round trips
// for PauseReason/ExitCode/Position/LastLine.
type Status struct {
	Reason   json.RawMessage `json:"reason,omitempty"`
	Exited   bool            `json:"exited,omitempty"`
	ExitCode int             `json:"exit_code,omitempty"`
	File     string          `json:"file,omitempty"`
	Line     int             `json:"line,omitempty"`
	LastLine int             `json:"last_line,omitempty"`
	Stdout   string          `json:"stdout,omitempty"`
	Stderr   string          `json:"stderr,omitempty"`
	// TTPos/TTLen mirror the backend's time-travel cursor when it
	// advertises TimeTraveler. TTPos carries Pos()+1 so JSON's zero-drop
	// leaves position 0 distinguishable from "no recording"; TTLen is
	// Len() verbatim. The client journals TTPos for seek replay after a
	// reconnect.
	TTPos int `json:"tt_pos,omitempty"`
	TTLen int `json:"tt_len,omitempty"`
}

// Response is one server frame.
type Response struct {
	ID  uint64          `json:"id"`
	Err *core.ErrorJSON `json:"err,omitempty"`

	Status *Status `json:"status,omitempty"`

	// OpHello.
	Session  uint64              `json:"session,omitempty"`
	Kind     string              `json:"kind,omitempty"`
	Caps     *core.CapabilitySet `json:"caps,omitempty"`
	MaxFrame int                 `json:"max_frame,omitempty"`
	// TraceV is the negotiated trace-context framing version — the min of
	// what both peers advertised. All frames after the hello exchange use
	// it.
	TraceV int `json:"tracev,omitempty"`
	// HBNs/HBMiss are the negotiated heartbeat contract (hello responses
	// only): the client must send OpPing every HBNs nanoseconds, and each
	// side may declare the other dead after HBMiss consecutive silent
	// intervals. Zero HBNs means heartbeats are off for this session.
	HBNs   int64 `json:"hb_ns,omitempty"`
	HBMiss int   `json:"hb_miss,omitempty"`

	// Inspection payloads.
	Change *core.VarChange   `json:"change,omitempty"`
	State  json.RawMessage   `json:"state,omitempty"`
	Lines  []string          `json:"lines,omitempty"`
	Stats  json.RawMessage   `json:"stats,omitempty"`
	Regs   map[string]uint64 `json:"regs,omitempty"`
	Mem    []byte            `json:"mem,omitempty"`
	Segs   []core.Segment    `json:"segs,omitempty"`
	Heap   map[string]uint64 `json:"heap,omitempty"`
}

// specFromConfig projects a LoadConfig onto the wire, dropping the stream
// fields (the caller records which streams were requested).
func specFromConfig(c core.LoadConfig) *LoadSpec {
	return &LoadSpec{
		Args:           c.Args,
		Source:         c.Source,
		TrackHeap:      c.TrackHeap,
		CmdNs:          int64(c.CommandTimeout),
		ExecNs:         int64(c.ExecTimeout),
		Budgets:        c.Budgets,
		Obs:            c.Obs.Enabled,
		ObsEvents:      c.Obs.Events,
		WantStdout:     c.Stdout != nil,
		WantStderr:     c.Stderr != nil,
		Recording:      c.Recording,
		RecordInterval: c.RecordInterval,
	}
}

// loadOptions converts a LoadSpec back into load options for the backend
// tracker, with the server-imposed tenant caps folded in: the effective
// execution timeout is the tighter of the client's and the server's, and
// each resource budget is the tighter non-zero bound.
func (s *LoadSpec) loadOptions(caps tenantCaps, stdout, stderr *deltaBuffer, stdin string) []core.LoadOption {
	var opts []core.LoadOption
	if len(s.Args) > 0 {
		opts = append(opts, core.WithArgs(s.Args...))
	}
	if s.Source != "" {
		opts = append(opts, core.WithSource(s.Source))
	}
	if s.TrackHeap {
		opts = append(opts, core.WithHeapTracking())
	}
	if s.Recording && !caps.NoRecording {
		opts = append(opts, core.WithRecording(s.RecordInterval))
	}
	if s.CmdNs > 0 {
		opts = append(opts, core.WithCommandTimeout(time.Duration(s.CmdNs)))
	}
	if d := tighterDuration(time.Duration(s.ExecNs), caps.ExecTimeout); d > 0 {
		opts = append(opts, core.WithExecutionTimeout(d))
	}
	if b := mergeBudgets(s.Budgets, caps.Budgets); b.Any() {
		opts = append(opts, core.WithBudgets(b))
	}
	if s.Obs {
		var oo []core.ObsOption
		if s.ObsEvents > 0 {
			oo = append(oo, core.WithFlightRecorder(s.ObsEvents))
		}
		opts = append(opts, core.WithObservability(oo...))
	}
	if stdout != nil {
		opts = append(opts, core.WithStdout(stdout))
	}
	if stderr != nil {
		opts = append(opts, core.WithStderr(stderr))
	}
	if stdin != "" {
		opts = append(opts, core.WithStdin(strings.NewReader(stdin)))
	}
	return opts
}

// tenantCaps are the server-side per-session resource ceilings; zero fields
// impose no bound.
type tenantCaps struct {
	ExecTimeout time.Duration
	Budgets     core.Budgets
	// NoRecording drops clients' time-travel recording requests: the
	// session loads without a recorder and its load response advertises
	// TimeTravel off, so clients degrade instead of erroring.
	NoRecording bool
}

// tighterDuration picks the smaller non-zero duration.
func tighterDuration(a, b time.Duration) time.Duration {
	switch {
	case a <= 0:
		return b
	case b <= 0:
		return a
	case a < b:
		return a
	default:
		return b
	}
}

// mergeBudgets combines the client's requested budgets with the server's
// tenant caps, taking the tighter non-zero bound per resource.
func mergeBudgets(req, ceiling core.Budgets) core.Budgets {
	return core.Budgets{
		MaxSteps:        tighterI64(req.MaxSteps, ceiling.MaxSteps),
		MaxDepth:        tighterInt(req.MaxDepth, ceiling.MaxDepth),
		MaxHeapObjects:  tighterI64(req.MaxHeapObjects, ceiling.MaxHeapObjects),
		MaxInstructions: tighterU64(req.MaxInstructions, ceiling.MaxInstructions),
	}
}

func tighterI64(a, b int64) int64 {
	switch {
	case a <= 0:
		return b
	case b <= 0:
		return a
	case a < b:
		return a
	default:
		return b
	}
}

func tighterInt(a, b int) int {
	switch {
	case a <= 0:
		return b
	case b <= 0:
		return a
	case a < b:
		return a
	default:
		return b
	}
}

func tighterU64(a, b uint64) uint64 {
	switch {
	case a == 0:
		return b
	case b == 0:
		return a
	case a < b:
		return a
	default:
		return b
	}
}
