package remote

import (
	"errors"
	"net"
	"testing"
	"time"

	"easytracker/internal/core"
)

// TestClientReconnectReplay: an evicted session reconnects once, replaying
// its journal — load, start, arming ops — so the armed surface survives
// even though execution progress is lost, mirroring the MiniGDB session
// layer's semantics.
func TestClientReconnectReplay(t *testing.T) {
	_, addr := startServer(t, WithIdleTimeout(80*time.Millisecond))
	tr, err := Connect(addr, "minipy")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if err := tr.LoadProgram("count.py", core.WithSource(countPy)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Watch("::total"); err != nil {
		t.Fatal(err)
	}
	if err := tr.Start(); err != nil {
		t.Fatal(err)
	}

	time.Sleep(300 * time.Millisecond) // let the server evict the session

	err = tr.Resume()
	var te *core.TrackerError
	if !errors.As(err, &te) {
		t.Fatalf("post-eviction Resume: %v, want *TrackerError", err)
	}
	if te.Recovery != core.RecoveryRestarted {
		t.Fatalf("recovery = %v, want restarted", te.Recovery)
	}
	if !errors.Is(err, core.ErrSessionLost) {
		t.Error("recovery error lost its ErrSessionLost identity")
	}
	if len(te.Lost) != 0 {
		t.Errorf("lost items = %v, want none (the watch re-arms)", te.Lost)
	}
	if r := tr.PauseReason(); r.Type != core.PauseEntry {
		t.Errorf("post-recovery pause = %v, want ENTRY", r.Type)
	}

	// The replayed journal is live: the watchpoint still fires.
	if err := tr.Resume(); err != nil {
		t.Fatalf("Resume after recovery: %v", err)
	}
	if r := tr.PauseReason(); r.Type != core.PauseWatch || r.Variable != "::total" {
		t.Fatalf("pause = %v, want WATCH ::total", r)
	}
}

// TestClientRecoveryOneShot: when the server is truly gone the reconnect
// fails, the tracker retires (RecoveryFailed, ExitCode -1) and every later
// call reports the loss without redialing.
func TestClientRecoveryOneShot(t *testing.T) {
	srv, addr := startServer(t)
	tr, err := Connect(addr, "minipy")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if err := tr.LoadProgram("count.py", core.WithSource(countPy)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Start(); err != nil {
		t.Fatal(err)
	}

	srv.Close() // server dies; no one listens anymore

	err = tr.Resume()
	var te *core.TrackerError
	if !errors.As(err, &te) || te.Recovery != core.RecoveryFailed {
		t.Fatalf("Resume after server death: %v, want RecoveryFailed", err)
	}
	if !errors.Is(err, core.ErrSessionLost) {
		t.Error("retire error lost its ErrSessionLost identity")
	}
	code, done := tr.ExitCode()
	if !done || code != -1 {
		t.Errorf("retired ExitCode = %d/%v, want -1/true", code, done)
	}
	if r := tr.PauseReason(); r.Type != core.PauseExited {
		t.Errorf("retired pause = %v, want EXITED", r.Type)
	}
	// Later calls stay failed without further dial attempts.
	if err := tr.Step(); !errors.Is(err, core.ErrSessionLost) {
		t.Errorf("Step on retired tracker: %v, want ErrSessionLost", err)
	}
	// Terminate on a retired tracker is clean.
	if err := tr.Terminate(); err != nil {
		t.Errorf("Terminate on retired tracker: %v", err)
	}
}

// TestClientCapabilityGate: the proxy's concrete type has every extension
// method, but As must present exactly the backend's capability surface — a
// MiniPy session has no registers, a trace session no interrupter.
func TestClientCapabilityGate(t *testing.T) {
	_, addr := startServer(t)

	py, err := Connect(addr, "minipy")
	if err != nil {
		t.Fatal(err)
	}
	defer py.Close()
	if _, ok := core.As[core.RegisterInspector](py); ok {
		t.Error("minipy session claims RegisterInspector")
	}
	if _, ok := core.As[core.MemoryInspector](py); ok {
		t.Error("minipy session claims MemoryInspector")
	}
	if _, ok := core.As[core.StateProvider](py); !ok {
		t.Error("minipy session denies StateProvider")
	}
	if _, ok := core.As[core.StatsProvider](py); !ok {
		t.Error("minipy session denies StatsProvider")
	}
	if _, ok := core.As[core.Interrupter](py); !ok {
		t.Error("minipy session denies Interrupter")
	}

	// The capability set matches a local tracker of the same kind.
	local, err := core.NewTracker("minipy")
	if err != nil {
		t.Fatal(err)
	}
	if lc, rc := core.CapabilitiesOf(local), core.CapabilitiesOf(py); lc != rc {
		t.Errorf("capability sets differ: local %+v, remote %+v", lc, rc)
	}

	tc, err := Connect(addr, "trace")
	if err != nil {
		t.Fatal(err)
	}
	defer tc.Close()
	if _, ok := core.As[core.Interrupter](tc); ok {
		t.Error("trace session claims Interrupter")
	}
}

// TestClientInterruptMidResume: Interrupt crosses the wire while Resume's
// response is outstanding, converting a runaway inferior into a normal
// INTERRUPTED pause — the tool-facing behavior of Ctrl-C over -remote.
func TestClientInterruptMidResume(t *testing.T) {
	_, addr := startServer(t)
	tr, err := Connect(addr, "minipy")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if err := tr.LoadProgram("spin.py",
		core.WithSource("n = 0\nwhile True:\n    n = n + 1\n")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Start(); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(50 * time.Millisecond)
		tr.Interrupt()
	}()
	if err := tr.Resume(); err != nil {
		t.Fatalf("interrupted Resume: %v", err)
	}
	r := tr.PauseReason()
	if r.Type != core.PauseInterrupted || r.Detail != "interrupt" {
		t.Fatalf("pause = %v, want INTERRUPTED (interrupt)", r)
	}
}

// TestClientDialFailure: connecting to a dead address fails fast with a
// useful error, not a hang.
func TestClientDialFailure(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	if _, err := Connect(addr, "minipy"); err == nil {
		t.Fatal("connect to closed port succeeded")
	}
}

// stateInt reads an integer variable from a remote session's snapshot,
// checking the innermost frame then globals and unwrapping the ref cell.
func stateInt(t *testing.T, tr *Tracker, name string) int64 {
	t.Helper()
	st, err := tr.State()
	if err != nil {
		t.Fatalf("State: %v", err)
	}
	var val *core.Value
	if st.Frame != nil {
		if v := st.Frame.Lookup(name); v != nil {
			val = v.Value
		}
	}
	if val == nil {
		for _, g := range st.Globals {
			if g.Name == name {
				val = g.Value
			}
		}
	}
	if val == nil {
		t.Fatalf("no variable %q in snapshot", name)
	}
	if d := val.Deref(); d != nil {
		val = d
	}
	n, ok := val.Int()
	if !ok {
		t.Fatalf("variable %q is not an int: %s", name, val)
	}
	return n
}

// TestClientSubscribeFilter: a subscription makes Resume skip non-matching
// pauses server-side; clearing it restores every pause.
func TestClientSubscribeFilter(t *testing.T) {
	_, addr := startServer(t)
	tr, err := Connect(addr, "minipy")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if err := tr.LoadProgram("count.py", core.WithSource(countPy)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Start(); err != nil {
		t.Fatal(err)
	}
	if err := tr.BreakBeforeLine("", 4); err != nil {
		t.Fatal(err)
	}
	if err := tr.Subscribe("k == 10"); err != nil {
		t.Fatal(err)
	}
	if err := tr.Resume(); err != nil {
		t.Fatal(err)
	}
	if got := stateInt(t, tr, "k"); got != 10 {
		t.Fatalf("first subscribed pause has k = %d, want 10", got)
	}
	// Clearing the subscription surfaces the very next hit again.
	if err := tr.Subscribe(""); err != nil {
		t.Fatal(err)
	}
	if err := tr.Resume(); err != nil {
		t.Fatal(err)
	}
	if got := stateInt(t, tr, "k"); got != 11 {
		t.Fatalf("post-clear pause has k = %d, want 11", got)
	}
	// Bad expressions are rejected client-side with the typed query error.
	err = tr.Subscribe("k ==")
	if !errors.Is(err, core.ErrBadQuery) {
		t.Errorf("Subscribe(bad) = %v, want ErrBadQuery", err)
	}
}

// TestClientSubscribeReplay: the subscription is journaled, so an evicted
// session comes back with both its conditional surface and its filter.
func TestClientSubscribeReplay(t *testing.T) {
	_, addr := startServer(t, WithIdleTimeout(80*time.Millisecond))
	tr, err := Connect(addr, "minipy")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if err := tr.LoadProgram("count.py", core.WithSource(countPy)); err != nil {
		t.Fatal(err)
	}
	if err := tr.BreakBeforeLine("", 4); err != nil {
		t.Fatal(err)
	}
	if err := tr.Subscribe("k == 10"); err != nil {
		t.Fatal(err)
	}
	if err := tr.Start(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Resume(); err != nil {
		t.Fatal(err)
	}
	if got := stateInt(t, tr, "k"); got != 10 {
		t.Fatalf("pre-eviction pause has k = %d, want 10", got)
	}

	time.Sleep(300 * time.Millisecond) // let the server evict the session

	err = tr.Resume()
	var te *core.TrackerError
	if !errors.As(err, &te) || te.Recovery != core.RecoveryRestarted {
		t.Fatalf("post-eviction Resume: %v, want RecoveryRestarted", err)
	}
	if len(te.Lost) != 0 {
		t.Errorf("lost items = %v, want none (probe and subscription re-arm)", te.Lost)
	}
	// The fresh inferior restarts from entry; the replayed subscription
	// still filters, so the first surfaced pause is k == 10 again.
	if err := tr.Resume(); err != nil {
		t.Fatalf("Resume after recovery: %v", err)
	}
	if r := tr.PauseReason(); r.Type != core.PauseBreakpoint {
		t.Fatalf("post-recovery pause = %v, want BREAKPOINT", r)
	}
	if got := stateInt(t, tr, "k"); got != 10 {
		t.Errorf("post-recovery pause has k = %d, want 10 (subscription replayed)", got)
	}
}

// TestClientSubscribeInterrupt: supervision outranks the filter — an
// interrupt surfaces even while the server is swallowing non-matching
// pauses.
func TestClientSubscribeInterrupt(t *testing.T) {
	_, addr := startServer(t)
	tr, err := Connect(addr, "minipy")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if err := tr.LoadProgram("spin.py",
		core.WithSource("n = 0\nwhile True:\n    n = n + 1\n")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Start(); err != nil {
		t.Fatal(err)
	}
	if err := tr.BreakBeforeLine("", 3); err != nil {
		t.Fatal(err)
	}
	if err := tr.Subscribe("n < 0"); err != nil { // never matches
		t.Fatal(err)
	}
	go func() {
		time.Sleep(50 * time.Millisecond)
		tr.Interrupt()
	}()
	if err := tr.Resume(); err != nil {
		t.Fatalf("interrupted Resume: %v", err)
	}
	if r := tr.PauseReason(); r.Type != core.PauseInterrupted {
		t.Fatalf("pause = %v, want INTERRUPTED", r)
	}
}
