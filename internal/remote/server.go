package remote

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"easytracker/internal/core"
	"easytracker/internal/obs"
	"easytracker/internal/query"

	// A server is useful without importing the library root, so it pulls in
	// the built-in backends itself.
	_ "easytracker/internal/gdbtracker"
	_ "easytracker/internal/pytracker"
	_ "easytracker/internal/tracetracker"
)

// ErrServerFull is what a refused hello decodes to on the client when the
// server is at its concurrent-session limit. It is core.ErrServerBusy, so
// the sentinel survives the error codec and the client's redial policy can
// classify the refusal as retryable.
var ErrServerFull = core.ErrServerBusy

// ErrDraining is what a refused hello decodes to when the server is
// shutting down; alias of core.ErrServerDraining for the same reason.
var ErrDraining = core.ErrServerDraining

// ServerOption customizes NewServer.
type ServerOption func(*Server)

// WithMaxSessions caps the number of concurrently live sessions; further
// hellos are refused. Zero or negative means DefaultMaxSessions.
func WithMaxSessions(n int) ServerOption {
	return func(s *Server) { s.maxSessions = n }
}

// WithIdleTimeout evicts sessions whose connection carried no request for d.
// Zero disables eviction.
func WithIdleTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.idleTimeout = d }
}

// WithSessionBudgets imposes per-session resource ceilings: each session's
// effective budgets are the tighter of what its client asked for and these
// caps, so one tenant cannot run away with the server.
func WithSessionBudgets(b core.Budgets) ServerOption {
	return func(s *Server) { s.caps.Budgets = b }
}

// WithSessionExecTimeout caps every session's execution timeout: a resuming
// call server-side never runs longer than d even when the client asked for
// no deadline at all.
func WithSessionExecTimeout(d time.Duration) ServerOption {
	return func(s *Server) { s.caps.ExecTimeout = d }
}

// WithRecordingDisabled makes the server ignore clients' time-travel
// recording requests (tenant policy: a recording grows server memory with
// every step of the inferior). Affected sessions load without a recorder
// and their load responses advertise TimeTravel off, so capability-checking
// clients degrade gracefully. Trace-backed sessions are unaffected — their
// replay cursor needs no recorder.
func WithRecordingDisabled() ServerOption {
	return func(s *Server) { s.caps.NoRecording = true }
}

// WithLogf routes the server's diagnostic log lines (admissions, evictions,
// teardown) to f. Discarded by default.
func WithLogf(f func(format string, args ...any)) ServerOption {
	return func(s *Server) { s.logf = f }
}

// WithSpanCapacity sizes the server's span ring (retained completed spans
// across all sessions). Zero or negative picks obs.DefaultSpanCapacity.
func WithSpanCapacity(n int) ServerOption {
	return func(s *Server) { s.spanCap = n }
}

// WithHeartbeat arms liveness heartbeats: clients that advertise support
// are told to ping every interval, and a connection that goes completely
// silent for misses consecutive intervals is evicted — even mid-command,
// because total silence from a beating client means the wire is dead, not
// that the session is busy (the idle-eviction inflight guard deliberately
// does not apply). Zero interval disables heartbeats; misses < 1 defaults
// to DefaultHeartbeatMisses.
func WithHeartbeat(interval time.Duration, misses int) ServerOption {
	return func(s *Server) {
		s.hbInterval = interval
		s.hbMisses = misses
	}
}

// WithRetryAfterHint attaches a retry-after hint to admission refusals
// (session limit, draining): the refusal crosses the wire as a
// core.RetryAfterError and the client's redial policy waits that long
// before the next attempt. Zero disables the hint; unset defaults to
// DefaultRetryAfter.
func WithRetryAfterHint(d time.Duration) ServerOption {
	return func(s *Server) { s.retryAfter = d }
}

// DefaultHeartbeatMisses is the silent-interval budget used when
// WithHeartbeat is given a non-positive miss count.
const DefaultHeartbeatMisses = 3

// DefaultRetryAfter is the admission-refusal hint used when
// WithRetryAfterHint is not given.
const DefaultRetryAfter = 500 * time.Millisecond

// DefaultMaxSessions is the admission limit used when WithMaxSessions is
// not given.
const DefaultMaxSessions = 64

// Server hosts tracker sessions for remote clients: one TCP connection is
// one session, driven by its own executor goroutine so the single-driver
// Tracker contract holds per session while many sessions run concurrently.
type Server struct {
	maxSessions int
	idleTimeout time.Duration
	hbInterval  time.Duration
	hbMisses    int
	retryAfter  time.Duration
	spanCap     int
	caps        tenantCaps
	logf        func(string, ...any)
	met         *obs.Metrics
	tracer      *obs.Tracer

	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[*serverConn]struct{}
	active    int
	nextSess  uint64
	draining  bool
	closed    bool

	wg sync.WaitGroup
}

// NewServer builds a Server. Its instrument panel and span tracer are
// always on (a server is a long-lived shared process; operators read them
// with Stats/Spans and the -http endpoint).
func NewServer(opts ...ServerOption) *Server {
	s := &Server{
		maxSessions: DefaultMaxSessions,
		retryAfter:  DefaultRetryAfter,
		logf:        func(string, ...any) {},
		met:         obs.New(obs.Config{Enabled: true, Events: obs.DefaultEvents}),
		listeners:   map[net.Listener]struct{}{},
		conns:       map[*serverConn]struct{}{},
	}
	for _, o := range opts {
		o(s)
	}
	if s.maxSessions <= 0 {
		s.maxSessions = DefaultMaxSessions
	}
	if s.retryAfter < 0 {
		s.retryAfter = 0
	}
	if s.hbInterval > 0 && s.hbMisses < 1 {
		s.hbMisses = DefaultHeartbeatMisses
	}
	// One ring for the whole process: executor spans and every session
	// backend's op spans land together, so one /spans dump is the full
	// server-side timeline.
	s.tracer = obs.NewTracer("et-serve", s.spanCap)
	return s
}

// Stats returns the server's instrument snapshot (session gauges, frame
// counters, request round-trip latencies).
func (s *Server) Stats() *obs.Snapshot {
	snap := s.met.Snapshot()
	snap.Tracker = "et-serve"
	return snap
}

// Spans returns the server's completed spans — executor spans plus the op
// and MI spans of every session backend, all publishing into one shared
// ring.
func (s *Server) Spans() []obs.SpanRecord {
	return s.tracer.Spans()
}

// SessionCount returns the number of live sessions.
func (s *Server) SessionCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.active
}

// Addr returns the bound address of one serving listener, or nil before
// Serve/ListenAndServe.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	for ln := range s.listeners {
		return ln.Addr()
	}
	return nil
}

// ListenAndServe binds addr on TCP and serves until Shutdown or Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections from ln until Shutdown or Close. It owns ln and
// closes it on the way out.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed || s.draining {
		s.mu.Unlock()
		ln.Close()
		return ErrDraining
	}
	s.listeners[ln] = struct{}{}
	s.mu.Unlock()

	defer func() {
		s.mu.Lock()
		delete(s.listeners, ln)
		s.mu.Unlock()
		ln.Close()
	}()

	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			stopping := s.draining || s.closed
			s.mu.Unlock()
			if stopping {
				return nil
			}
			return err
		}
		c := &serverConn{srv: s, nc: nc}
		s.mu.Lock()
		if s.draining || s.closed {
			s.mu.Unlock()
			nc.Close()
			continue
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go c.serve()
	}
}

// Shutdown drains the server: listeners close, no new requests are read,
// and every in-flight command finishes and flushes its response before the
// session closes. When ctx expires first the remaining sessions are torn
// down hard (Close).
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	for ln := range s.listeners {
		ln.Close()
	}
	conns := make([]*serverConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	// Kick every reader out of its blocking ReadFrame; the drain flag makes
	// the reader hand its session to the executor for an orderly finish.
	for _, c := range conns {
		c.nc.SetReadDeadline(time.Now())
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.Close()
		<-done
		return ctx.Err()
	}
}

// Close tears the server down hard: listeners and connections close
// immediately and any command still running is interrupted. In-flight
// responses may be lost; use Shutdown for a graceful drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.draining = true
	for ln := range s.listeners {
		ln.Close()
	}
	conns := make([]*serverConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	for _, c := range conns {
		c.interrupt()
		c.nc.Close()
	}
	s.wg.Wait()
	return nil
}

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// admit reserves a session slot, or explains the refusal. Refusals carry
// the server's retry-after hint so a policy-driven client backs off by the
// amount the operator chose instead of guessing.
func (s *Server) admit() (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining || s.closed {
		return 0, s.hinted(ErrDraining)
	}
	if s.active >= s.maxSessions {
		return 0, s.hinted(ErrServerFull)
	}
	s.active++
	s.nextSess++
	s.met.Counter(core.CtrRemoteSessions).Inc()
	s.met.Gauge(core.GaugeRemoteSessions).Add(1)
	return s.nextSess, nil
}

// hinted decorates a retryable refusal with the retry-after hint.
func (s *Server) hinted(err error) error {
	if s.retryAfter <= 0 {
		return err
	}
	return &core.RetryAfterError{After: s.retryAfter, Err: err}
}

func (s *Server) release(c *serverConn) {
	s.mu.Lock()
	s.active--
	delete(s.conns, c)
	s.mu.Unlock()
	s.met.Gauge(core.GaugeRemoteSessions).Add(-1)
}

func (s *Server) dropConn(c *serverConn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// session is the per-connection tracker state. Only the executor goroutine
// touches tr and the loaded flag; the reader goroutine uses intr (set once
// before the executor starts) for out-of-band interrupts.
type session struct {
	id     uint64
	kind   string
	tr     core.Tracker
	intr   core.Interrupter
	loaded bool
	stdout *deltaBuffer
	stderr *deltaBuffer

	// sub is the session's pause subscription (OpSubscribe): while set,
	// Resume loops server-side until a pause matches, so non-matching
	// pauses never cross the socket. Executor goroutine only.
	sub *query.Program
}

// serverConn is one client connection: a reader goroutine feeding an
// executor goroutine through cmds.
type serverConn struct {
	srv *Server
	nc  net.Conn

	// tracev is the negotiated trace-context framing version: written once
	// during the handshake (before the executor goroutine exists), read-only
	// afterwards.
	tracev int

	// hb records that heartbeats were negotiated for this connection: set
	// once during the handshake, read-only afterwards.
	hb bool

	wmu sync.Mutex // serializes response frames (reader + executor both write)

	imu  sync.Mutex // guards intr across reader/teardown
	intr core.Interrupter

	// inflight counts requests handed to the executor whose responses have
	// not been written yet; the idle-eviction deadline ignores busy sessions.
	inflight atomic.Int64

	// framesIn/framesOut count this connection's wire frames (/sessions).
	framesIn  atomic.Uint64
	framesOut atomic.Uint64

	// infoMu guards the mutable half of the session's /sessions row,
	// written by the executor and read by the HTTP handler.
	infoMu sync.Mutex
	info   SessionInfo
}

// command is one queued request plus the trace context its frame carried.
type command struct {
	req *Request
	tc  *TraceContext
}

// SessionInfo is one live session's operational snapshot, served by the
// -http /sessions endpoint.
type SessionInfo struct {
	ID     uint64 `json:"id"`
	Kind   string `json:"kind"`
	Tenant string `json:"tenant"` // client remote address
	Loaded bool   `json:"loaded"`
	Exited bool   `json:"exited,omitempty"`
	// Pause is the last reported pause reason ("breakpoint file.py:12").
	Pause     string `json:"pause,omitempty"`
	FramesIn  uint64 `json:"frames_in"`
	FramesOut uint64 `json:"frames_out"`
	Inflight  int64  `json:"inflight,omitempty"`
}

// SessionsInfo snapshots every live session for the operational endpoint,
// ordered by session id.
func (s *Server) SessionsInfo() []SessionInfo {
	s.mu.Lock()
	conns := make([]*serverConn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	out := make([]SessionInfo, 0, len(conns))
	for _, c := range conns {
		c.infoMu.Lock()
		info := c.info
		c.infoMu.Unlock()
		if info.ID == 0 {
			continue // handshake not finished
		}
		info.FramesIn = c.framesIn.Load()
		info.FramesOut = c.framesOut.Load()
		info.Inflight = c.inflight.Load()
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (c *serverConn) writeResp(r *Response) error {
	return c.writeRespCtx(r, nil)
}

// writeRespCtx writes one response frame under the negotiated framing,
// stamping tc (the responding executor span) when the connection speaks v1.
func (c *serverConn) writeRespCtx(r *Response, tc *TraceContext) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.nc.SetWriteDeadline(time.Now().Add(30 * time.Second))
	err := WriteFrameV(c.nc, r, c.tracev, tc)
	if err == nil {
		c.srv.met.Counter(core.CtrRemoteFramesOut).Inc()
		c.framesOut.Add(1)
	}
	return err
}

// interrupt pokes the session's tracker so a command running in the
// executor returns; used by Close and by the reader when the client is gone.
func (c *serverConn) interrupt() {
	c.imu.Lock()
	intr := c.intr
	c.imu.Unlock()
	if intr != nil {
		intr.Interrupt()
	}
}

// serve is the reader goroutine: it performs the hello handshake, then
// forwards requests to the executor, handling OpInterrupt out of band.
func (c *serverConn) serve() {
	defer c.srv.wg.Done()
	sess, ok := c.handshake()
	if !ok {
		c.srv.dropConn(c)
		c.nc.Close()
		return
	}

	cmds := make(chan command, 16)
	c.srv.wg.Add(1)
	go c.execute(sess, cmds)

	// Two separate liveness clocks: lastFrame anchors the heartbeat window
	// (any frame proves the wire), lastReq anchors idle eviction (only real
	// requests prove the session is used — a client that merely pings is
	// keeping the socket warm, not working).
	var hbWindow time.Duration
	if c.hb {
		hbWindow = c.srv.hbInterval * time.Duration(c.srv.hbMisses)
	}
	lastFrame := time.Now()
	lastReq := lastFrame

	for {
		var dl time.Time
		if hbWindow > 0 {
			dl = lastFrame.Add(hbWindow)
		}
		if d := c.srv.idleTimeout; d > 0 {
			if t := lastReq.Add(d); dl.IsZero() || t.Before(dl) {
				dl = t
			}
		}
		if !dl.IsZero() {
			c.nc.SetReadDeadline(dl)
		}
		payload, err := ReadFrame(c.nc)
		if err != nil {
			var ne net.Error
			timeout := errors.As(err, &ne) && ne.Timeout()
			if timeout && !c.srv.isDraining() {
				now := time.Now()
				if hbWindow > 0 && now.Sub(lastFrame) >= hbWindow {
					// Total silence from a peer that promised to beat: the
					// wire is dead. This fires even mid-command — the
					// inflight guard below protects busy-but-connected
					// sessions, not vanished ones.
					c.srv.met.Counter(core.CtrRemoteHBEvicts).Inc()
					c.srv.logf("session %d: evicted after %d missed heartbeats (%v silent)",
						sess.id, c.srv.hbMisses, hbWindow)
				} else if c.srv.idleTimeout > 0 && now.Sub(lastReq) >= c.srv.idleTimeout {
					// A session mid-command is busy, not idle — the deadline
					// fires during a long Resume too. Re-arm and keep reading.
					if c.inflight.Load() > 0 {
						lastReq = now
						continue
					}
					c.srv.met.Counter(core.CtrRemoteEvictions).Inc()
					c.srv.logf("session %d: evicted after %v idle", sess.id, c.srv.idleTimeout)
				} else {
					// The other clock's deadline fired early; re-arm.
					continue
				}
			}
			// Drain: let queued commands finish and flush. Client gone or
			// eviction: interrupt anything running so the executor can
			// terminate the inferior promptly.
			if !(timeout && c.srv.isDraining()) {
				c.interrupt()
			}
			close(cmds)
			return
		}
		lastFrame = time.Now()
		c.srv.met.Counter(core.CtrRemoteFramesIn).Inc()
		c.framesIn.Add(1)
		tc, body, err := ParsePayload(payload, c.tracev)
		if err != nil {
			c.writeResp(&Response{Err: core.EncodeError(err)})
			c.interrupt()
			close(cmds)
			return
		}
		var req Request
		if err := json.Unmarshal(body, &req); err != nil {
			c.writeResp(&Response{Err: core.EncodeError(fmt.Errorf("remote: bad request frame: %w", err))})
			c.interrupt()
			close(cmds)
			return
		}
		switch req.Op {
		case OpPing:
			// Answered inline like OpInterrupt: a beat must not queue
			// behind a long-running command, and must not count as session
			// activity for idle eviction.
			c.writeResp(&Response{ID: req.ID})
			continue
		case OpInterrupt:
			// Out of band: Interrupter implementations only raise a sticky
			// flag, so this is safe while the executor runs a command. No
			// Status — only the executor may touch the tracker.
			var ej *core.ErrorJSON
			if sess.intr == nil {
				ej = core.EncodeError(core.WrapErr(sess.kind, "Interrupt", "", 0, core.ErrUnsupported))
			} else {
				sess.intr.Interrupt()
			}
			c.writeResp(&Response{ID: req.ID, Err: ej})
			lastReq = lastFrame
			continue
		}
		lastReq = lastFrame
		c.inflight.Add(1)
		cmds <- command{req: &req, tc: tc}
	}
}

// handshake reads the hello frame, runs admission and builds the session.
func (c *serverConn) handshake() (*session, bool) {
	c.nc.SetReadDeadline(time.Now().Add(30 * time.Second))
	payload, err := ReadFrame(c.nc)
	if err != nil {
		return nil, false
	}
	c.nc.SetReadDeadline(time.Time{})
	c.srv.met.Counter(core.CtrRemoteFramesIn).Inc()
	var req Request
	if err := json.Unmarshal(payload, &req); err != nil || req.Op != OpHello {
		c.writeResp(&Response{ID: req.ID, Err: core.EncodeError(errors.New("remote: expected hello"))})
		return nil, false
	}
	id, err := c.srv.admit()
	if err != nil {
		c.srv.met.Counter(core.CtrRemoteRefusals).Inc()
		c.writeResp(&Response{ID: req.ID, Err: core.EncodeError(err)})
		return nil, false
	}
	tr, err := core.NewTracker(req.Kind)
	if err != nil {
		c.srv.release(c)
		c.writeResp(&Response{ID: req.ID, Err: core.EncodeError(err)})
		return nil, false
	}
	sess := &session{id: id, kind: req.Kind, tr: tr}
	if intr, ok := core.As[core.Interrupter](tr); ok {
		sess.intr = intr
		c.imu.Lock()
		c.intr = intr
		c.imu.Unlock()
	}
	caps := core.CapabilitiesOf(tr)
	tracev := req.TraceV
	if tracev > TraceVersion {
		tracev = TraceVersion
	}
	// Heartbeats arm only when both sides opted in: the server was
	// configured with WithHeartbeat and the client advertised HB. Old
	// peers on either end leave hb off and keep pre-heartbeat behavior.
	hb := req.HB && c.srv.hbInterval > 0
	resp := &Response{ID: req.ID, Session: id, Kind: req.Kind, Caps: &caps, MaxFrame: MaxFrame, TraceV: tracev}
	if hb {
		resp.HBNs = int64(c.srv.hbInterval)
		resp.HBMiss = c.srv.hbMisses
	}
	c.srv.logf("session %d: admitted kind=%s tracev=%d hb=%v", id, req.Kind, tracev, hb)
	// The hello reply itself still crosses as v0 (c.tracev is set only
	// after it's written); everything after the hello exchange uses the
	// negotiated framing.
	if err := c.writeResp(resp); err != nil {
		c.srv.release(c)
		return nil, false
	}
	c.tracev = tracev
	c.hb = hb
	c.infoMu.Lock()
	c.info = SessionInfo{ID: id, Kind: req.Kind, Tenant: c.nc.RemoteAddr().String()}
	c.infoMu.Unlock()
	return sess, true
}

// execute is the session's executor goroutine: the single driver of its
// tracker. It runs queued commands in order and flushes every response —
// including during a graceful drain — then terminates the inferior. Each
// command gets an executor span parented on the client span its frame
// carried, and that span is stamped as the backend tracer's ambient parent
// for the duration, so backend op spans (and their MI round trips) nest
// under the request that caused them.
func (c *serverConn) execute(sess *session, cmds <-chan command) {
	defer c.srv.wg.Done()
	for cmd := range cmds {
		req := cmd.req
		var parent obs.SpanContext
		if cmd.tc != nil {
			parent = obs.SpanContext{TraceID: cmd.tc.TraceID, SpanID: cmd.tc.SpanID}
		}
		sp := c.srv.tracer.StartChild(core.SpanRPCPrefix+req.Op, parent)
		var bt *obs.Tracer
		if src, ok := core.As[core.SpanTracerSource](sess.tr); ok {
			bt = src.SpanTracer()
		}
		bt.SetParent(sp.Context())
		t0 := c.srv.met.Now()
		resp := c.exec(sess, req)
		c.srv.met.Observe(core.OpRemoteRound, t0)
		bt.SetParent(obs.SpanContext{})
		sp.End()
		c.noteStatus(sess, resp.Status)
		spCtx := sp.Context()
		if err := c.writeRespCtx(resp, &TraceContext{TraceID: spCtx.TraceID, SpanID: spCtx.SpanID}); err != nil {
			// Client is gone; keep draining so Terminate below runs.
			c.srv.logf("session %d: dropping response: %v", sess.id, err)
		}
		c.inflight.Add(-1)
	}
	if sess.loaded {
		sess.tr.Terminate()
	}
	c.srv.logf("session %d: closed", sess.id)
	c.srv.release(c)
	c.nc.Close()
}

// noteStatus refreshes the connection's /sessions row from the response
// just produced. Executor goroutine only (plus the HTTP reader via infoMu).
func (c *serverConn) noteStatus(sess *session, st *Status) {
	c.infoMu.Lock()
	c.info.Loaded = sess.loaded
	if st != nil {
		c.info.Exited = st.Exited
		if r, err := core.DecodePauseReasonJSON(st.Reason); err == nil {
			c.info.Pause = r.String()
		}
	}
	c.infoMu.Unlock()
}

// exec runs one request against the session tracker.
func (c *serverConn) exec(sess *session, req *Request) *Response {
	resp := &Response{ID: req.ID}
	var err error
	switch req.Op {
	case OpLoad:
		err = c.load(sess, req)
		if err == nil {
			// Some capabilities are load-dependent (TimeTravel follows
			// WithRecording), so the hello-time set is re-probed now and the
			// refreshed set rides back on the load response.
			caps := core.CapabilitiesOf(sess.tr)
			resp.Caps = &caps
		}
	case OpStart:
		err = sess.tr.Start()
	case OpResume:
		if sess.sub != nil {
			err = c.resumeFiltered(sess)
		} else {
			err = sess.tr.Resume()
		}
	case OpStep:
		err = sess.tr.Step()
	case OpNext:
		err = sess.tr.Next()
	case OpTerminate:
		err = sess.tr.Terminate()
	case OpBreakLine:
		err = sess.tr.BreakBeforeLine(req.File, req.Line, breakOpts(req)...)
	case OpBreakFunc:
		err = sess.tr.BreakBeforeFunc(req.Func, breakOpts(req)...)
	case OpTrack:
		err = sess.tr.TrackFunction(req.Func, breakOpts(req)...)
	case OpWatch:
		err = sess.tr.Watch(req.Var, breakOpts(req)...)
	case OpSubscribe:
		err = c.subscribe(sess, req)
	case OpStepBack:
		if tt, ok := core.As[core.TimeTraveler](sess.tr); ok {
			err = tt.StepBack()
		} else {
			err = core.WrapErr(sess.kind, "StepBack", "", 0, core.ErrUnsupported)
		}
	case OpResumeBack:
		if tt, ok := core.As[core.TimeTraveler](sess.tr); ok {
			err = tt.ResumeBack()
		} else {
			err = core.WrapErr(sess.kind, "ResumeBack", "", 0, core.ErrUnsupported)
		}
	case OpNextBack:
		if tt, ok := core.As[core.TimeTraveler](sess.tr); ok {
			err = tt.NextBack()
		} else {
			err = core.WrapErr(sess.kind, "NextBack", "", 0, core.ErrUnsupported)
		}
	case OpSeek:
		if tt, ok := core.As[core.TimeTraveler](sess.tr); ok {
			err = tt.SeekTo(req.Step)
		} else {
			err = core.WrapErr(sess.kind, "SeekTo", "", 0, core.ErrUnsupported)
		}
	case OpLastChange:
		if rw, ok := core.As[core.ReverseWatcher](sess.tr); ok {
			resp.Change, err = rw.LastChange(req.Var)
		} else {
			err = core.WrapErr(sess.kind, "LastChange", "", 0, core.ErrUnsupported)
		}
	case OpState:
		var st *core.State
		if sp, ok := core.As[core.StateProvider](sess.tr); ok {
			st, err = sp.State()
		} else {
			err = core.WrapErr(sess.kind, "State", "", 0, core.ErrUnsupported)
		}
		if err == nil {
			resp.State, err = json.Marshal(st)
		}
	case OpSource:
		resp.Lines, err = sess.tr.SourceLines()
	case OpStats:
		if sp, ok := core.As[core.StatsProvider](sess.tr); ok {
			resp.Stats, err = json.Marshal(sp.Stats())
		} else {
			err = core.WrapErr(sess.kind, "Stats", "", 0, core.ErrUnsupported)
		}
	case OpRegs:
		if ri, ok := core.As[core.RegisterInspector](sess.tr); ok {
			resp.Regs, err = ri.Registers()
		} else {
			err = core.WrapErr(sess.kind, "Registers", "", 0, core.ErrUnsupported)
		}
	case OpReadMem:
		if mi, ok := core.As[core.MemoryInspector](sess.tr); ok {
			resp.Mem, err = mi.ValueAt(req.Addr, req.Size)
		} else {
			err = core.WrapErr(sess.kind, "ValueAt", "", 0, core.ErrUnsupported)
		}
	case OpSegments:
		if mi, ok := core.As[core.MemoryInspector](sess.tr); ok {
			resp.Segs = mi.MemorySegments()
		} else {
			err = core.WrapErr(sess.kind, "MemorySegments", "", 0, core.ErrUnsupported)
		}
	case OpHeap:
		if hi, ok := core.As[core.HeapInspector](sess.tr); ok {
			var blocks map[uint64]uint64
			blocks, err = hi.HeapBlocks()
			if err == nil {
				resp.Heap = make(map[string]uint64, len(blocks))
				for a, sz := range blocks {
					resp.Heap[strconv.FormatUint(a, 10)] = sz
				}
			}
		} else {
			err = core.WrapErr(sess.kind, "HeapBlocks", "", 0, core.ErrUnsupported)
		}
	default:
		err = fmt.Errorf("remote: unknown op %q", req.Op)
	}
	resp.Err = core.EncodeError(err)
	if sess.loaded {
		resp.Status = c.status(sess)
	}
	return resp
}

// load runs OpLoad: it builds the effective load options with the server's
// tenant caps folded in.
func (c *serverConn) load(sess *session, req *Request) error {
	if sess.loaded {
		return fmt.Errorf("remote: session already has a program loaded")
	}
	spec := req.Load
	if spec == nil {
		spec = &LoadSpec{}
	}
	if spec.WantStdout {
		sess.stdout = &deltaBuffer{}
	}
	if spec.WantStderr {
		sess.stderr = &deltaBuffer{}
	}
	opts := spec.loadOptions(c.srv.caps, sess.stdout, sess.stderr, spec.Stdin)
	// Every backend publishes its spans into the server's shared ring, so
	// the /spans dump covers all sessions without per-session plumbing.
	opts = append(opts, core.WithSpanSink(c.srv.tracer.Ring()))
	if err := sess.tr.LoadProgram(req.Path, opts...); err != nil {
		sess.stdout, sess.stderr = nil, nil
		return err
	}
	sess.loaded = true
	return nil
}

// status snapshots the tracker's observable condition for the response.
// Executor goroutine only.
func (c *serverConn) status(sess *session) *Status {
	st := &Status{}
	if raw, err := core.EncodePauseReasonJSON(sess.tr.PauseReason()); err == nil {
		st.Reason = raw
	}
	st.ExitCode, st.Exited = sess.tr.ExitCode()
	st.File, st.Line = sess.tr.Position()
	st.LastLine = sess.tr.LastLine()
	st.Stdout = sess.stdout.take()
	st.Stderr = sess.stderr.take()
	if tt, ok := core.As[core.TimeTraveler](sess.tr); ok {
		if l := tt.Len(); l > 0 {
			st.TTPos = tt.Pos() + 1 // +1: keep position 0 visible through omitempty
			st.TTLen = l
		}
	}
	return st
}

func breakOpts(req *Request) []core.BreakOption {
	var opts []core.BreakOption
	if req.MaxDepth > 0 {
		opts = append(opts, core.WithMaxDepth(req.MaxDepth))
	}
	if req.Cond != "" {
		opts = append(opts, core.WithCondition(req.Cond))
	}
	if req.Ignore > 0 {
		opts = append(opts, core.WithIgnoreHits(req.Ignore))
	}
	if req.OneShot {
		opts = append(opts, core.WithOneShot())
	}
	return opts
}

// subscribe installs (or, with an empty expression, clears) the session's
// pause subscription. The expression compiles once here; evaluation needs
// the backend's state snapshots, so a backend without StateProvider cannot
// host subscriptions.
func (c *serverConn) subscribe(sess *session, req *Request) error {
	if req.Cond == "" {
		sess.sub = nil
		return nil
	}
	if _, ok := core.As[core.StateProvider](sess.tr); !ok {
		return core.WrapErr(sess.kind, "Subscribe", "", 0, core.ErrUnsupported)
	}
	prog, err := query.Compile(req.Cond)
	if err != nil {
		return err
	}
	sess.sub = prog
	return nil
}

// resumeFiltered is Resume under an active subscription: keep resuming
// until a pause matches the expression, the inferior exits, or the
// supervision layer interrupts (interrupts, deadlines and budgets always
// surface — swallowing them server-side would defeat supervision).
// Filtered pauses are counted but never serialized to the client.
func (c *serverConn) resumeFiltered(sess *session) error {
	for {
		if err := sess.tr.Resume(); err != nil {
			return err
		}
		if _, exited := sess.tr.ExitCode(); exited {
			return nil
		}
		r := sess.tr.PauseReason()
		if r.Type == core.PauseInterrupted {
			return nil
		}
		if c.subMatch(sess, r) {
			return nil
		}
		c.srv.met.Counter(core.CtrRemoteFiltered).Inc()
	}
}

// subMatch evaluates the subscription against the current pause. A pause
// the server cannot evaluate (snapshot failure) surfaces rather than being
// silently dropped.
func (c *serverConn) subMatch(sess *session, r core.PauseReason) bool {
	sp, ok := core.As[core.StateProvider](sess.tr)
	if !ok {
		return true
	}
	st, err := sp.State()
	if err != nil || st == nil {
		return true
	}
	file, line := sess.tr.Position()
	fn := r.Function
	if fn == "" && st.Frame != nil {
		fn = st.Frame.Name
	}
	v := query.StateView{
		EventName: pauseEvent(r.Type),
		LineNo:    line,
		FileName:  file,
		FuncName:  fn,
		State:     st,
	}
	return sess.sub.Match(&v)
}

// pauseEvent maps a pause reason onto the query event vocabulary.
func pauseEvent(t core.PauseReasonType) string {
	switch t {
	case core.PauseCall:
		return query.EventCall
	case core.PauseReturn:
		return query.EventReturn
	default:
		return query.EventLine
	}
}

// deltaBuffer accumulates inferior output between responses; take drains
// it. The inferior goroutine writes while the executor drains, so it locks.
type deltaBuffer struct {
	mu sync.Mutex
	b  []byte
}

// Write implements io.Writer.
func (d *deltaBuffer) Write(p []byte) (int, error) {
	d.mu.Lock()
	d.b = append(d.b, p...)
	d.mu.Unlock()
	return len(p), nil
}

// take returns and clears the accumulated output. Safe on a nil receiver.
func (d *deltaBuffer) take() string {
	if d == nil {
		return ""
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.b) == 0 {
		return ""
	}
	s := string(d.b)
	d.b = d.b[:0]
	return s
}
