package remote

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	reqs := []*Request{
		{ID: 1, Op: OpHello, Kind: "minipy"},
		{ID: 2, Op: OpLoad, Path: "prog.py", Load: &LoadSpec{Source: "x = 1\n", WantStdout: true}},
		{ID: 3, Op: OpBreakLine, File: "prog.py", Line: 7, MaxDepth: 2},
	}
	for _, req := range reqs {
		if err := WriteFrame(&buf, req); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range reqs {
		payload, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		var got Request
		if err := json.Unmarshal(payload, &got); err != nil {
			t.Fatal(err)
		}
		if got.ID != want.ID || got.Op != want.Op || got.Path != want.Path || got.Line != want.Line {
			t.Errorf("frame round trip: got %+v, want %+v", got, want)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Errorf("exhausted stream: err = %v, want io.EOF", err)
	}
}

func TestFrameTooLarge(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	if _, err := ReadFrame(bytes.NewReader(hdr[:])); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversized prefix: err = %v, want ErrFrameTooLarge", err)
	}
}

func TestFrameCutMidPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &Request{ID: 1, Op: OpResume}); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadFrame(bytes.NewReader(cut)); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("mid-frame cut: err = %v, want io.ErrUnexpectedEOF", err)
	}
	// Cut inside the header is also unexpected, not a clean EOF.
	if _, err := ReadFrame(bytes.NewReader(cut[:2])); err == nil || err == io.EOF {
		t.Errorf("mid-header cut: err = %v, want a real error", err)
	}
}
