package remote

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	reqs := []*Request{
		{ID: 1, Op: OpHello, Kind: "minipy"},
		{ID: 2, Op: OpLoad, Path: "prog.py", Load: &LoadSpec{Source: "x = 1\n", WantStdout: true}},
		{ID: 3, Op: OpBreakLine, File: "prog.py", Line: 7, MaxDepth: 2},
	}
	for _, req := range reqs {
		if err := WriteFrame(&buf, req); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range reqs {
		payload, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		var got Request
		if err := json.Unmarshal(payload, &got); err != nil {
			t.Fatal(err)
		}
		if got.ID != want.ID || got.Op != want.Op || got.Path != want.Path || got.Line != want.Line {
			t.Errorf("frame round trip: got %+v, want %+v", got, want)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Errorf("exhausted stream: err = %v, want io.EOF", err)
	}
}

func TestFrameTooLarge(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	_, err := ReadFrame(bytes.NewReader(hdr[:]))
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversized prefix: err = %v, want ErrFrameTooLarge", err)
	}
	// The typed decode error reports what the prefix promised.
	var de *DecodeError
	if !errors.As(err, &de) {
		t.Fatalf("oversized prefix: err = %T, want *DecodeError", err)
	}
	if de.Offset != 4 || de.Len != MaxFrame+1 {
		t.Errorf("DecodeError = {Offset: %d, Len: %d}, want {4, %d}", de.Offset, de.Len, MaxFrame+1)
	}
}

func TestFrameCutMidPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, &Request{ID: 1, Op: OpResume}); err != nil {
		t.Fatal(err)
	}
	want := buf.Len() - 4 // payload the prefix promises
	cut := buf.Bytes()[:buf.Len()-3]
	_, err := ReadFrame(bytes.NewReader(cut))
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("mid-frame cut: err = %v, want io.ErrUnexpectedEOF", err)
	}
	var de *DecodeError
	if !errors.As(err, &de) {
		t.Fatalf("mid-frame cut: err = %T, want *DecodeError", err)
	}
	if de.Len != want || de.Offset != len(cut) {
		t.Errorf("mid-payload DecodeError = {Offset: %d, Len: %d}, want {%d, %d}",
			de.Offset, de.Len, len(cut), want)
	}
	// Cut inside the header is also typed, and distinguishable: Len == -1.
	_, err = ReadFrame(bytes.NewReader(cut[:2]))
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("mid-header cut: err = %v, want io.ErrUnexpectedEOF", err)
	}
	de = nil
	if !errors.As(err, &de) {
		t.Fatalf("mid-header cut: err = %T, want *DecodeError", err)
	}
	if de.Offset != 2 || de.Len != -1 {
		t.Errorf("mid-prefix DecodeError = {Offset: %d, Len: %d}, want {2, -1}", de.Offset, de.Len)
	}
	if de.Error() == "" {
		t.Error("DecodeError renders empty")
	}
}
