package remote

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"slices"
	"sync"
	"testing"
	"time"

	"easytracker/internal/core"
	"easytracker/internal/vnet"
)

// The chaos harness drives fleets of remote sessions over the virtual
// network while a fault scheduler tears at the links: added latency and
// jitter, bandwidth caps, corruption bursts, resets, partitions longer than
// the heartbeat window, torn frames. The acceptance bar is conformance, not
// mere survival — a session that recovers must replay to a transcript
// byte-identical to a fault-free run, with zero lost or duplicated armed
// probes.

// chaosPy pauses deterministically: one watch hit per change of total.
const chaosPy = `total = 0
k = 0
while k < 6:
    k = k + 1
    total = total + k
`

// chaosPolicy is the generous redial policy the harness sessions run under:
// many fast attempts, a budget far beyond any injected outage, and enough
// recoveries to ride out every fault event.
func chaosPolicy() core.RedialPolicy {
	return core.RedialPolicy{
		MaxAttempts:   50,
		BaseDelay:     2 * time.Millisecond,
		MaxDelay:      25 * time.Millisecond,
		Multiplier:    2,
		Jitter:        0.3,
		Budget:        20 * time.Second,
		MaxRecoveries: 64,
		DialTimeout:   500 * time.Millisecond,
	}
}

// startVnetServer serves on a virtual-network listener bound to "srv".
func startVnetServer(t *testing.T, n *vnet.Network, opts ...ServerOption) *Server {
	t.Helper()
	ln, err := n.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(opts...)
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return srv
}

// pauseStamp renders the observable pause condition: reason and position.
func pauseStamp(tr *Tracker) string {
	file, line := tr.Position()
	return fmt.Sprintf("%s@%s:%d", tr.PauseReason().String(), file, line)
}

// runChaosSession drives one session to completion, retrying operations
// across session restarts. A restart wipes inferior progress, so the
// transcript restarts with it; the final transcript therefore always
// describes one uninterrupted run and must equal the fault-free reference.
// A restart that loses armed probes is a hard failure.
func runChaosSession(tr *Tracker, pol core.RedialPolicy) (tx []string, err error) {
	step := func(name string, f func() error) error {
		for {
			err := f()
			if err == nil {
				return nil
			}
			var te *core.TrackerError
			if errors.As(err, &te) && te.Recovery == core.RecoveryRestarted {
				if len(te.Lost) > 0 {
					return fmt.Errorf("%s: lost arms after replay: %v", name, te.Lost)
				}
				tx = tx[:0]
				continue
			}
			return fmt.Errorf("%s: %w", name, err)
		}
	}
	if err := step("load", func() error {
		return tr.LoadProgram("chaos.py", core.WithSource(chaosPy),
			core.WithRedialPolicy(pol), core.WithObservability())
	}); err != nil {
		return nil, err
	}
	if err := step("watch", func() error { return tr.Watch("::total") }); err != nil {
		return nil, err
	}
	if err := step("start", func() error { return tr.Start() }); err != nil {
		return nil, err
	}
	for rounds := 0; ; rounds++ {
		if rounds > 10000 {
			return nil, errors.New("resume loop never reached the exit")
		}
		if _, done := tr.ExitCode(); done {
			break
		}
		if err := tr.Resume(); err != nil {
			var te *core.TrackerError
			if errors.As(err, &te) && te.Recovery == core.RecoveryRestarted {
				if len(te.Lost) > 0 {
					return nil, fmt.Errorf("resume: lost arms after replay: %v", te.Lost)
				}
				tx = tx[:0]
				continue
			}
			return nil, fmt.Errorf("resume: %w", err)
		}
		tx = append(tx, pauseStamp(tr))
	}
	code, _ := tr.ExitCode()
	return append(tx, fmt.Sprintf("exit=%d", code)), nil
}

// splitmix advances a splitmix64 state — each scheduler goroutine gets its
// own deterministic stream.
func splitmix(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// chaosSchedule fires a bounded sequence of fault events at one client's
// links, then clears everything so the session can finish clean. Faults are
// chosen so conformance stays provable: partitions outlast the heartbeat
// window (the pending call dies and replays rather than hanging on a
// dropped request), and corruption runs hot enough that a corrupted stream
// cannot survive undetected — any frame it mangles kills the connection,
// and the recovery wipes the transcript.
func chaosSchedule(n *vnet.Network, name string, seed uint64, events int) {
	rng := seed
	sleepMs := func(lo, span uint64) {
		time.Sleep(time.Duration(lo+splitmix(&rng)%span) * time.Millisecond)
	}
	for ev := 0; ev < events; ev++ {
		sleepMs(3, 15)
		switch splitmix(&rng) % 5 {
		case 0: // latency + jitter spell, left in place until the next event
			n.SetFaults(name, "srv", vnet.Faults{
				Latency: time.Duration(splitmix(&rng)%3) * time.Millisecond,
				Jitter:  2 * time.Millisecond,
			})
			n.SetFaults("srv", name, vnet.Faults{
				Latency: time.Duration(splitmix(&rng)%3) * time.Millisecond,
			})
		case 1: // corruption burst, then clear
			n.SetFaults(name, "srv", vnet.Faults{CorruptProb: 0.25})
			sleepMs(5, 20)
			n.SetFaults(name, "srv", vnet.Faults{})
		case 2: // reset: both ends notice immediately
			n.Sever(name, "srv")
		case 3: // partition past the heartbeat window, healed inside the budget
			n.Partition(name, "srv")
			sleepMs(70, 80)
			n.Heal(name, "srv")
		case 4: // bandwidth squeeze, left in place until the next event
			n.SetFaults("srv", name, vnet.Faults{Bandwidth: 200_000})
		}
	}
	n.SetFaults(name, "srv", vnet.Faults{})
	n.SetFaults("srv", name, vnet.Faults{})
	n.Heal(name, "srv")
}

// TestChaosFleetConformance is the headline acceptance test: a fleet of
// concurrent sessions runs the watched program to completion while every
// session's links take faults, and every transcript must come out identical
// to a fault-free reference run.
func TestChaosFleetConformance(t *testing.T) {
	sessions, events := 200, 5
	if testing.Short() {
		sessions, events = 24, 3
	}
	n := vnet.New(0xEA57)
	startVnetServer(t, n,
		WithMaxSessions(2*sessions+8), // headroom for evicting-session overlap during redials
		WithHeartbeat(20*time.Millisecond, 3),
		WithRetryAfterHint(15*time.Millisecond))
	pol := chaosPolicy()

	// Fault-free reference over the same network (its link is never touched).
	refTr, err := Connect("srv", "minipy", WithDialer(n.Dialer("ref-cli")))
	if err != nil {
		t.Fatalf("reference connect: %v", err)
	}
	ref, err := runChaosSession(refTr, pol)
	refTr.Close()
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	if len(ref) < 3 {
		t.Fatalf("reference transcript too thin to prove anything: %v", ref)
	}

	var wg, sched sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		name := fmt.Sprintf("cli-%03d", i)
		seed := uint64(i)*0x9E3779B9 + 1
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr, err := Connect("srv", "minipy", WithDialer(n.Dialer(name)))
			if err != nil {
				errs <- fmt.Errorf("%s: connect: %w", name, err)
				return
			}
			defer tr.Close()
			// Faults start only after the initial dial: the redial policy
			// covers established sessions, not first contact.
			sched.Add(1)
			go func() {
				defer sched.Done()
				chaosSchedule(n, name, seed, events)
			}()
			tx, err := runChaosSession(tr, pol)
			if err != nil {
				errs <- fmt.Errorf("%s: %w", name, err)
				return
			}
			if !slices.Equal(tx, ref) {
				errs <- fmt.Errorf("%s: transcript drifted from the fault-free run:\n got: %v\nwant: %v", name, tx, ref)
			}
		}()
	}
	wg.Wait()
	sched.Wait()
	close(errs)
	failures := 0
	for err := range errs {
		if failures < 5 {
			t.Error(err)
		}
		failures++
	}
	if failures > 5 {
		t.Errorf("... and %d more failed sessions", failures-5)
	}
}

// TestChaosDrainUnderFire drains the server while sessions are mid-flight
// and links are being reset. The drain must complete inside its context and
// every client must unblock — finishing, or failing over to a session-lost
// (or draining-refusal) error — with nobody hung.
func TestChaosDrainUnderFire(t *testing.T) {
	n := vnet.New(0xD1)
	srv := startVnetServer(t, n,
		WithMaxSessions(64),
		WithHeartbeat(20*time.Millisecond, 3),
		WithRetryAfterHint(10*time.Millisecond))

	pol := chaosPolicy()
	pol.Budget = 400 * time.Millisecond // give up quickly once the server is gone
	pol.MaxRecoveries = 8

	const fleet = 16
	var wg sync.WaitGroup
	outcome := make(chan error, fleet)
	for i := 0; i < fleet; i++ {
		name := fmt.Sprintf("drain-%02d", i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr, err := Connect("srv", "minipy", WithDialer(n.Dialer(name)))
			if err != nil {
				outcome <- err
				return
			}
			defer tr.Close()
			_, err = runChaosSession(tr, pol)
			outcome <- err
		}()
	}
	time.Sleep(10 * time.Millisecond) // let the fleet get airborne
	for i := 0; i < fleet; i += 2 {
		n.Sever(fmt.Sprintf("drain-%02d", i), "srv")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain under fire fell back to hard close: %v", err)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("clients still blocked after the drain completed")
	}
	close(outcome)
	for err := range outcome {
		if err == nil {
			continue // finished before the drain caught it
		}
		if !errors.Is(err, core.ErrSessionLost) && !errors.Is(err, core.ErrServerDraining) {
			t.Errorf("client failed with an unexpected error class: %v", err)
		}
	}
}

// connectChaos opens one session over the virtual network with chaosPy
// loaded and its watchpoint armed — the setup the targeted fault tests
// share. Faults are injected afterwards, at controlled moments.
func connectChaos(t *testing.T, n *vnet.Network, name string, pol core.RedialPolicy) *Tracker {
	t.Helper()
	tr, err := Connect("srv", "minipy", WithDialer(n.Dialer(name)))
	if err != nil {
		t.Fatalf("%s: connect: %v", name, err)
	}
	t.Cleanup(func() { tr.Close() })
	if err := tr.LoadProgram("chaos.py", core.WithSource(chaosPy),
		core.WithRedialPolicy(pol), core.WithObservability()); err != nil {
		t.Fatalf("%s: load: %v", name, err)
	}
	if err := tr.Watch("::total"); err != nil {
		t.Fatalf("%s: watch: %v", name, err)
	}
	return tr
}

// finishClean drives a (possibly just-replayed) session to a zero exit.
func finishClean(t *testing.T, tr *Tracker) {
	t.Helper()
	for {
		if code, done := tr.ExitCode(); done {
			if code != 0 {
				t.Fatalf("exit code %d after recovery, want 0", code)
			}
			return
		}
		if err := tr.Resume(); err != nil {
			t.Fatalf("resume after recovery: %v", err)
		}
	}
}

// TestChaosTornFrameStateReplay cuts the connection in the middle of a
// State transfer — once inside the 4-byte length prefix, once inside the
// payload — and proves the failure surfaces as a typed *DecodeError, the
// session replays without losing or duplicating the armed watch, and the
// re-fetched State is byte-identical to a fault-free session at the same
// pause point.
func TestChaosTornFrameStateReplay(t *testing.T) {
	for _, tc := range []struct {
		name  string
		cut   int
		check func(t *testing.T, de *DecodeError)
	}{
		{"mid-prefix", 2, func(t *testing.T, de *DecodeError) {
			if de.Len != -1 || de.Offset != 2 {
				t.Fatalf("mid-prefix DecodeError lies about the cut: %+v", de)
			}
		}},
		{"mid-payload", 4 + 11, func(t *testing.T, de *DecodeError) {
			if de.Offset != 4+11 || de.Len <= 11 {
				t.Fatalf("mid-payload DecodeError lies about the cut: %+v", de)
			}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			n := vnet.New(5)
			startVnetServer(t, n)

			// Fault-free reference: State at the second watch pause.
			ref := connectChaos(t, n, "torn-ref", chaosPolicy())
			var refTx []string
			for _, f := range []func() error{ref.Start, ref.Resume, ref.Resume} {
				if err := f(); err != nil {
					t.Fatalf("reference drive: %v", err)
				}
				refTx = append(refTx, pauseStamp(ref))
			}
			refState, err := ref.State()
			if err != nil {
				t.Fatalf("reference state: %v", err)
			}
			refJSON, err := json.Marshal(refState)
			if err != nil {
				t.Fatal(err)
			}

			tr := connectChaos(t, n, "torn-cli", chaosPolicy())
			var tx []string
			for _, f := range []func() error{tr.Start, tr.Resume, tr.Resume} {
				if err := f(); err != nil {
					t.Fatalf("drive to pause: %v", err)
				}
				tx = append(tx, pauseStamp(tr))
			}
			if !slices.Equal(tx, refTx) {
				t.Fatalf("pre-tear transcript drifted: %v vs %v", tx, refTx)
			}

			// Tear the State response at the chosen byte.
			n.SeverAfter("srv", "torn-cli", tc.cut)
			_, err = tr.State()
			var te *core.TrackerError
			if !errors.As(err, &te) || te.Recovery != core.RecoveryRestarted {
				t.Fatalf("torn State: err = %v, want a RecoveryRestarted TrackerError", err)
			}
			if len(te.Lost) != 0 {
				t.Fatalf("replay lost arms: %v", te.Lost)
			}
			var de *DecodeError
			if !errors.As(err, &de) {
				t.Fatalf("torn State error %v carries no *DecodeError", err)
			}
			tc.check(t, de)
			if !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("torn State error lost its io.ErrUnexpectedEOF identity: %v", err)
			}

			// The replayed session restarts at the entry point with the
			// watch re-armed exactly once: re-driving produces the same two
			// pauses, and State at the same point is byte-identical.
			tx = tx[:0]
			for _, f := range []func() error{tr.Resume, tr.Resume} {
				if err := f(); err != nil {
					t.Fatalf("re-drive after replay: %v", err)
				}
				tx = append(tx, pauseStamp(tr))
			}
			if !slices.Equal(tx, refTx[1:]) {
				t.Fatalf("replayed pauses drifted (duplicated or lost arms?):\n got: %v\nwant: %v", tx, refTx[1:])
			}
			st, err := tr.State()
			if err != nil {
				t.Fatalf("state after replay: %v", err)
			}
			gotJSON, err := json.Marshal(st)
			if err != nil {
				t.Fatal(err)
			}
			if string(gotJSON) != string(refJSON) {
				t.Fatalf("replayed State differs from the fault-free run:\n got: %s\nwant: %s", gotJSON, refJSON)
			}
			finishClean(t, tr)
		})
	}
}

// TestRedialRecoversFromPartition partitions an established session for
// longer than the heartbeat window — with a couple of injected dial
// refusals waiting behind the heal — and expects the redial loop to ride
// through: a RecoveryRestarted error with nothing lost, then a clean run.
func TestRedialRecoversFromPartition(t *testing.T) {
	n := vnet.New(3)
	srv := startVnetServer(t, n, WithHeartbeat(15*time.Millisecond, 3))
	pol := chaosPolicy()
	tr := connectChaos(t, n, "part-cli", pol)
	if err := tr.Start(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Resume(); err != nil {
		t.Fatal(err)
	}

	n.Partition("part-cli", "srv")
	n.RefuseNext("srv", 2) // the first dials after the heal bounce, too
	go func() {
		time.Sleep(120 * time.Millisecond)
		n.Heal("part-cli", "srv")
	}()

	err := tr.Resume()
	var te *core.TrackerError
	if !errors.As(err, &te) || te.Recovery != core.RecoveryRestarted {
		t.Fatalf("resume across partition: err = %v, want RecoveryRestarted", err)
	}
	if len(te.Lost) != 0 {
		t.Fatalf("recovery lost arms: %v", te.Lost)
	}
	finishClean(t, tr)

	stats := tr.ClientStats()
	if got := stats.Counters[core.CtrRemoteRedials]; got < 1 {
		t.Errorf("remote.redials = %d, want >= 1", got)
	}
	if got := stats.Counters[core.CtrRemoteRedialGiveups]; got != 0 {
		t.Errorf("remote.redial_giveups = %d, want 0", got)
	}
	// The server noticed the silent peer and evicted the abandoned session.
	deadline := time.Now().Add(2 * time.Second)
	for srv.Stats().Counters[core.CtrRemoteHBEvicts] < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("heartbeat eviction never recorded (count=%d)",
				srv.Stats().Counters[core.CtrRemoteHBEvicts])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRedialBudgetExhausted partitions a session and never heals: the
// policy must burn its budget, give up, and retire the tracker with an
// errors.Is-stable session-lost error.
func TestRedialBudgetExhausted(t *testing.T) {
	n := vnet.New(4)
	startVnetServer(t, n, WithHeartbeat(10*time.Millisecond, 3))
	pol := chaosPolicy()
	pol.Budget = 250 * time.Millisecond
	pol.MaxDelay = 20 * time.Millisecond
	tr := connectChaos(t, n, "lost-cli", pol)
	if err := tr.Start(); err != nil {
		t.Fatal(err)
	}

	n.Partition("lost-cli", "srv")
	err := tr.Resume()
	if !errors.Is(err, core.ErrSessionLost) {
		t.Fatalf("exhausted redial: err = %v, want errors.Is ErrSessionLost", err)
	}
	var te *core.TrackerError
	if !errors.As(err, &te) || te.Recovery != core.RecoveryFailed {
		t.Fatalf("exhausted redial: err = %v, want RecoveryFailed", err)
	}
	if code, done := tr.ExitCode(); !done || code != -1 {
		t.Fatalf("retired tracker exit = %d/%v, want -1/true", code, done)
	}
	// The loss is sticky and keeps its identity on every later call.
	if err := tr.Resume(); !errors.Is(err, core.ErrSessionLost) {
		t.Fatalf("second resume after loss: %v", err)
	}
	stats := tr.ClientStats()
	if got := stats.Counters[core.CtrRemoteRedialGiveups]; got != 1 {
		t.Errorf("remote.redial_giveups = %d, want 1", got)
	}
	if got := stats.Counters[core.CtrRemoteRedials]; got < 2 {
		t.Errorf("remote.redials = %d, want >= 2 (several attempts inside the budget)", got)
	}
}

// TestRedialRetryAfterHintOnBusyServer proves the typed refusal crosses the
// wire intact: a full server turns a connect into ErrServerBusy carrying
// the server's retry-after hint.
func TestRedialRetryAfterHintOnBusyServer(t *testing.T) {
	n := vnet.New(6)
	startVnetServer(t, n, WithMaxSessions(1), WithRetryAfterHint(30*time.Millisecond))
	first := connectChaos(t, n, "busy-1", chaosPolicy())
	_ = first

	_, err := Connect("srv", "minipy", WithDialer(n.Dialer("busy-2")))
	if !errors.Is(err, core.ErrServerBusy) {
		t.Fatalf("connect to full server: err = %v, want errors.Is ErrServerBusy", err)
	}
	if hint := core.RetryAfterHint(err); hint != 30*time.Millisecond {
		t.Fatalf("retry-after hint = %v, want 30ms", hint)
	}
}

// TestHeartbeatDetectsDeadServerMidResume black-holes only the server->
// client direction while a Resume is in flight: without heartbeats the
// client would wait on the dropped response forever. The watchdog must kill
// the connection and the redial loop must bring the session back once the
// partition heals.
func TestHeartbeatDetectsDeadServerMidResume(t *testing.T) {
	n := vnet.New(8)
	startVnetServer(t, n, WithHeartbeat(15*time.Millisecond, 3))
	tr := connectChaos(t, n, "hb-cli", chaosPolicy())
	if err := tr.Start(); err != nil {
		t.Fatal(err)
	}

	n.PartitionOneWay("srv", "hb-cli")
	go func() {
		time.Sleep(100 * time.Millisecond)
		n.Heal("srv", "hb-cli")
	}()

	done := make(chan error, 1)
	go func() { done <- tr.Resume() }()
	select {
	case err := <-done:
		var te *core.TrackerError
		if !errors.As(err, &te) || te.Recovery != core.RecoveryRestarted {
			t.Fatalf("resume across dead server: err = %v, want RecoveryRestarted", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Resume blocked forever on a dropped response — heartbeat watchdog never fired")
	}
	finishClean(t, tr)
}

// TestHeartbeatServerEvictsSilentPeer black-holes the client->server
// direction: the server stops hearing pings and must evict the session —
// freeing its slot — without waiting for the idle timeout.
func TestHeartbeatServerEvictsSilentPeer(t *testing.T) {
	n := vnet.New(9)
	srv := startVnetServer(t, n, WithHeartbeat(10*time.Millisecond, 3))
	tr := connectChaos(t, n, "mute-cli", chaosPolicy())
	_ = tr
	if srv.SessionCount() != 1 {
		t.Fatalf("session count = %d, want 1", srv.SessionCount())
	}

	n.PartitionOneWay("mute-cli", "srv")
	deadline := time.Now().Add(2 * time.Second)
	for srv.SessionCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("silent peer never evicted (sessions=%d)", srv.SessionCount())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := srv.Stats().Counters[core.CtrRemoteHBEvicts]; got < 1 {
		t.Errorf("remote.heartbeat_evictions = %d, want >= 1", got)
	}
}
