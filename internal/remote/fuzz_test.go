package remote

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"testing"
)

// FuzzWireDecode drives the frame reader and the request decoder with
// arbitrary bytes — the exact stream a hostile or corrupted client could
// feed the server. Properties: the decoder never panics and never allocates
// beyond MaxFrame no matter the length prefix, and every frame it does
// accept survives a re-encode/re-decode round trip.
func FuzzWireDecode(f *testing.F) {
	frame := func(v any) []byte {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, v); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(frame(&Request{ID: 1, Op: OpHello, Kind: "minipy"}))
	f.Add(frame(&Request{ID: 2, Op: OpLoad, Path: "prog.py",
		Load: &LoadSpec{Source: "x = 1\n", Stdin: "in", WantStdout: true}}))
	f.Add(frame(&Request{ID: 3, Op: OpBreakLine, File: "prog.py", Line: 7, MaxDepth: 1}))
	f.Add(frame(&Request{ID: 4, Op: OpWatch, Var: "::total"}))
	f.Add(frame(&Request{ID: 5, Op: OpInterrupt}))
	// Two frames back to back: the reader must consume exactly one.
	f.Add(append(frame(&Request{ID: 6, Op: OpResume}), frame(&Request{ID: 7, Op: OpStep})...))
	// Corrupt length prefixes and truncations.
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add([]byte{0, 0, 0, 8, '{', '}'})
	f.Add([]byte{0, 0})
	f.Add([]byte{0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		payload, err := ReadFrame(r)
		if err != nil {
			return // rejecting garbage is fine; not panicking is the test
		}
		var req Request
		if json.Unmarshal(payload, &req) != nil {
			return
		}
		// Accepted frames must re-encode to something the reader accepts
		// and that decodes to the same request.
		var buf bytes.Buffer
		if err := WriteFrame(&buf, &req); err != nil {
			t.Fatalf("re-encoding accepted request: %v", err)
		}
		payload2, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("re-reading re-encoded frame: %v", err)
		}
		var req2 Request
		if err := json.Unmarshal(payload2, &req2); err != nil {
			t.Fatalf("re-decoding: %v", err)
		}
		if req.ID != req2.ID || req.Op != req2.Op || req.Path != req2.Path ||
			req.File != req2.File || req.Line != req2.Line || req.Func != req2.Func ||
			req.Var != req2.Var || req.Kind != req2.Kind {
			t.Fatalf("round trip drifted: %+v -> %+v", req, req2)
		}
		// The reader must leave the remainder of the stream untouched.
		if rest, err := io.ReadAll(r); err == nil && len(rest) > 0 {
			if _, err := ReadFrame(bytes.NewReader(rest)); err == nil {
				// fine — subsequent frames remain readable
				_ = rest
			}
		}
	})
}

// FuzzWireDecodeTorn cuts well-formed frames at an arbitrary byte boundary —
// the stream a connection severed mid-transfer leaves behind. Properties:
// every non-clean truncation is reported as a typed *DecodeError that still
// matches the generic sentinels via errors.Is, the error's Offset/Len
// describe the cut honestly, and a cut never decodes as success.
func FuzzWireDecodeTorn(f *testing.F) {
	frame := func(v any) []byte {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, v); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	whole := frame(&Request{ID: 9, Op: OpLoad, Path: "prog.py",
		Load: &LoadSpec{Source: "x = 1\nwhile x < 100:\n    x = x + 1\n"}})
	for _, cut := range []int{1, 2, 3, 4, 5, len(whole) / 2, len(whole) - 1} {
		f.Add(whole, cut)
	}
	f.Add(frame(&Request{ID: 1, Op: OpState}), 0)

	f.Fuzz(func(t *testing.T, data []byte, cut int) {
		if cut < 0 || cut > len(data) {
			return
		}
		torn := data[:cut]
		payload, err := ReadFrame(bytes.NewReader(torn))
		if err == nil {
			// A successful read must have had a complete frame available.
			if cut < 4 || 4+len(payload) > cut {
				t.Fatalf("cut at %d produced a %d-byte payload out of thin air", cut, len(payload))
			}
			return
		}
		if err == io.EOF {
			if cut != 0 {
				t.Fatalf("cut at %d misreported as clean EOF", cut)
			}
			return
		}
		var de *DecodeError
		if !errors.As(err, &de) {
			// Only torn streams must be typed; other rejects (none reachable
			// from a bytes.Reader) would land here.
			t.Fatalf("torn stream error %v (%T) is not a *DecodeError", err, err)
		}
		if de.Len == -1 {
			if !errors.Is(err, io.ErrUnexpectedEOF) || de.Offset >= 4 {
				t.Fatalf("mid-prefix error lies: %+v", de)
			}
		} else if !errors.Is(err, ErrFrameTooLarge) {
			if !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("mid-payload error lost its sentinel: %v", err)
			}
			if de.Offset > cut || de.Len < 0 {
				t.Fatalf("mid-payload error lies about the cut: %+v (cut %d)", de, cut)
			}
		}
	})
}
