package remote

import (
	"context"
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"easytracker/internal/core"
	"easytracker/internal/spanexport"
)

// get performs one request against the telemetry handler, returning status
// and body.
func get(t *testing.T, ts *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestTelemetryEndpoints(t *testing.T) {
	srv, addr := startServer(t)
	ts := httptest.NewServer(srv.TelemetryHandler())
	defer ts.Close()

	tr := connectPy(t, addr)
	if err := tr.Start(); err != nil {
		t.Fatal(err)
	}

	t.Run("healthz", func(t *testing.T) {
		code, body := get(t, ts, "/healthz")
		if code != 200 || !strings.Contains(body, "ok") {
			t.Fatalf("healthz: %d %q", code, body)
		}
	})

	t.Run("readyz live", func(t *testing.T) {
		code, body := get(t, ts, "/readyz")
		if code != 200 || !strings.Contains(body, "ready") {
			t.Fatalf("readyz: %d %q", code, body)
		}
	})

	t.Run("metrics", func(t *testing.T) {
		code, body := get(t, ts, "/metrics")
		if code != 200 || body == "" {
			t.Fatalf("metrics: %d empty=%v", code, body == "")
		}
		for _, want := range []string{
			"et_obs_enabled 1",
			"et_sessions_live 1",
			"et_draining 0",
			"et_remote_sessions_opened_total 1",
		} {
			if !strings.Contains(body, want) {
				t.Errorf("metrics exposition missing %q\n%s", want, body)
			}
		}
	})

	t.Run("sessions", func(t *testing.T) {
		code, body := get(t, ts, "/sessions")
		if code != 200 {
			t.Fatalf("sessions: %d", code)
		}
		var infos []SessionInfo
		if err := json.Unmarshal([]byte(body), &infos); err != nil {
			t.Fatalf("sessions JSON: %v\n%s", err, body)
		}
		if len(infos) != 1 {
			t.Fatalf("sessions = %d, want 1", len(infos))
		}
		in := infos[0]
		if in.Kind != "minipy" || !in.Loaded || in.Exited {
			t.Fatalf("session info drifted: %+v", in)
		}
		if in.FramesIn == 0 || in.FramesOut == 0 {
			t.Fatalf("frame counters not moving: %+v", in)
		}
	})

	t.Run("spans", func(t *testing.T) {
		code, body := get(t, ts, "/spans")
		if code != 200 {
			t.Fatalf("spans: %d", code)
		}
		dump, err := spanexport.DecodeDump([]byte(body))
		if err != nil {
			t.Fatal(err)
		}
		if dump.Proc != "et-serve" || len(dump.Spans) == 0 {
			t.Fatalf("span dump drifted: proc=%q n=%d", dump.Proc, len(dump.Spans))
		}
		code, chrome := get(t, ts, "/spans?chrome=1")
		if code != 200 || !strings.Contains(chrome, `"traceEvents"`) {
			t.Fatalf("chrome spans: %d", code)
		}
	})

	t.Run("pprof", func(t *testing.T) {
		code, body := get(t, ts, "/debug/pprof/")
		if code != 200 || !strings.Contains(body, "goroutine") {
			t.Fatalf("pprof index: %d", code)
		}
	})
}

// TestTelemetryReadyzDrain proves the readiness flip: /readyz answers 503
// the moment Shutdown begins, while /healthz stays 200 — the handler remains
// serviceable through the drain.
func TestTelemetryReadyzDrain(t *testing.T) {
	srv, addr := startServer(t)
	ts := httptest.NewServer(srv.TelemetryHandler())
	defer ts.Close()

	tr := connectPy(t, addr)
	if err := tr.Start(); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	done := make(chan struct{})
	go func() {
		defer close(done)
		srv.Shutdown(ctx)
	}()

	deadline := time.Now().Add(2 * time.Second)
	for {
		code, _ := get(t, ts, "/readyz")
		if code == 503 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("/readyz never flipped to 503 during drain")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if code, _ := get(t, ts, "/healthz"); code != 200 {
		t.Fatalf("healthz during drain: %d", code)
	}
	if code, body := get(t, ts, "/metrics"); code != 200 || !strings.Contains(body, "et_draining 1") {
		t.Fatalf("metrics during drain: %d", code)
	}

	tr.Close() // release the session so the drain completes
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("drain never completed")
	}
}

// TestTelemetryConcurrentScrape hammers every endpoint while sessions run —
// the handler must hold under -race next to live wire traffic.
func TestTelemetryConcurrentScrape(t *testing.T) {
	srv, addr := startServer(t)
	ts := httptest.NewServer(srv.TelemetryHandler())
	defer ts.Close()

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr, err := Connect(addr, "minipy")
			if err != nil {
				t.Error(err)
				return
			}
			defer tr.Close()
			if err := tr.LoadProgram("count.py", core.WithSource(countPy)); err != nil {
				t.Error(err)
				return
			}
			if err := tr.Start(); err != nil {
				t.Error(err)
				return
			}
			tr.Resume()
		}()
	}
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				for _, p := range []string{"/metrics", "/sessions", "/spans", "/readyz"} {
					if code, _ := get(t, ts, p); code != 200 {
						t.Errorf("%s returned %d under load", p, code)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
