package remote

import (
	"context"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"easytracker/internal/core"
)

const countPy = `total = 0
k = 0
while k < 50:
    k = k + 1
total = 1
`

// startServer runs a server on a loopback listener and returns its address.
func startServer(t *testing.T, opts ...ServerOption) (*Server, string) {
	t.Helper()
	srv := NewServer(opts...)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return srv, ln.Addr().String()
}

// connectPy opens a minipy session with countPy loaded.
func connectPy(t *testing.T, addr string) *Tracker {
	t.Helper()
	tr, err := Connect(addr, "minipy")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	if err := tr.LoadProgram("count.py", core.WithSource(countPy)); err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestServerConcurrentSessions is the scale acceptance test: 50 sessions run
// a watched program to completion at the same time, each seeing its own
// watch hits and exit, with the session gauge returning to zero.
func TestServerConcurrentSessions(t *testing.T) {
	srv, addr := startServer(t)
	const n = 50
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr, err := Connect(addr, "minipy")
			if err != nil {
				errs <- err
				return
			}
			defer tr.Close()
			if err := tr.LoadProgram("count.py", core.WithSource(countPy)); err != nil {
				errs <- err
				return
			}
			if err := tr.Watch("::total"); err != nil {
				errs <- err
				return
			}
			if err := tr.Start(); err != nil {
				errs <- err
				return
			}
			hits := 0
			for {
				if _, done := tr.ExitCode(); done {
					break
				}
				if err := tr.Resume(); err != nil {
					errs <- err
					return
				}
				if tr.PauseReason().Type == core.PauseWatch {
					hits++
				}
			}
			if hits < 1 {
				errs <- errors.New("watchpoint never fired")
				return
			}
			if code, _ := tr.ExitCode(); code != 0 {
				errs <- errors.New("nonzero exit")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// Sessions release their slots when their connections close.
	deadline := time.Now().Add(5 * time.Second)
	for srv.SessionCount() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("session count = %d after all clients closed", srv.SessionCount())
		}
		time.Sleep(10 * time.Millisecond)
	}
	snap := srv.Stats()
	if snap.Counters[core.CtrRemoteSessions] != n {
		t.Errorf("sessions_opened = %d, want %d", snap.Counters[core.CtrRemoteSessions], n)
	}
	if g := snap.Gauges[core.GaugeRemoteSessions]; g.Max != n {
		t.Logf("sessions_active high watermark = %d (n=%d; admission may stagger)", g.Max, n)
	}
}

// TestServerGracefulDrain starts commands on live sessions, then drains:
// every in-flight response must arrive before the connections close.
func TestServerGracefulDrain(t *testing.T) {
	srv, addr := startServer(t)
	const n = 8
	trs := make([]*Tracker, n)
	for i := range trs {
		trs[i] = connectPy(t, addr)
		if err := trs[i].Start(); err != nil {
			t.Fatal(err)
		}
	}

	// Fire one Resume per session concurrently and drain while they run.
	var wg sync.WaitGroup
	resumed := make([]error, n)
	for i, tr := range trs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resumed[i] = tr.Resume()
		}()
	}
	time.Sleep(20 * time.Millisecond) // let the requests reach the executors
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("graceful drain fell back to hard close: %v", err)
	}
	wg.Wait()

	// Zero in-flight responses lost: every Resume must have completed
	// normally (the program runs to exit without pause conditions).
	for i, err := range resumed {
		if err != nil {
			t.Errorf("session %d: in-flight Resume lost to drain: %v", i, err)
			continue
		}
		if code, done := trs[i].ExitCode(); !done || code != 0 {
			t.Errorf("session %d: exit = %d/%v, want 0/true", i, code, done)
		}
	}

	// A drained server refuses new sessions.
	if _, err := Connect(addr, "minipy"); err == nil {
		t.Error("connect after drain succeeded")
	}
}

// TestServerSessionLimit exercises admission control.
func TestServerSessionLimit(t *testing.T) {
	srv, addr := startServer(t, WithMaxSessions(2))
	t1 := connectPy(t, addr)
	_ = connectPy(t, addr)
	if _, err := Connect(addr, "minipy"); err == nil || !strings.Contains(err.Error(), "session limit") {
		t.Fatalf("third connect: err = %v, want session-limit refusal", err)
	}
	if got := srv.Stats().Counters[core.CtrRemoteRefusals]; got != 1 {
		t.Errorf("sessions_refused = %d, want 1", got)
	}
	// Releasing one slot re-admits.
	t1.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		tr, err := Connect(addr, "minipy")
		if err == nil {
			tr.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("slot never released: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServerUnknownKind: a hello for an unregistered backend fails cleanly
// and releases its admission slot.
func TestServerUnknownKind(t *testing.T) {
	srv, addr := startServer(t)
	if _, err := Connect(addr, "no-such-backend"); err == nil ||
		!strings.Contains(err.Error(), "unknown tracker kind") {
		t.Fatalf("err = %v, want unknown-kind", err)
	}
	if n := srv.SessionCount(); n != 0 {
		t.Errorf("session count = %d after failed hello, want 0", n)
	}
}

// TestServerIdleEviction: an idle session is evicted; a busy one is not.
func TestServerIdleEviction(t *testing.T) {
	srv, addr := startServer(t, WithIdleTimeout(100*time.Millisecond))
	tr := connectPy(t, addr)
	if err := tr.Start(); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for srv.SessionCount() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("idle session never evicted")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := srv.Stats().Counters[core.CtrRemoteEvictions]; got != 1 {
		t.Errorf("sessions_evicted = %d, want 1", got)
	}

	// The evicted client reconnects on its next call (the session-loss
	// model below covers the error shape).
	err := tr.Step()
	var te *core.TrackerError
	if !errors.As(err, &te) || te.Recovery != core.RecoveryRestarted {
		t.Fatalf("post-eviction Step: %v, want RecoveryRestarted", err)
	}
}

// TestServerBusySessionNotEvicted: the idle deadline must not fire during a
// long-running command.
func TestServerBusySessionNotEvicted(t *testing.T) {
	_, addr := startServer(t, WithIdleTimeout(50*time.Millisecond))
	tr, err := Connect(addr, "minipy")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	// A program that runs well past the idle timeout under an execution
	// deadline, so Resume is one long in-flight command.
	if err := tr.LoadProgram("spin.py", core.WithSource("n = 0\nwhile True:\n    n = n + 1\n"),
		core.WithExecutionTimeout(300*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Start(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Resume(); err != nil {
		t.Fatalf("busy session was disturbed: %v", err)
	}
	if r := tr.PauseReason(); r.Type != core.PauseInterrupted || r.Detail != "deadline" {
		t.Fatalf("pause = %v, want INTERRUPTED (deadline)", r)
	}
}

// TestServerTenantBudgets: the server's per-session caps bound a client that
// asked for no budgets at all.
func TestServerTenantBudgets(t *testing.T) {
	_, addr := startServer(t, WithSessionBudgets(core.Budgets{MaxSteps: 500}))
	tr, err := Connect(addr, "minipy")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if err := tr.LoadProgram("spin.py", core.WithSource("n = 0\nwhile True:\n    n = n + 1\n")); err != nil {
		t.Fatal(err)
	}
	if err := tr.Start(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Resume(); err != nil {
		t.Fatal(err)
	}
	if r := tr.PauseReason(); r.Type != core.PauseInterrupted || r.Detail != "step-budget" {
		t.Fatalf("pause = %v, want INTERRUPTED (step-budget)", r)
	}
}

// TestServerStdoutDelta: inferior output crosses the wire and lands in the
// client's writer.
func TestServerStdoutDelta(t *testing.T) {
	_, addr := startServer(t)
	tr, err := Connect(addr, "minipy")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	var out strings.Builder
	if err := tr.LoadProgram("hello.py",
		core.WithSource("print(\"hello from the server\")\n"),
		core.WithStdout(&out)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Start(); err != nil {
		t.Fatal(err)
	}
	for {
		if _, done := tr.ExitCode(); done {
			break
		}
		if err := tr.Resume(); err != nil {
			t.Fatal(err)
		}
	}
	if got := out.String(); !strings.Contains(got, "hello from the server") {
		t.Errorf("client stdout = %q, want the inferior's output", got)
	}
}
