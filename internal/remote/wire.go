// Package remote is the network layer of the tracker library: a stdlib-only
// wire protocol (length-prefixed JSON frames over any net.Conn) with two
// halves. The Server (server.go, cmd/et-serve) hosts many concurrent tracker
// sessions — MiniPy, MiniGDB and trace-replay backends — behind a session
// manager with admission limits, per-session resource budgets, idle
// eviction and graceful drain. The client Tracker (client.go) implements
// the full core.Tracker interface plus the capability surfaces over that
// protocol, so every tool written against the library drives a remote
// inferior unchanged.
//
// The split follows Langevine & Ducassé's tracer-driver architecture: the
// tracer (the tracker session, next to the inferior) and the analysis
// program (the tool) are separate processes connected by a socket, with the
// synchronous request/response discipline the Tracker contract already
// imposes. Errors cross the wire through core's error codec, so
// errors.Is(err, easytracker.ErrCommandTimeout) and friends hold
// identically for local and remote trackers.
package remote

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// MaxFrame bounds one wire frame (the 4-byte length prefix counts only the
// payload). Full State snapshots of heap-heavy inferiors are the largest
// unit shipped; 64 MiB leaves room without letting a corrupt length prefix
// allocate unbounded memory.
const MaxFrame = 64 << 20

// ErrFrameTooLarge reports a length prefix beyond MaxFrame — protocol
// corruption or a hostile peer; the connection is unusable afterwards.
var ErrFrameTooLarge = errors.New("remote: frame exceeds size limit")

// WriteFrame marshals v and writes it as one length-prefixed frame.
func WriteFrame(w io.Writer, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("remote: encoding frame: %w", err)
	}
	if len(payload) > MaxFrame {
		return ErrFrameTooLarge
	}
	buf := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(buf, uint32(len(payload)))
	copy(buf[4:], payload)
	_, err = w.Write(buf)
	return err
}

// ReadFrame reads one length-prefixed frame payload. The length is bounds-
// checked before any payload allocation, so a corrupt prefix cannot balloon
// memory. io.EOF is returned untouched on a clean end-of-stream boundary;
// a stream cut mid-frame yields io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return payload, nil
}
