// Package remote is the network layer of the tracker library: a stdlib-only
// wire protocol (length-prefixed JSON frames over any net.Conn) with two
// halves. The Server (server.go, cmd/et-serve) hosts many concurrent tracker
// sessions — MiniPy, MiniGDB and trace-replay backends — behind a session
// manager with admission limits, per-session resource budgets, idle
// eviction and graceful drain. The client Tracker (client.go) implements
// the full core.Tracker interface plus the capability surfaces over that
// protocol, so every tool written against the library drives a remote
// inferior unchanged.
//
// The split follows Langevine & Ducassé's tracer-driver architecture: the
// tracer (the tracker session, next to the inferior) and the analysis
// program (the tool) are separate processes connected by a socket, with the
// synchronous request/response discipline the Tracker contract already
// imposes. Errors cross the wire through core's error codec, so
// errors.Is(err, easytracker.ErrCommandTimeout) and friends hold
// identically for local and remote trackers.
package remote

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// MaxFrame bounds one wire frame (the 4-byte length prefix counts only the
// payload). Full State snapshots of heap-heavy inferiors are the largest
// unit shipped; 64 MiB leaves room without letting a corrupt length prefix
// allocate unbounded memory.
const MaxFrame = 64 << 20

// ErrFrameTooLarge reports a length prefix beyond MaxFrame — protocol
// corruption or a hostile peer; the connection is unusable afterwards.
var ErrFrameTooLarge = errors.New("remote: frame exceeds size limit")

// DecodeError is the typed failure of a frame decode: where in the frame
// the stream went bad and what the length prefix promised. It wraps the
// underlying cause (ErrFrameTooLarge for a hostile prefix,
// io.ErrUnexpectedEOF for a stream cut mid-frame — the torn-frame
// signature), so errors.Is keeps working; the client surfaces it inside
// TrackerError.Err, where errors.As(&DecodeError{}) tells a corrupt frame
// apart from an ordinary hangup.
type DecodeError struct {
	// Offset is how many bytes of the frame (prefix included) arrived
	// before the failure.
	Offset int
	// Len is the payload length the prefix promised; -1 when the stream
	// died inside the prefix itself.
	Len int
	// Err is the underlying cause.
	Err error
}

// Error implements error.
func (e *DecodeError) Error() string {
	if e.Len < 0 {
		return fmt.Sprintf("remote: frame torn in length prefix after %d bytes: %v", e.Offset, e.Err)
	}
	return fmt.Sprintf("remote: frame decode failed at offset %d (payload length %d): %v", e.Offset, e.Len, e.Err)
}

// Unwrap exposes the cause to errors.Is / errors.As.
func (e *DecodeError) Unwrap() error { return e.Err }

// WriteFrame marshals v and writes it as one length-prefixed frame.
func WriteFrame(w io.Writer, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("remote: encoding frame: %w", err)
	}
	if len(payload) > MaxFrame {
		return ErrFrameTooLarge
	}
	buf := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(buf, uint32(len(payload)))
	copy(buf[4:], payload)
	_, err = w.Write(buf)
	return err
}

// ReadFrame reads one length-prefixed frame payload. The length is bounds-
// checked before any payload allocation, so a corrupt prefix cannot balloon
// memory. io.EOF is returned untouched on a clean end-of-stream boundary;
// a stream cut mid-frame yields io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if m, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			// Torn mid-length-prefix: 1–3 bytes of header arrived.
			return nil, &DecodeError{Offset: m, Len: -1, Err: io.ErrUnexpectedEOF}
		}
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, &DecodeError{Offset: 4, Len: int(n), Err: ErrFrameTooLarge}
	}
	payload := make([]byte, n)
	if m, err := io.ReadFull(r, payload); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			// Torn mid-payload: the prefix promised n bytes, fewer came.
			return nil, &DecodeError{Offset: 4 + m, Len: int(n), Err: io.ErrUnexpectedEOF}
		}
		return nil, err
	}
	return payload, nil
}

// Trace-context framing (wire tracing version 1).
//
// The v0 frame payload is bare JSON. When both peers negotiated tracing
// version >= 1 in the hello exchange (the TraceV field — hello frames
// themselves are always v0, which is what makes the negotiation backward
// compatible: old peers omit the field, JSON ignores it, negotiated version
// stays 0 and nothing changes on the wire), every subsequent payload is
//
//	[1 flags byte][16-byte trace context when flags&flagTraceContext][JSON]
//
// so a request can carry the client span that caused it without touching
// the JSON schema, and a peer that has nothing to propagate pays one byte.

const (
	// flagTraceContext marks a payload carrying a 16-byte trace context
	// (big-endian trace id, then span id) between the flags byte and the
	// JSON body.
	flagTraceContext = 0x01
	// knownFlags is the set of assigned flag bits; the rest must be zero —
	// rejecting them now is what lets a future version assign meaning to
	// them without silently misparsing against old peers.
	knownFlags = flagTraceContext

	// traceCtxSize is the encoded size of one TraceContext.
	traceCtxSize = 16
)

// TraceContext is the span identity a frame can carry across the wire: the
// sender's in-flight span, which the receiver adopts as the parent of the
// work the frame causes.
type TraceContext struct {
	TraceID uint64
	SpanID  uint64
}

// WriteFrameV writes one frame under the negotiated tracing version: v0 is
// WriteFrame; v1 prefixes the flags byte and the optional trace context (tc
// nil or zero means "none").
func WriteFrameV(w io.Writer, v any, tracev int, tc *TraceContext) error {
	if tracev < 1 {
		return WriteFrame(w, v)
	}
	body, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("remote: encoding frame: %w", err)
	}
	withCtx := tc != nil && (tc.TraceID != 0 || tc.SpanID != 0)
	n := 1 + len(body)
	if withCtx {
		n += traceCtxSize
	}
	if n > MaxFrame {
		return ErrFrameTooLarge
	}
	buf := make([]byte, 4+n)
	binary.BigEndian.PutUint32(buf, uint32(n))
	p := buf[4:]
	if withCtx {
		p[0] = flagTraceContext
		binary.BigEndian.PutUint64(p[1:], tc.TraceID)
		binary.BigEndian.PutUint64(p[9:], tc.SpanID)
		p = p[1+traceCtxSize:]
	} else {
		p[0] = 0
		p = p[1:]
	}
	copy(p, body)
	_, err = w.Write(buf)
	return err
}

// ParsePayload splits one frame payload read by ReadFrame into its optional
// trace context and the JSON body, under the negotiated tracing version: v0
// payloads are bare JSON (nil context). The returned body aliases payload.
func ParsePayload(payload []byte, tracev int) (*TraceContext, []byte, error) {
	if tracev < 1 {
		return nil, payload, nil
	}
	if len(payload) < 1 {
		return nil, nil, fmt.Errorf("remote: empty v1 frame payload")
	}
	flags := payload[0]
	if flags&^byte(knownFlags) != 0 {
		return nil, nil, fmt.Errorf("remote: unknown frame flags %#x", flags)
	}
	body := payload[1:]
	if flags&flagTraceContext == 0 {
		return nil, body, nil
	}
	if len(body) < traceCtxSize {
		return nil, nil, fmt.Errorf("remote: truncated trace context (%d bytes)", len(body))
	}
	tc := &TraceContext{
		TraceID: binary.BigEndian.Uint64(body[:8]),
		SpanID:  binary.BigEndian.Uint64(body[8:16]),
	}
	return tc, body[traceCtxSize:], nil
}
