package remote

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"

	"easytracker/internal/obs"
	"easytracker/internal/spanexport"
)

// Draining reports whether the server has begun shutting down (Shutdown or
// Close was called). The /readyz endpoint flips on this, so a load balancer
// stops routing new sessions while in-flight ones finish.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining || s.closed
}

// TelemetryHandler returns the server's live telemetry surface on a fresh
// mux, ready to mount on an operator-facing HTTP listener (et-serve -http):
//
//	/metrics      Prometheus text exposition of the server's instrument panel
//	/healthz      liveness: 200 while the process serves requests at all
//	/readyz       readiness: 200 while accepting sessions, 503 once draining
//	/sessions     JSON array of live sessions (id, kind, tenant, pause state,
//	              frame counters, in-flight commands)
//	/spans        span dump (spanexport JSON; ?chrome=1 renders the Chrome
//	              trace-event document directly)
//	/debug/pprof  the runtime profiler
//
// The handler holds no state of its own — every request reads the server's
// live structures — so it is safe to serve concurrently with session
// traffic and during drain.
func (s *Server) TelemetryHandler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		snap := s.Stats()
		fillServerGauges(snap, s)
		obs.WritePrometheus(w, snap)
	})

	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})

	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s.Draining() {
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte("draining\n"))
			return
		}
		w.Write([]byte("ready\n"))
	})

	mux.HandleFunc("/sessions", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		writeJSON(w, s.SessionsInfo())
	})

	mux.HandleFunc("/spans", func(w http.ResponseWriter, r *http.Request) {
		dump := &spanexport.Dump{Proc: "et-serve", Spans: s.Spans()}
		if r.URL.Query().Get("chrome") != "" {
			w.Header().Set("Content-Type", "application/json")
			spanexport.WriteChromeTrace(w, dump)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		writeJSON(w, dump)
	})

	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	return mux
}

// fillServerGauges stamps point-in-time server state that lives outside the
// instrument panel into the snapshot before rendering.
func fillServerGauges(snap *obs.Snapshot, s *Server) {
	if snap.Gauges == nil {
		snap.Gauges = map[string]obs.GaugeStats{}
	}
	n := int64(s.SessionCount())
	g := snap.Gauges["sessions_live"]
	g.Value = n
	if n > g.Max {
		g.Max = n
	}
	snap.Gauges["sessions_live"] = g
	var d int64
	if s.Draining() {
		d = 1
	}
	snap.Gauges["draining"] = obs.GaugeStats{Value: d, Max: 1}
}

func writeJSON(w http.ResponseWriter, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
