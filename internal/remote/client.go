package remote

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"easytracker/internal/core"
	"easytracker/internal/obs"
	"easytracker/internal/query"
)

// wireConn is one client connection with request/response demultiplexing:
// frames are written under a mutex, a reader goroutine routes responses to
// their waiting callers by ID. That lets Interrupt (and heartbeats) travel
// while a control command's response is still outstanding.
type wireConn struct {
	nc     net.Conn
	wmu    sync.Mutex
	nextID atomic.Uint64

	// tracev is the negotiated trace-context framing version; atomic because
	// dial stores it after the hello exchange while the read loop is already
	// parsing frames.
	tracev atomic.Int32

	// lastRecv is the unix-nano time of the last frame received — any frame,
	// including ping acks. The heartbeat watchdog reads it to notice a server
	// that went silent while a Resume response is outstanding.
	lastRecv atomic.Int64

	pmu       sync.Mutex
	pending   map[uint64]chan *Response
	dead      error // set once the read loop exits; guarded by pmu
	failCause error // local diagnosis injected before closing; guarded by pmu
	done      chan struct{}
}

func dialWire(dial func(addr string) (net.Conn, error), addr string) (*wireConn, error) {
	nc, err := dial(addr)
	if err != nil {
		return nil, err
	}
	c := &wireConn{
		nc:      nc,
		pending: map[uint64]chan *Response{},
		done:    make(chan struct{}),
	}
	c.lastRecv.Store(time.Now().UnixNano())
	go c.readLoop()
	return c, nil
}

func (c *wireConn) readLoop() {
	var err error
	for {
		var payload []byte
		payload, err = ReadFrame(c.nc)
		if err != nil {
			break
		}
		c.lastRecv.Store(time.Now().UnixNano())
		// The response's trace context (the server's executor span) is not
		// needed client-side — the client's own call span already brackets
		// the round trip — but the framing must still be consumed.
		_, body, perr := ParsePayload(payload, int(c.tracev.Load()))
		if perr != nil {
			err = perr
			break
		}
		var resp Response
		if err = json.Unmarshal(body, &resp); err != nil {
			err = fmt.Errorf("remote: bad response frame: %w", err)
			break
		}
		c.pmu.Lock()
		ch := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.pmu.Unlock()
		if ch == nil {
			// The server answers each request exactly once, so an ID nobody
			// is waiting for means the stream is corrupted (a flipped ID bit
			// leaves the real caller waiting forever while heartbeat acks
			// keep the watchdog quiet). Kill the connection and let the
			// redial policy rebuild it.
			err = fmt.Errorf("remote: unsolicited response id %d (corrupted stream?)", resp.ID)
			break
		}
		ch <- &resp
	}
	c.pmu.Lock()
	if c.failCause != nil {
		// A local watchdog closed the socket; its diagnosis beats the
		// secondary "use of closed connection" the read reported.
		err = c.failCause
	}
	// Double-%w: the dead error satisfies errors.Is(ErrSessionLost) AND
	// keeps the transport cause's type — errors.As still digs out a
	// *DecodeError after the loss crosses markDead and TrackerError.
	c.dead = fmt.Errorf("%w: %w", core.ErrSessionLost, err)
	for id, ch := range c.pending {
		delete(c.pending, id)
		close(ch)
	}
	c.pmu.Unlock()
	close(c.done)
	c.nc.Close()
}

// fail injects a local failure diagnosis and closes the socket, unblocking
// the read loop and every pending caller. First diagnosis wins.
func (c *wireConn) fail(cause error) {
	c.pmu.Lock()
	if c.failCause == nil {
		c.failCause = cause
	}
	c.pmu.Unlock()
	c.nc.Close()
}

// startHeartbeat runs the negotiated client half of the heartbeat contract:
// ping every interval, and declare the server dead — closing the connection
// so a blocked Resume unblocks with a session-lost error — after misses
// consecutive intervals with no frame of any kind from the server.
func (c *wireConn) startHeartbeat(interval time.Duration, misses int) {
	if interval <= 0 {
		return
	}
	if misses < 1 {
		misses = DefaultHeartbeatMisses
	}
	window := interval * time.Duration(misses)
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-c.done:
				return
			case <-tick.C:
				silent := time.Since(time.Unix(0, c.lastRecv.Load()))
				if silent >= window {
					c.fail(fmt.Errorf("remote: server silent for %v (%d missed heartbeats)", silent.Round(time.Millisecond), misses))
					return
				}
				c.post(&Request{Op: OpPing})
			}
		}
	}()
}

// send writes one request frame and registers its response slot. tc is the
// caller's in-flight span, stamped into the frame header when the
// connection negotiated trace-context framing.
func (c *wireConn) send(req *Request, tc *TraceContext) (chan *Response, error) {
	req.ID = c.nextID.Add(1)
	ch := make(chan *Response, 1)
	c.pmu.Lock()
	if c.dead != nil {
		dead := c.dead
		c.pmu.Unlock()
		return nil, dead
	}
	c.pending[req.ID] = ch
	c.pmu.Unlock()

	c.wmu.Lock()
	err := WriteFrameV(c.nc, req, int(c.tracev.Load()), tc)
	c.wmu.Unlock()
	if err != nil {
		c.pmu.Lock()
		delete(c.pending, req.ID)
		dead := c.dead
		c.pmu.Unlock()
		if dead == nil {
			dead = fmt.Errorf("%w: %v", core.ErrSessionLost, err)
		}
		return nil, dead
	}
	return ch, nil
}

// call performs one synchronous round trip.
func (c *wireConn) call(req *Request) (*Response, error) {
	return c.callCtx(req, nil)
}

// callCtx is call with the caller's span stamped into the frame header.
func (c *wireConn) callCtx(req *Request, tc *TraceContext) (*Response, error) {
	ch, err := c.send(req, tc)
	if err != nil {
		return nil, err
	}
	resp, ok := <-ch
	if !ok {
		c.pmu.Lock()
		dead := c.dead
		c.pmu.Unlock()
		return nil, dead
	}
	return resp, nil
}

// callTimeout is call with a deadline: a peer that accepted the socket but
// never answers (a black-holing network, a wedged server) fails the round
// trip instead of blocking forever. On expiry the connection is killed —
// a half-done exchange is not resumable.
func (c *wireConn) callTimeout(req *Request, d time.Duration) (*Response, error) {
	ch, err := c.send(req, nil)
	if err != nil {
		return nil, err
	}
	var expiry <-chan time.Time
	if d > 0 {
		timer := time.NewTimer(d)
		defer timer.Stop()
		expiry = timer.C
	}
	select {
	case resp, ok := <-ch:
		if !ok {
			c.pmu.Lock()
			dead := c.dead
			c.pmu.Unlock()
			return nil, dead
		}
		return resp, nil
	case <-expiry:
		err := fmt.Errorf("remote: no response to %s within %v", req.Op, d)
		c.fail(err)
		return nil, err
	}
}

// post fires a request and consumes its response in the background —
// Interrupt's shape: the frame must go out now, nobody waits for the ack.
func (c *wireConn) post(req *Request) {
	ch, err := c.send(req, nil)
	if err != nil {
		return
	}
	go func() { <-ch }()
}

func (c *wireConn) close() {
	c.nc.Close()
	<-c.done
}

// Tracker drives a tracker session hosted by a remote Server over the wire
// protocol. It implements the full core.Tracker contract plus every
// capability surface, gated through core.CapabilityGate to present exactly
// the backend's capability set. Like every tracker it is driven by one tool
// goroutine; Interrupt alone is safe from any goroutine.
type Tracker struct {
	addr string
	kind string

	// dialer opens the transport; the default dials TCP with the effective
	// dial timeout. Tests and chaos harnesses inject virtual networks here.
	dialer      func(addr string) (net.Conn, error)
	dialTimeout time.Duration

	// connMu guards the conn pointer only, so Interrupt can reach the wire
	// without taking the tracker mutex a blocked control command holds.
	connMu sync.Mutex
	conn   *wireConn

	mu   sync.Mutex
	caps core.CapabilitySet

	// tracer records client-side call spans when span tracing was requested
	// at load time; nil means tracing off (spans become no-ops).
	tracer *obs.Tracer
	// met is the client-side instrument panel (redial counters); nil-safe
	// off until load-time observability enables it.
	met *obs.Metrics

	// Replay journal, mirroring the MiniGDB session layer: everything
	// needed to rebuild the session on the server after a connection loss.
	path       string
	spec       *LoadSpec
	stdout     io.Writer
	stderr     io.Writer
	arms       []armRecord
	loaded     bool
	started    bool
	recoveries int                // outages survived so far
	redial     *core.RedialPolicy // nil means DefaultRedialPolicy
	rng        uint64             // splitmix64 state for backoff jitter
	deadErr    error

	// Status cache, refreshed from every response; PauseReason, ExitCode,
	// Position and LastLine cost no round trips.
	reason   core.PauseReason
	exited   bool
	exitCode int
	file     string
	line     int
	lastLine int

	// ttPos/ttLen mirror the backend's time-travel cursor from the last
	// Status (-1 until a recording is observed). ttPos is part of the
	// journal: after a reconnect, replay re-seeks it so the session comes
	// back inspecting the same recorded step. Cached reads are sound —
	// the cursor only moves under this tracker's own single driver.
	ttPos int
	ttLen int

	stateCache *core.State
	srcCache   []string
}

// armRecord is one journaled arming operation.
type armRecord struct {
	op      string
	file    string
	line    int
	fn      string
	varID   string
	cond    string
	ignore  int
	oneShot bool

	maxDepth int
}

func (a armRecord) String() string {
	s := a.op
	switch a.op {
	case OpBreakLine:
		if a.file != "" {
			s = "breakpoint " + a.file + ":" + strconv.Itoa(a.line)
		} else {
			s = "breakpoint line " + strconv.Itoa(a.line)
		}
	case OpBreakFunc:
		s = "breakpoint func " + a.fn
	case OpTrack:
		s = "track " + a.fn
	case OpWatch:
		s = "watch " + a.varID
	case OpSubscribe:
		return "subscription " + a.cond
	}
	if a.cond != "" {
		s += " when " + a.cond
	}
	return s
}

func (a armRecord) request() *Request {
	return &Request{Op: a.op, File: a.file, Line: a.line, Func: a.fn, Var: a.varID,
		MaxDepth: a.maxDepth, Cond: a.cond, Ignore: a.ignore, OneShot: a.oneShot}
}

// probeRecord projects a core.Probe onto the wire journal.
func probeRecord(p core.Probe) (armRecord, error) {
	a := armRecord{
		file: p.File, line: p.Line, varID: p.VarID,
		cond: p.Condition, ignore: p.IgnoreHits, oneShot: p.OneShot,
		maxDepth: p.MaxDepth,
	}
	switch p.Kind {
	case core.ProbeLine:
		a.op = OpBreakLine
	case core.ProbeFunc:
		a.op, a.fn = OpBreakFunc, p.Function
	case core.ProbeTrack:
		a.op, a.fn = OpTrack, p.Function
	case core.ProbeWatch:
		a.op = OpWatch
	default:
		return a, core.ErrUnsupported
	}
	return a, nil
}

// ConnectOption customizes Connect.
type ConnectOption func(*Tracker)

// WithDialer replaces the transport dialer — the seam a chaos harness or a
// virtual network plugs into. The function receives the address given to
// Connect and must return a connected net.Conn.
func WithDialer(dial func(addr string) (net.Conn, error)) ConnectOption {
	return func(t *Tracker) { t.dialer = dial }
}

// WithDialTimeout bounds each dial plus its hello handshake. It applies to
// the initial Connect and to every redial attempt, overriding the redial
// policy's DialTimeout.
func WithDialTimeout(d time.Duration) ConnectOption {
	return func(t *Tracker) { t.dialTimeout = d }
}

// Connect dials a remote tracker server and opens one session of the given
// backend kind ("minipy", "minigdb", "trace"). The returned Tracker is used
// exactly like a local one; Close releases the connection when the tool is
// done (Terminate alone keeps it open so Stats stays readable).
func Connect(addr, kind string, opts ...ConnectOption) (*Tracker, error) {
	t := &Tracker{addr: addr, kind: kind, rng: uint64(time.Now().UnixNano()) | 1, ttPos: -1}
	for _, o := range opts {
		o(t)
	}
	if t.dialer == nil {
		t.dialer = func(addr string) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, t.effDialTimeout())
		}
	}
	conn, caps, err := t.dial()
	if err != nil {
		return nil, err
	}
	t.conn = conn
	t.caps = caps
	return t, nil
}

// policy resolves the effective redial policy. Callers hold t.mu (or run
// before the tracker is shared).
func (t *Tracker) policy() core.RedialPolicy {
	if t.redial != nil {
		return *t.redial
	}
	return core.DefaultRedialPolicy()
}

// effDialTimeout is the per-attempt dial + hello deadline: the Connect
// option wins, then the redial policy's DialTimeout.
func (t *Tracker) effDialTimeout() time.Duration {
	if t.dialTimeout > 0 {
		return t.dialTimeout
	}
	return t.policy().DialTimeout
}

// randFloat advances the jitter generator (splitmix64). Callers hold t.mu.
func (t *Tracker) randFloat() float64 {
	t.rng += 0x9e3779b97f4a7c15
	z := t.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return float64((z^(z>>31))>>11) / (1 << 53)
}

// dial opens a connection and performs the hello handshake, bounded by the
// effective dial timeout so an attempt into a black-holing network fails
// instead of eating the whole redial budget.
func (t *Tracker) dial() (*wireConn, core.CapabilitySet, error) {
	conn, err := dialWire(t.dialer, t.addr)
	if err != nil {
		return nil, core.CapabilitySet{}, fmt.Errorf("remote: connect %s: %w", t.addr, err)
	}
	resp, err := conn.callTimeout(&Request{Op: OpHello, Kind: t.kind, TraceV: TraceVersion, HB: true}, t.effDialTimeout())
	if err != nil {
		conn.close()
		return nil, core.CapabilitySet{}, err
	}
	if resp.Err != nil {
		conn.close()
		return nil, core.CapabilitySet{}, resp.Err.DecodeError()
	}
	// Adopt the negotiated trace framing version, clamped to what this build
	// speaks in case the server mis-advertises. Stored after the hello round
	// trip completed, so no earlier frame used it.
	tracev := resp.TraceV
	if tracev > TraceVersion {
		tracev = TraceVersion
	}
	conn.tracev.Store(int32(tracev))
	// A server configured for heartbeats told us to beat; hold up our half.
	conn.startHeartbeat(time.Duration(resp.HBNs), resp.HBMiss)
	var caps core.CapabilitySet
	if resp.Caps != nil {
		caps = *resp.Caps
	}
	return conn, caps, nil
}

// Close releases the connection. The remote session (and its inferior, if
// still alive) is torn down by the server.
func (t *Tracker) Close() error {
	t.connMu.Lock()
	conn := t.conn
	t.conn = nil
	t.connMu.Unlock()
	if conn != nil {
		conn.close()
	}
	return nil
}

// Kind returns the backend tracker kind this session drives.
func (t *Tracker) Kind() string { return t.kind }

// Capabilities returns the backend's capability set as advertised in the
// connection handshake.
func (t *Tracker) Capabilities() core.CapabilitySet {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.caps
}

// SupportsCapability implements core.CapabilityGate: the proxy's concrete
// type has every extension method, but it only truly provides what its
// backend advertised in the handshake.
func (t *Tracker) SupportsCapability(ptr any) bool {
	t.mu.Lock()
	caps := t.caps
	t.mu.Unlock()
	switch ptr.(type) {
	case *core.RegisterInspector:
		return caps.Registers
	case *core.MemoryInspector:
		return caps.Memory
	case *core.HeapInspector:
		return caps.Heap
	case *core.StateProvider:
		return caps.State
	case *core.StatsProvider:
		return caps.Stats
	case *core.Interrupter:
		return caps.Interrupt
	case *core.ConditionalBreaker:
		return caps.ConditionalBreak
	case *core.SpanProvider:
		return caps.Spans
	case *core.TimeTraveler:
		return caps.TimeTravel
	case *core.ReverseWatcher:
		return caps.ReverseWatch
	default:
		return true
	}
}

// do performs one round trip, refreshing the status cache from the
// response. Transport loss funnels into recover (one reconnect-and-replay
// attempt); server-side errors come back decoded with their errors.Is
// identity intact. Callers hold t.mu.
func (t *Tracker) do(op string, req *Request) (*Response, error) {
	if t.deadErr != nil {
		return nil, t.sessionDead(op)
	}
	t.connMu.Lock()
	conn := t.conn
	t.connMu.Unlock()
	if conn == nil {
		return nil, core.WrapErr("remote", op, t.file, t.line, errors.New("remote: tracker is closed"))
	}
	sp := t.tracer.Start(core.SpanCallPrefix + req.Op)
	var tc *TraceContext
	if ctx := sp.Context(); ctx.Valid() {
		tc = &TraceContext{TraceID: ctx.TraceID, SpanID: ctx.SpanID}
	}
	resp, err := conn.callCtx(req, tc)
	sp.EndErr(err)
	if err != nil {
		return nil, t.recover(op, err)
	}
	if resp.Status != nil {
		t.applyStatus(resp.Status)
	}
	if resp.Caps != nil {
		// Load responses carry a re-probed capability set: some
		// capabilities are load-dependent (TimeTravel follows
		// WithRecording), so the hello-time set gets refined here.
		t.caps = *resp.Caps
	}
	if resp.Err != nil {
		return resp, resp.Err.DecodeError()
	}
	return resp, nil
}

func (t *Tracker) applyStatus(st *Status) {
	if len(st.Reason) > 0 {
		if r, err := core.DecodePauseReasonJSON(st.Reason); err == nil {
			t.reason = r
		}
	}
	t.exited, t.exitCode = st.Exited, st.ExitCode
	t.file, t.line = st.File, st.Line
	t.lastLine = st.LastLine
	if st.TTPos > 0 {
		t.ttPos, t.ttLen = st.TTPos-1, st.TTLen
	}
	if st.Stdout != "" && t.stdout != nil {
		io.WriteString(t.stdout, st.Stdout)
	}
	if st.Stderr != "" && t.stderr != nil {
		io.WriteString(t.stderr, st.Stderr)
	}
}

// recover is the connection-loss path: the policy-driven redial loop that
// replaced the old one-shot reconnect. Each outage gets up to
// MaxAttempts dials under capped exponential backoff with jitter, bounded
// by the policy's wall-clock budget; a retry-after hint from the server
// (busy/draining refusals) overrides the computed backoff. On success the
// session lives again — paused at its entry point, journal replayed,
// execution progress lost — and the failing call returns a
// RecoveryRestarted error. Exhausting the policy (attempts, budget, or the
// per-session MaxRecoveries outage cap) retires the tracker. Callers hold
// t.mu.
func (t *Tracker) recover(op string, cause error) error {
	pol := t.policy()
	if t.recoveries >= pol.MaxRecoveries {
		return t.markDead(op, cause, nil)
	}
	t.recoveries++

	t.connMu.Lock()
	old := t.conn
	t.conn = nil
	t.connMu.Unlock()
	if old != nil {
		old.close()
	}

	var deadline time.Time
	if pol.Budget > 0 {
		deadline = time.Now().Add(pol.Budget)
	}
	lastErr := cause
	for attempt := 0; attempt < pol.MaxAttempts; attempt++ {
		delay := pol.Delay(attempt, t.randFloat())
		if hint := core.RetryAfterHint(lastErr); hint > 0 {
			// The server said when to come back; believe it, within the cap.
			if hint > pol.MaxDelay {
				hint = pol.MaxDelay
			}
			delay = hint
		}
		if delay > 0 {
			if !deadline.IsZero() && time.Now().Add(delay).After(deadline) {
				break // the wait alone would blow the budget
			}
			time.Sleep(delay)
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			break
		}
		t.met.Counter(core.CtrRemoteRedials).Inc()
		sp := t.tracer.Start("remote.redial")
		conn, caps, err := t.dial()
		if err != nil {
			sp.EndErr(err)
			lastErr = err
			continue
		}
		// Hello caps first; replay's load response refines them (load-
		// dependent capabilities like TimeTravel).
		t.caps = caps
		lost, rerr, permanent := t.replay(conn)
		sp.EndErr(rerr)
		if rerr != nil {
			conn.close()
			if permanent {
				// The server answered and rejected the journal — more
				// dialing cannot fix that.
				return t.markDead(op, cause, rerr)
			}
			lastErr = rerr
			continue
		}
		t.connMu.Lock()
		t.conn = conn
		t.connMu.Unlock()
		t.stateCache = nil
		return &core.TrackerError{
			Op:       op,
			Kind:     "remote[" + t.kind + "]",
			File:     t.file,
			Line:     t.line,
			Recovery: core.RecoveryRestarted,
			Lost:     lost,
			Err:      cause,
		}
	}
	t.met.Counter(core.CtrRemoteRedialGiveups).Inc()
	return t.markDead(op, cause, lastErr)
}

// replay rebuilds the session on a fresh connection from the journal:
// load, start (if the old session had started) and every arming op. Arms
// the server rejects are reported as lost, not fatal — the paper's
// lost-item model. permanent distinguishes a server that answered and
// rejected the journal (no point redialing) from a transport failure
// mid-replay (the next attempt may succeed).
func (t *Tracker) replay(conn *wireConn) (lost []string, err error, permanent bool) {
	if !t.loaded {
		return nil, nil, false
	}
	// Capture the journaled replay position now: the OpStart status below
	// reports the fresh session at entry and would overwrite it.
	seekPos := t.ttPos
	resp, err := conn.call(&Request{Op: OpLoad, Path: t.path, Load: t.spec})
	if err != nil {
		return nil, err, false
	}
	if resp.Err != nil {
		return nil, resp.Err.DecodeError(), true
	}
	if resp.Caps != nil {
		t.caps = *resp.Caps
	}
	if t.started {
		resp, err := conn.call(&Request{Op: OpStart})
		if err != nil {
			return nil, err, false
		}
		if resp.Err != nil {
			return nil, resp.Err.DecodeError(), true
		}
		if resp.Status != nil {
			t.applyStatus(resp.Status)
		}
	}
	for _, a := range t.arms {
		resp, err := conn.call(a.request())
		if err != nil {
			return nil, err, false
		}
		if resp.Err != nil {
			lost = append(lost, a.String())
		}
	}
	// The session was inspecting a recorded step: seek the rebuilt session
	// back to it. A rejection (a live inferior restarted from entry has a
	// near-empty recording) is a lost item, not a replay failure — only a
	// deterministic trace-backed session can guarantee the position exists.
	if seekPos >= 0 {
		resp, err := conn.call(&Request{Op: OpSeek, Step: seekPos})
		if err != nil {
			return lost, err, false
		}
		if resp.Err != nil {
			lost = append(lost, "seek position "+strconv.Itoa(seekPos))
		} else if resp.Status != nil {
			t.applyStatus(resp.Status)
		}
	}
	return lost, nil, false
}

// markDead retires the tracker after the redial policy was exhausted (or
// its recovery budget was already spent). Every later call returns the
// session-lost error; errors.Is(err, core.ErrSessionLost) always holds.
func (t *Tracker) markDead(op string, cause error, detail error) error {
	if detail != nil && !errors.Is(cause, detail) {
		cause = fmt.Errorf("%w (last redial: %v)", cause, detail)
	}
	if !errors.Is(cause, core.ErrSessionLost) {
		cause = fmt.Errorf("%w: %w", core.ErrSessionLost, cause)
	}
	t.deadErr = cause
	t.exited, t.exitCode = true, -1
	t.reason = core.PauseReason{Type: core.PauseExited, ExitCode: -1}
	t.connMu.Lock()
	conn := t.conn
	t.conn = nil
	t.connMu.Unlock()
	if conn != nil {
		conn.close()
	}
	return &core.TrackerError{
		Op:       op,
		Kind:     "remote[" + t.kind + "]",
		File:     t.file,
		Line:     t.line,
		Recovery: core.RecoveryFailed,
		Err:      cause,
	}
}

func (t *Tracker) sessionDead(op string) error {
	return &core.TrackerError{
		Op:       op,
		Kind:     "remote[" + t.kind + "]",
		File:     t.file,
		Line:     t.line,
		Recovery: core.RecoveryFailed,
		Err:      t.deadErr,
	}
}

// LoadProgram implements core.Tracker. The client's filesystem is
// authoritative: when the file is readable locally its text ships in the
// load spec, so server and client need not share a disk. Stdin is read in
// full and shipped; stdout/stderr writers stay local and receive the
// server's output deltas.
func (t *Tracker) LoadProgram(path string, opts ...core.LoadOption) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.loaded {
		return core.WrapErr("remote", "LoadProgram", t.file, t.line,
			errors.New("remote: program already loaded"))
	}
	cfg := core.ApplyLoadOptions(opts)
	if sink := cfg.Obs.SpanSink; sink != nil {
		t.tracer = obs.NewTracerOn("remote["+t.kind+"]", sink)
	} else if cfg.Obs.Spans > 0 {
		t.tracer = obs.NewTracer("remote["+t.kind+"]", cfg.Obs.Spans)
	}
	if cfg.Obs.Enabled {
		// Client-side panel: redial counters live here (the server cannot
		// count attempts that never reach it).
		t.met = obs.New(obs.Config{Enabled: true, Events: cfg.Obs.Events})
	}
	if cfg.Redial != nil {
		t.redial = cfg.Redial
	}
	spec := specFromConfig(cfg)
	if spec.Source == "" {
		if data, err := os.ReadFile(path); err == nil {
			spec.Source = string(data)
		}
	}
	if cfg.Stdin != nil {
		data, err := io.ReadAll(cfg.Stdin)
		if err != nil {
			return core.WrapErr("remote", "LoadProgram", "", 0, fmt.Errorf("reading stdin: %w", err))
		}
		spec.Stdin = string(data)
	}
	t.stdout, t.stderr = cfg.Stdout, cfg.Stderr

	_, err := t.do("LoadProgram", &Request{Op: OpLoad, Path: path, Load: spec})
	if err != nil {
		return err
	}
	t.path, t.spec = path, spec
	t.loaded = true
	return nil
}

// control runs one execution-resuming (or terminate) op.
func (t *Tracker) control(op, wireOp string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stateCache = nil
	_, err := t.do(op, &Request{Op: wireOp})
	return err
}

// Start implements core.Tracker.
func (t *Tracker) Start() error {
	err := t.control("Start", OpStart)
	if err == nil {
		t.mu.Lock()
		t.started = true
		t.mu.Unlock()
	}
	return err
}

// Resume implements core.Tracker.
func (t *Tracker) Resume() error { return t.control("Resume", OpResume) }

// Step implements core.Tracker.
func (t *Tracker) Step() error { return t.control("Step", OpStep) }

// Next implements core.Tracker.
func (t *Tracker) Next() error { return t.control("Next", OpNext) }

// Terminate implements core.Tracker. The connection stays open so Stats and
// the status cache remain readable; Close releases it.
func (t *Tracker) Terminate() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.deadErr != nil {
		return nil // retired sessions terminate trivially
	}
	t.stateCache = nil
	_, err := t.do("Terminate", &Request{Op: OpTerminate})
	var te *core.TrackerError
	if errors.As(err, &te) && te.Recovery != core.RecoveryNone {
		// Reconnect-and-replay makes no sense for Terminate: the
		// connection loss already killed the remote session.
		return nil
	}
	return err
}

// arm runs one journaled arming op.
func (t *Tracker) arm(op string, a armRecord) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, err := t.do(op, a.request())
	if err == nil {
		t.arms = append(t.arms, a)
	}
	return err
}

// Arm implements core.Tracker: one journaled round trip per probe. A
// condition is validated client-side first so a bad expression fails with a
// typed ErrBadQuery before anything crosses the socket; the backend
// compiles its own copy at arm time.
func (t *Tracker) Arm(p core.Probe) error {
	op := p.Op()
	if p.Condition != "" {
		if _, err := query.Compile(p.Condition); err != nil {
			return core.WrapErr("remote["+t.kind+"]", op, "", 0, err)
		}
	}
	a, err := probeRecord(p)
	if err != nil {
		return core.WrapErr("remote["+t.kind+"]", op, "", 0, err)
	}
	return t.arm(op, a)
}

// ConditionalProbes implements core.ConditionalBreaker, true exactly when
// the backend advertised the capability in the handshake.
func (t *Tracker) ConditionalProbes() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.caps.ConditionalBreak
}

// Subscribe installs a server-side pause filter: while the subscription is
// active, Resume loops on the server until a pause matches expr (or the
// inferior exits, or supervision interrupts), so non-matching pauses never
// cross the socket. An empty expr clears the subscription. The subscription
// is journaled and survives reconnect-and-replay.
func (t *Tracker) Subscribe(expr string) error {
	if expr != "" {
		if _, err := query.Compile(expr); err != nil {
			return core.WrapErr("remote["+t.kind+"]", "Subscribe", "", 0, err)
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	_, err := t.do("Subscribe", &Request{Op: OpSubscribe, Cond: expr})
	if err == nil {
		// A new expression replaces any journaled predecessor; clearing
		// drops it.
		kept := t.arms[:0]
		for _, a := range t.arms {
			if a.op != OpSubscribe {
				kept = append(kept, a)
			}
		}
		t.arms = kept
		if expr != "" {
			t.arms = append(t.arms, armRecord{op: OpSubscribe, cond: expr})
		}
	}
	return err
}

// BreakBeforeLine implements core.Tracker.
func (t *Tracker) BreakBeforeLine(file string, line int, opts ...core.BreakOption) error {
	return t.Arm(core.LineProbe(file, line, opts...))
}

// BreakBeforeFunc implements core.Tracker.
func (t *Tracker) BreakBeforeFunc(name string, opts ...core.BreakOption) error {
	return t.Arm(core.FuncProbe(name, opts...))
}

// TrackFunction implements core.Tracker.
func (t *Tracker) TrackFunction(name string, opts ...core.BreakOption) error {
	return t.Arm(core.TrackProbe(name, opts...))
}

// Watch implements core.Tracker.
func (t *Tracker) Watch(varID string, opts ...core.BreakOption) error {
	return t.Arm(core.WatchProbe(varID, opts...))
}

// ttControl runs one reverse-navigation op. Like forward control ops it
// invalidates the state cache — the replay cursor moved, so the next
// inspection must refetch; the landing position rides back in the Status.
func (t *Tracker) ttControl(op, wireOp string, step int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stateCache = nil
	_, err := t.do(op, &Request{Op: wireOp, Step: step})
	return err
}

// StepBack implements core.TimeTraveler (gated on the backend's capability).
func (t *Tracker) StepBack() error { return t.ttControl("StepBack", OpStepBack, 0) }

// ResumeBack implements core.TimeTraveler (gated).
func (t *Tracker) ResumeBack() error { return t.ttControl("ResumeBack", OpResumeBack, 0) }

// NextBack implements core.TimeTraveler (gated).
func (t *Tracker) NextBack() error { return t.ttControl("NextBack", OpNextBack, 0) }

// SeekTo implements core.TimeTraveler (gated).
func (t *Tracker) SeekTo(step int) error { return t.ttControl("SeekTo", OpSeek, step) }

// Pos implements core.TimeTraveler from the status cache: every response on
// a recording session reports the cursor, and it cannot move between
// responses (single driver), so no round trip is needed.
func (t *Tracker) Pos() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.ttPos < 0 {
		return 0
	}
	return t.ttPos
}

// Len implements core.TimeTraveler from the status cache.
func (t *Tracker) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.ttLen
}

// LastChange implements core.ReverseWatcher (gated): the reverse watchpoint
// query is answered server-side from the recording's delta index.
func (t *Tracker) LastChange(expr string) (*core.VarChange, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	resp, err := t.do("LastChange", &Request{Op: OpLastChange, Var: expr})
	if err != nil {
		return nil, err
	}
	return resp.Change, nil
}

// PauseReason implements core.Tracker from the status cache.
func (t *Tracker) PauseReason() core.PauseReason {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.reason
}

// ExitCode implements core.Tracker from the status cache.
func (t *Tracker) ExitCode() (int, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.exitCode, t.exited
}

// Position implements core.Tracker from the status cache.
func (t *Tracker) Position() (string, int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.file, t.line
}

// LastLine implements core.Tracker from the status cache.
func (t *Tracker) LastLine() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lastLine
}

// state fetches (or reuses) the full snapshot for the current pause.
// Callers hold t.mu.
func (t *Tracker) state(op string) (*core.State, error) {
	if t.stateCache != nil {
		return t.stateCache, nil
	}
	resp, err := t.do(op, &Request{Op: OpState})
	if err != nil {
		return nil, err
	}
	var st core.State
	if err := json.Unmarshal(resp.State, &st); err != nil {
		return nil, core.WrapErr("remote", op, t.file, t.line, fmt.Errorf("decoding state: %w", err))
	}
	t.stateCache = &st
	return &st, nil
}

// State implements core.StateProvider (gated on the backend's capability).
func (t *Tracker) State() (*core.State, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state("State")
}

// CurrentFrame implements core.Tracker via the snapshot.
func (t *Tracker) CurrentFrame() (*core.Frame, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	st, err := t.state("CurrentFrame")
	if err != nil {
		return nil, err
	}
	return st.Frame, nil
}

// GlobalVariables implements core.Tracker via the snapshot.
func (t *Tracker) GlobalVariables() ([]*core.Variable, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	st, err := t.state("GlobalVariables")
	if err != nil {
		return nil, err
	}
	return st.Globals, nil
}

// SourceLines implements core.Tracker; the listing is immutable per load,
// so one round trip serves every later call.
func (t *Tracker) SourceLines() ([]string, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.srcCache != nil {
		return t.srcCache, nil
	}
	resp, err := t.do("SourceLines", &Request{Op: OpSource})
	if err != nil {
		return nil, err
	}
	t.srcCache = resp.Lines
	return resp.Lines, nil
}

// Interrupt implements core.Interrupter (gated). It travels out of band:
// the frame goes to the server even while a control command's response is
// outstanding, and the server delivers it to the tracker's sticky interrupt
// flag without waiting for the executor.
func (t *Tracker) Interrupt() {
	t.connMu.Lock()
	conn := t.conn
	t.connMu.Unlock()
	if conn == nil {
		return
	}
	conn.post(&Request{Op: OpInterrupt})
}

// Stats implements core.StatsProvider (gated): the snapshot is the
// server-side backend's instrument panel, fetched over the wire.
func (t *Tracker) Stats() *obs.Snapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	resp, err := t.do("Stats", &Request{Op: OpStats})
	if err != nil {
		return &obs.Snapshot{}
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(resp.Stats, &snap); err != nil {
		return &obs.Snapshot{}
	}
	return &snap
}

// ClientStats returns the client-side instrument snapshot — redial
// attempts and giveups (core.CtrRemoteRedials / CtrRemoteRedialGiveups).
// Distinct from Stats, which fetches the server-side backend's panel; a
// partition is visible only from this side of the wire. Empty unless the
// program was loaded with observability enabled.
func (t *Tracker) ClientStats() *obs.Snapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.met == nil {
		return &obs.Snapshot{}
	}
	snap := t.met.Snapshot()
	snap.Tracker = "remote[" + t.kind + "]"
	return snap
}

// Spans implements core.SpanProvider (gated): the client-side call spans
// recorded by this proxy. The server's half of each trace (rpc.* and
// backend op spans) lives in the server process; et-spans merges the two
// dumps by trace id.
func (t *Tracker) Spans() []obs.SpanRecord {
	return t.tracer.Spans()
}

// SpanTracer exposes the proxy's tracer so embedding tools can hang their
// own spans off the same ring.
func (t *Tracker) SpanTracer() *obs.Tracer { return t.tracer }

// Registers implements core.RegisterInspector (gated).
func (t *Tracker) Registers() (map[string]uint64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	resp, err := t.do("Registers", &Request{Op: OpRegs})
	if err != nil {
		return nil, err
	}
	return resp.Regs, nil
}

// ValueAt implements core.MemoryInspector (gated).
func (t *Tracker) ValueAt(addr uint64, size int) ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	resp, err := t.do("ValueAt", &Request{Op: OpReadMem, Addr: addr, Size: size})
	if err != nil {
		return nil, err
	}
	return resp.Mem, nil
}

// MemorySegments implements core.MemoryInspector (gated).
func (t *Tracker) MemorySegments() []core.Segment {
	t.mu.Lock()
	defer t.mu.Unlock()
	resp, err := t.do("MemorySegments", &Request{Op: OpSegments})
	if err != nil {
		return nil
	}
	return resp.Segs
}

// HeapBlocks implements core.HeapInspector (gated).
func (t *Tracker) HeapBlocks() (map[uint64]uint64, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	resp, err := t.do("HeapBlocks", &Request{Op: OpHeap})
	if err != nil {
		return nil, err
	}
	blocks := make(map[uint64]uint64, len(resp.Heap))
	for k, v := range resp.Heap {
		a, err := strconv.ParseUint(k, 10, 64)
		if err != nil {
			return nil, core.WrapErr("remote", "HeapBlocks", t.file, t.line,
				fmt.Errorf("bad heap address %q: %w", k, err))
		}
		blocks[a] = v
	}
	return blocks, nil
}
