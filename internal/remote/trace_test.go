package remote

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"net"
	"testing"

	"easytracker/internal/core"
	"easytracker/internal/obs"
)

func TestWriteFrameVRoundTrip(t *testing.T) {
	req := &Request{ID: 7, Op: OpResume}

	t.Run("v0 passthrough", func(t *testing.T) {
		var buf bytes.Buffer
		if err := WriteFrameV(&buf, req, 0, &TraceContext{TraceID: 1, SpanID: 2}); err != nil {
			t.Fatal(err)
		}
		payload, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		// v0 never carries the context, even when one is offered.
		tc, body, err := ParsePayload(payload, 0)
		if err != nil || tc != nil {
			t.Fatalf("v0 parse: tc=%v err=%v", tc, err)
		}
		var got Request
		if err := json.Unmarshal(body, &got); err != nil || got.ID != 7 {
			t.Fatalf("v0 body: %v %+v", err, got)
		}
	})

	t.Run("v1 with context", func(t *testing.T) {
		want := &TraceContext{TraceID: 0xdeadbeefcafe, SpanID: 0x1234}
		var buf bytes.Buffer
		if err := WriteFrameV(&buf, req, 1, want); err != nil {
			t.Fatal(err)
		}
		payload, err := ReadFrame(&buf)
		if err != nil {
			t.Fatal(err)
		}
		tc, body, err := ParsePayload(payload, 1)
		if err != nil {
			t.Fatal(err)
		}
		if tc == nil || *tc != *want {
			t.Fatalf("context drifted: %+v", tc)
		}
		var got Request
		if err := json.Unmarshal(body, &got); err != nil || got.Op != OpResume {
			t.Fatalf("v1 body: %v %+v", err, got)
		}
	})

	t.Run("v1 without context", func(t *testing.T) {
		for _, tc := range []*TraceContext{nil, {}} {
			var buf bytes.Buffer
			if err := WriteFrameV(&buf, req, 1, tc); err != nil {
				t.Fatal(err)
			}
			payload, err := ReadFrame(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if payload[0] != 0 {
				t.Fatalf("flags byte = %#x, want 0", payload[0])
			}
			got, body, err := ParsePayload(payload, 1)
			if err != nil || got != nil {
				t.Fatalf("parse: tc=%v err=%v", got, err)
			}
			var r Request
			if err := json.Unmarshal(body, &r); err != nil || r.ID != 7 {
				t.Fatalf("body: %v %+v", err, r)
			}
		}
	})
}

func TestParsePayloadRejects(t *testing.T) {
	cases := []struct {
		name    string
		payload []byte
	}{
		{"empty v1", nil},
		{"unknown flags", []byte{0x80, '{', '}'}},
		{"truncated context", append([]byte{flagTraceContext}, make([]byte, 8)...)},
	}
	for _, c := range cases {
		if _, _, err := ParsePayload(c.payload, 1); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

// TestTraceOldClientNewServer speaks raw v0 (no TraceV in the hello) at a
// current server: the negotiated version must stay 0 and every response must
// come back as bare JSON.
func TestTraceOldClientNewServer(t *testing.T) {
	_, addr := startServer(t)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	call := func(req *Request) *Response {
		t.Helper()
		if err := WriteFrame(nc, req); err != nil {
			t.Fatal(err)
		}
		payload, err := ReadFrame(nc)
		if err != nil {
			t.Fatal(err)
		}
		if len(payload) == 0 || payload[0] != '{' {
			t.Fatalf("response is not bare JSON: %q", payload[:min(8, len(payload))])
		}
		var resp Response
		if err := json.Unmarshal(payload, &resp); err != nil {
			t.Fatal(err)
		}
		return &resp
	}

	hello := call(&Request{ID: 1, Op: OpHello, Kind: "minipy"})
	if hello.Err != nil {
		t.Fatalf("hello: %v", hello.Err)
	}
	if hello.TraceV != 0 {
		t.Fatalf("negotiated tracev = %d against a v0 client, want 0", hello.TraceV)
	}
	load := call(&Request{ID: 2, Op: OpLoad, Path: "count.py", Load: &LoadSpec{Source: countPy}})
	if load.Err != nil {
		t.Fatalf("load over v0 framing: %v", load.Err)
	}
}

// TestTraceNewClientOldServer runs the current client against a stub server
// that predates trace framing: it never sends TraceV and decodes every
// payload as bare JSON, so any v1 framing byte from the client would break
// the decode and fail the test.
func TestTraceNewClientOldServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	errc := make(chan error, 1)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			errc <- err
			return
		}
		defer nc.Close()
		for {
			payload, err := ReadFrame(nc)
			if err != nil {
				errc <- nil // connection closed by client: done
				return
			}
			var req Request
			if err := json.Unmarshal(payload, &req); err != nil {
				errc <- err // v1 framing leaked to an old peer
				return
			}
			resp := &Response{ID: req.ID}
			if req.Op == OpHello {
				resp.Session, resp.Kind = 1, req.Kind
				resp.Caps = &core.CapabilitySet{State: true}
				// No TraceV: an old server has never heard of it.
			} else {
				resp.Status = &Status{}
			}
			if err := WriteFrame(nc, resp); err != nil {
				errc <- err
				return
			}
		}
	}()

	tr, err := Connect(ln.Addr().String(), "minipy")
	if err != nil {
		t.Fatal(err)
	}
	// Span tracing on client-side: spans still record locally, but the wire
	// must stay v0 because the peer never negotiated up.
	if err := tr.LoadProgram("count.py", core.WithSource(countPy),
		core.WithObservability(core.WithSpanTracing(64))); err != nil {
		t.Fatal(err)
	}
	if err := tr.Resume(); err != nil {
		t.Fatal(err)
	}
	tr.Close()
	if err := <-errc; err != nil {
		t.Fatalf("old server failed to decode client frames: %v", err)
	}
	spans := tr.Spans()
	if len(spans) == 0 {
		t.Fatal("client spans missing despite tracing enabled")
	}
}

// TestTraceConformanceLoopback is the end-to-end acceptance test: one client
// Resume produces client, server-executor and backend spans sharing one
// trace id, linked parent to child across the process boundary.
func TestTraceConformanceLoopback(t *testing.T) {
	srv, addr := startServer(t)
	tr, err := Connect(addr, "minipy")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if err := tr.LoadProgram("count.py", core.WithSource(countPy),
		core.WithObservability(core.WithSpanTracing(256))); err != nil {
		t.Fatal(err)
	}
	if err := tr.Start(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Resume(); err != nil {
		t.Fatal(err)
	}

	find := func(spans []obs.SpanRecord, name string) *obs.SpanRecord {
		t.Helper()
		for i := range spans {
			if spans[i].Name == name {
				return &spans[i]
			}
		}
		t.Fatalf("span %q not found in %d spans", name, len(spans))
		return nil
	}

	clientSpans, ok := core.SpansOf(tr)
	if !ok {
		t.Fatal("remote tracker does not expose spans")
	}
	serverSpans := srv.Spans()

	call := find(clientSpans, core.SpanCallPrefix+OpResume)
	rpc := find(serverSpans, core.SpanRPCPrefix+OpResume)
	op := find(serverSpans, core.OpResume)

	if call.TraceID == 0 {
		t.Fatal("client call span has no trace id")
	}
	if rpc.TraceID != call.TraceID {
		t.Fatalf("server rpc span trace %x != client trace %x", rpc.TraceID, call.TraceID)
	}
	if rpc.Parent != call.SpanID {
		t.Fatalf("server rpc span parent %x != client span %x", rpc.Parent, call.SpanID)
	}
	if op.TraceID != call.TraceID {
		t.Fatalf("backend op span trace %x != client trace %x", op.TraceID, call.TraceID)
	}
	if op.Parent != rpc.SpanID {
		t.Fatalf("backend op span parent %x != rpc span %x", op.Parent, rpc.SpanID)
	}
	if call.Proc != "remote[minipy]" || rpc.Proc != "et-serve" || op.Proc != "minipy" {
		t.Fatalf("proc labels drifted: %q %q %q", call.Proc, rpc.Proc, op.Proc)
	}
	// The backend's ambient parent must be reset between requests: the
	// op.start span from the earlier Start call parents onto ITS rpc span,
	// not onto Resume's.
	startOp := find(serverSpans, core.OpStart)
	startRPC := find(serverSpans, core.SpanRPCPrefix+OpStart)
	if startOp.Parent != startRPC.SpanID {
		t.Fatalf("op.start parent %x != rpc.start span %x", startOp.Parent, startRPC.SpanID)
	}
	if startOp.TraceID == op.TraceID {
		t.Fatal("start and resume ended up in one trace; ambient parent leaked")
	}
}

// FuzzTraceContextDecode drives the v1 payload splitter with arbitrary bytes
// and framing versions. Properties: never panics, and every payload it
// accepts survives a re-encode/re-parse round trip bit for bit.
func FuzzTraceContextDecode(f *testing.F) {
	enc := func(tc *TraceContext, body []byte) []byte {
		p := []byte{0}
		if tc != nil {
			p[0] = flagTraceContext
			var ctx [traceCtxSize]byte
			binary.BigEndian.PutUint64(ctx[:8], tc.TraceID)
			binary.BigEndian.PutUint64(ctx[8:], tc.SpanID)
			p = append(p, ctx[:]...)
		}
		return append(p, body...)
	}
	f.Add(enc(&TraceContext{TraceID: 1, SpanID: 2}, []byte(`{"id":1}`)), 1)
	f.Add(enc(nil, []byte(`{"id":2}`)), 1)
	f.Add([]byte(`{"id":3}`), 0)
	f.Add([]byte{0x80, '{', '}'}, 1)
	f.Add([]byte{flagTraceContext, 1, 2, 3}, 1)
	f.Add([]byte{}, 1)

	f.Fuzz(func(t *testing.T, payload []byte, tracev int) {
		tracev &= 1
		tc, body, err := ParsePayload(payload, tracev)
		if err != nil {
			return // rejecting garbage is fine; not panicking is the test
		}
		if tracev == 0 {
			if tc != nil || !bytes.Equal(body, payload) {
				t.Fatalf("v0 must pass payload through untouched")
			}
			return
		}
		re := enc(tc, body)
		tc2, body2, err := ParsePayload(re, tracev)
		if err != nil {
			t.Fatalf("re-parsing accepted payload: %v", err)
		}
		if (tc == nil) != (tc2 == nil) || (tc != nil && *tc != *tc2) {
			t.Fatalf("context drifted: %+v -> %+v", tc, tc2)
		}
		if !bytes.Equal(body, body2) {
			t.Fatalf("body drifted")
		}
	})
}
