// Package vm implements the machine that executes compiled MiniC/assembly
// programs: a byte-addressable memory split into text, data, heap and stack
// segments, a 32-register file, an execution loop with instruction
// breakpoints and data watchpoints, and an ecall interface for I/O and heap
// growth. MiniGDB (internal/dbg) drives this machine the way GDB drives a
// Linux process.
package vm

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strings"
	"sync/atomic"

	"easytracker/internal/isa"
)

// DefaultStackSize is the stack segment size in bytes.
const DefaultStackSize = 1 << 20

// DefaultMaxHeap bounds sbrk growth.
const DefaultMaxHeap = 8 << 20

// StopKind says why execution stopped.
type StopKind int

const (
	// StopStep means the requested number of instructions executed.
	StopStep StopKind = iota
	// StopBreak means an instruction breakpoint was reached (pc is at
	// the breakpoint, instruction not yet executed).
	StopBreak
	// StopWatch means a store modified a watched range (the store has
	// executed; pc is past it).
	StopWatch
	// StopExit means the program called the exit service.
	StopExit
	// StopFault means a machine fault (bad memory, bad pc, division by
	// zero).
	StopFault
	// StopEBreak means an ebreak instruction executed.
	StopEBreak
	// StopInterrupt means the cooperative interrupt flag was raised
	// (Interrupt); pc is at the next unexecuted instruction.
	StopInterrupt
	// StopBudget means the armed instruction budget (SetStepLimit) was
	// exhausted; the budget disarms itself when it trips.
	StopBudget
)

// String names the stop kind.
func (k StopKind) String() string {
	switch k {
	case StopStep:
		return "step"
	case StopBreak:
		return "breakpoint"
	case StopWatch:
		return "watchpoint"
	case StopExit:
		return "exited"
	case StopFault:
		return "fault"
	case StopEBreak:
		return "ebreak"
	case StopInterrupt:
		return "interrupt"
	case StopBudget:
		return "budget"
	}
	return fmt.Sprintf("StopKind(%d)", int(k))
}

// WatchHit reports one triggered watchpoint.
type WatchHit struct {
	ID   int
	Addr uint64
	Size uint64
	// Old and New are the watched range's bytes before and after the
	// store.
	Old, New []byte
	// PC is the address of the store instruction.
	PC uint64
}

// Stop is the result of Run/Step.
type Stop struct {
	Kind StopKind
	// Watch is set for StopWatch.
	Watch *WatchHit
	// Err is set for StopFault.
	Err error
	// ExitCode is set for StopExit.
	ExitCode int
}

type watch struct {
	id   int
	addr uint64
	size uint64
	// version counts stores that overlapped this watched range.
	version uint64
}

// Segment describes one mapped memory region.
type Segment struct {
	Name  string
	Start uint64
	Size  uint64
}

// Machine is one executing program instance.
type Machine struct {
	prog  *isa.Program
	text  []byte
	data  []byte
	heap  []byte
	stack []byte

	regs [isa.NumRegs]uint64
	pc   uint64
	brk  uint64

	stackBase uint64
	maxHeap   uint64

	stdout io.Writer
	stderr io.Writer
	stdin  *bufio.Reader

	breakpoints map[uint64]bool
	watches     []watch
	nextWatchID int

	// dataVersion counts every memory-visible mutation (stores, debugger
	// writes, brk moves, resets). Clients cache inspection snapshots and
	// revalidate them with one cheap version compare instead of a full
	// state transfer; it is monotonic across Reset so stale caches can
	// never validate against a fresh run.
	dataVersion uint64

	exited   bool
	exitCode int
	steps    uint64

	// intr is the cooperative interrupt flag. It is the only machine
	// field touched from outside the executing goroutine: the MI server's
	// reader goroutine (-exec-interrupt) and signal handlers raise it, the
	// run loops consume it.
	intr atomic.Bool
	// stepLimit is the armed total-instruction budget (0 = off); it
	// disarms itself when it trips so the paused program stays resumable.
	stepLimit uint64
}

// Config customizes machine construction.
type Config struct {
	Stdout    io.Writer
	Stderr    io.Writer
	Stdin     io.Reader
	StackSize uint64
	MaxHeap   uint64
}

// New builds a machine for the program and resets it to the entry state.
func New(prog *isa.Program, cfg Config) (*Machine, error) {
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	if cfg.Stdout == nil {
		cfg.Stdout = io.Discard
	}
	if cfg.Stderr == nil {
		cfg.Stderr = io.Discard
	}
	if cfg.Stdin == nil {
		cfg.Stdin = strings.NewReader("")
	}
	if cfg.StackSize == 0 {
		cfg.StackSize = DefaultStackSize
	}
	if cfg.MaxHeap == 0 {
		cfg.MaxHeap = DefaultMaxHeap
	}
	m := &Machine{
		prog:        prog,
		stdout:      cfg.Stdout,
		stderr:      cfg.Stderr,
		stdin:       bufio.NewReader(cfg.Stdin),
		stackBase:   isa.StackTop - cfg.StackSize,
		maxHeap:     cfg.MaxHeap,
		breakpoints: map[uint64]bool{},
	}
	m.text = prog.EncodeText()
	m.data = make([]byte, len(prog.Data))
	copy(m.data, prog.Data)
	m.stack = make([]byte, cfg.StackSize)
	m.Reset()
	return m, nil
}

// Reset restores the entry state (registers, pc, heap, stack; the data
// segment is reloaded from the program image).
func (m *Machine) Reset() {
	m.regs = [isa.NumRegs]uint64{}
	m.regs[isa.SP] = isa.StackTop
	m.regs[isa.FP] = isa.StackTop
	m.pc = m.prog.Entry
	m.brk = isa.HeapBase
	m.heap = m.heap[:0]
	copy(m.data, m.prog.Data)
	for i := len(m.prog.Data); i < len(m.data); i++ {
		m.data[i] = 0
	}
	for i := range m.stack {
		m.stack[i] = 0
	}
	m.exited = false
	m.exitCode = 0
	m.steps = 0
	m.dataVersion++
}

// DataVersion returns the machine's store counter: it advances on every
// memory store, debugger memory write, heap-break move and reset, so an
// unchanged version proves memory (and therefore any memory-derived state
// snapshot) is unchanged.
func (m *Machine) DataVersion() uint64 { return m.dataVersion }

// WatchVersion returns the per-watchpoint store counter: the number of
// stores so far that overlapped the watched range. Unknown ids return 0.
func (m *Machine) WatchVersion(id int) uint64 {
	for i := range m.watches {
		if m.watches[i].id == id {
			return m.watches[i].version
		}
	}
	return 0
}

// Prog returns the loaded program image.
func (m *Machine) Prog() *isa.Program { return m.prog }

// PC returns the program counter.
func (m *Machine) PC() uint64 { return m.pc }

// SetPC sets the program counter.
func (m *Machine) SetPC(pc uint64) { m.pc = pc }

// Reg reads a register.
func (m *Machine) Reg(r isa.Reg) uint64 { return m.regs[r] }

// SetReg writes a register (writes to zero are ignored).
func (m *Machine) SetReg(r isa.Reg, v uint64) {
	if r != isa.Zero {
		m.regs[r] = v
	}
}

// Registers returns a copy of the register file.
func (m *Machine) Registers() [isa.NumRegs]uint64 { return m.regs }

// Exited reports whether the program terminated, with its code.
func (m *Machine) Exited() (bool, int) { return m.exited, m.exitCode }

// Steps returns the executed instruction count.
func (m *Machine) Steps() uint64 { return m.steps }

// Brk returns the current program break (end of heap).
func (m *Machine) Brk() uint64 { return m.brk }

// Segments describes the mapped memory regions.
func (m *Machine) Segments() []Segment {
	return []Segment{
		{Name: "text", Start: isa.TextBase, Size: uint64(len(m.text))},
		{Name: "data", Start: isa.DataBase, Size: uint64(len(m.data))},
		{Name: "heap", Start: isa.HeapBase, Size: m.brk - isa.HeapBase},
		{Name: "stack", Start: m.stackBase, Size: uint64(len(m.stack))},
	}
}

// InRange reports whether [addr, addr+size) is mapped.
func (m *Machine) InRange(addr, size uint64) bool {
	_, _, err := m.locate(addr, size)
	return err == nil
}

// locate maps an address range to its backing slice.
func (m *Machine) locate(addr, size uint64) ([]byte, uint64, error) {
	switch {
	case addr >= isa.TextBase && addr+size <= isa.TextBase+uint64(len(m.text)):
		return m.text, addr - isa.TextBase, nil
	case addr >= isa.DataBase && addr+size <= isa.DataBase+uint64(len(m.data)):
		return m.data, addr - isa.DataBase, nil
	case addr >= isa.HeapBase && addr+size <= m.brk:
		return m.heap, addr - isa.HeapBase, nil
	case addr >= m.stackBase && addr+size <= isa.StackTop:
		return m.stack, addr - m.stackBase, nil
	}
	return nil, 0, fmt.Errorf("vm: segmentation fault at %#x (size %d)", addr, size)
}

// ReadMem copies size bytes at addr.
func (m *Machine) ReadMem(addr, size uint64) ([]byte, error) {
	buf, off, err := m.locate(addr, size)
	if err != nil {
		return nil, err
	}
	out := make([]byte, size)
	copy(out, buf[off:off+size])
	return out, nil
}

// WriteMem stores bytes at addr (no watchpoint side effects; debugger use).
func (m *Machine) WriteMem(addr uint64, data []byte) error {
	buf, off, err := m.locate(addr, uint64(len(data)))
	if err != nil {
		return err
	}
	copy(buf[off:], data)
	m.dataVersion++
	m.watchStore(addr, uint64(len(data)))
	return nil
}

// ReadU64 loads a 64-bit little-endian word.
func (m *Machine) ReadU64(addr uint64) (uint64, error) {
	b, err := m.ReadMem(addr, 8)
	if err != nil {
		return 0, err
	}
	return leU64(b), nil
}

// ReadCString reads a NUL-terminated string of at most max bytes.
func (m *Machine) ReadCString(addr uint64, max int) (string, error) {
	var sb strings.Builder
	for i := 0; i < max; i++ {
		b, err := m.ReadMem(addr+uint64(i), 1)
		if err != nil {
			return "", err
		}
		if b[0] == 0 {
			return sb.String(), nil
		}
		sb.WriteByte(b[0])
	}
	return sb.String(), nil
}

func leU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLeU64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}

// AddBreakpoint arms an instruction breakpoint at pc.
func (m *Machine) AddBreakpoint(pc uint64) { m.breakpoints[pc] = true }

// RemoveBreakpoint disarms a breakpoint.
func (m *Machine) RemoveBreakpoint(pc uint64) { delete(m.breakpoints, pc) }

// Breakpoints lists armed breakpoint addresses.
func (m *Machine) Breakpoints() []uint64 {
	out := make([]uint64, 0, len(m.breakpoints))
	for pc := range m.breakpoints {
		out = append(out, pc)
	}
	return out
}

// AddWatch arms a data watchpoint over [addr, addr+size) and returns its id.
func (m *Machine) AddWatch(addr, size uint64) int {
	m.nextWatchID++
	m.watches = append(m.watches, watch{id: m.nextWatchID, addr: addr, size: size})
	return m.nextWatchID
}

// RemoveWatch disarms a watchpoint by id.
func (m *Machine) RemoveWatch(id int) {
	for i, w := range m.watches {
		if w.id == id {
			m.watches = append(m.watches[:i], m.watches[i+1:]...)
			return
		}
	}
}

func (m *Machine) fault(format string, args ...any) Stop {
	return Stop{Kind: StopFault, Err: fmt.Errorf(format, args...)}
}

// StepOne executes exactly one instruction and reports what happened.
// Breakpoints are NOT checked (callers that want them use Run).
func (m *Machine) StepOne() Stop {
	if m.exited {
		return Stop{Kind: StopExit, ExitCode: m.exitCode}
	}
	idx, ok := isa.PCToIndex(m.pc)
	if !ok || idx >= len(m.prog.Instrs) {
		return m.fault("vm: pc %#x outside text segment", m.pc)
	}
	ins := m.prog.Instrs[idx]
	m.steps++
	nextPC := m.pc + isa.WordSize

	reg := func(r isa.Reg) uint64 { return m.regs[r] }
	sreg := func(r isa.Reg) int64 { return int64(m.regs[r]) }
	freg := func(r isa.Reg) float64 { return math.Float64frombits(m.regs[r]) }

	switch ins.Op {
	case isa.NOP:
	case isa.ADD:
		m.SetReg(ins.Rd, uint64(sreg(ins.Rs1)+sreg(ins.Rs2)))
	case isa.SUB:
		m.SetReg(ins.Rd, uint64(sreg(ins.Rs1)-sreg(ins.Rs2)))
	case isa.MUL:
		m.SetReg(ins.Rd, uint64(sreg(ins.Rs1)*sreg(ins.Rs2)))
	case isa.DIV:
		if sreg(ins.Rs2) == 0 {
			return m.fault("vm: integer division by zero at pc %#x", m.pc)
		}
		m.SetReg(ins.Rd, uint64(sreg(ins.Rs1)/sreg(ins.Rs2)))
	case isa.REM:
		if sreg(ins.Rs2) == 0 {
			return m.fault("vm: integer remainder by zero at pc %#x", m.pc)
		}
		m.SetReg(ins.Rd, uint64(sreg(ins.Rs1)%sreg(ins.Rs2)))
	case isa.AND:
		m.SetReg(ins.Rd, reg(ins.Rs1)&reg(ins.Rs2))
	case isa.OR:
		m.SetReg(ins.Rd, reg(ins.Rs1)|reg(ins.Rs2))
	case isa.XOR:
		m.SetReg(ins.Rd, reg(ins.Rs1)^reg(ins.Rs2))
	case isa.SLL:
		m.SetReg(ins.Rd, reg(ins.Rs1)<<(reg(ins.Rs2)&63))
	case isa.SRL:
		m.SetReg(ins.Rd, reg(ins.Rs1)>>(reg(ins.Rs2)&63))
	case isa.SRA:
		m.SetReg(ins.Rd, uint64(sreg(ins.Rs1)>>(reg(ins.Rs2)&63)))
	case isa.SLT:
		m.SetReg(ins.Rd, b2u(sreg(ins.Rs1) < sreg(ins.Rs2)))
	case isa.SLTU:
		m.SetReg(ins.Rd, b2u(reg(ins.Rs1) < reg(ins.Rs2)))
	case isa.ADDI:
		m.SetReg(ins.Rd, uint64(sreg(ins.Rs1)+int64(ins.Imm)))
	case isa.ANDI:
		m.SetReg(ins.Rd, reg(ins.Rs1)&uint64(int64(ins.Imm)))
	case isa.ORI:
		m.SetReg(ins.Rd, reg(ins.Rs1)|uint64(int64(ins.Imm)))
	case isa.XORI:
		m.SetReg(ins.Rd, reg(ins.Rs1)^uint64(int64(ins.Imm)))
	case isa.SLLI:
		m.SetReg(ins.Rd, reg(ins.Rs1)<<(uint64(ins.Imm)&63))
	case isa.SRLI:
		m.SetReg(ins.Rd, reg(ins.Rs1)>>(uint64(ins.Imm)&63))
	case isa.SRAI:
		m.SetReg(ins.Rd, uint64(sreg(ins.Rs1)>>(uint64(ins.Imm)&63)))
	case isa.SLTI:
		m.SetReg(ins.Rd, b2u(sreg(ins.Rs1) < int64(ins.Imm)))
	case isa.LUI:
		m.SetReg(ins.Rd, uint64(int64(ins.Imm))<<12)
	case isa.LD, isa.LW, isa.LB, isa.LBU:
		addr := uint64(sreg(ins.Rs1) + int64(ins.Imm))
		size := uint64(8)
		switch ins.Op {
		case isa.LW:
			size = 4
		case isa.LB, isa.LBU:
			size = 1
		}
		b, err := m.ReadMem(addr, size)
		if err != nil {
			return m.fault("vm: load fault at pc %#x: %v", m.pc, err)
		}
		var v uint64
		switch ins.Op {
		case isa.LD:
			v = leU64(b)
		case isa.LW:
			u := uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24
			v = uint64(int64(int32(u)))
		case isa.LB:
			v = uint64(int64(int8(b[0])))
		case isa.LBU:
			v = uint64(b[0])
		}
		m.SetReg(ins.Rd, v)
	case isa.SD, isa.SW, isa.SB:
		addr := uint64(sreg(ins.Rs1) + int64(ins.Imm))
		size := uint64(ins.StoreSize())
		m.dataVersion++
		hit := m.watchStore(addr, size)
		var old []byte
		if hit != nil {
			old, _ = m.ReadMem(hit.addr, hit.size)
		}
		buf, off, err := m.locate(addr, size)
		if err != nil {
			return m.fault("vm: store fault at pc %#x: %v", m.pc, err)
		}
		v := reg(ins.Rs2)
		switch ins.Op {
		case isa.SD:
			putLeU64(buf[off:], v)
		case isa.SW:
			buf[off] = byte(v)
			buf[off+1] = byte(v >> 8)
			buf[off+2] = byte(v >> 16)
			buf[off+3] = byte(v >> 24)
		case isa.SB:
			buf[off] = byte(v)
		}
		if hit != nil {
			newB, _ := m.ReadMem(hit.addr, hit.size)
			storePC := m.pc
			m.pc = nextPC
			return Stop{Kind: StopWatch, Watch: &WatchHit{
				ID: hit.id, Addr: hit.addr, Size: hit.size,
				Old: old, New: newB, PC: storePC,
			}}
		}
	case isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.BLTU, isa.BGEU:
		take := false
		switch ins.Op {
		case isa.BEQ:
			take = reg(ins.Rs1) == reg(ins.Rs2)
		case isa.BNE:
			take = reg(ins.Rs1) != reg(ins.Rs2)
		case isa.BLT:
			take = sreg(ins.Rs1) < sreg(ins.Rs2)
		case isa.BGE:
			take = sreg(ins.Rs1) >= sreg(ins.Rs2)
		case isa.BLTU:
			take = reg(ins.Rs1) < reg(ins.Rs2)
		case isa.BGEU:
			take = reg(ins.Rs1) >= reg(ins.Rs2)
		}
		if take {
			nextPC = uint64(int64(m.pc) + int64(ins.Imm))
		}
	case isa.JAL:
		m.SetReg(ins.Rd, nextPC)
		nextPC = uint64(int64(m.pc) + int64(ins.Imm))
	case isa.JALR:
		target := uint64(sreg(ins.Rs1) + int64(ins.Imm))
		m.SetReg(ins.Rd, nextPC)
		nextPC = target
	case isa.ECALL:
		stop, ok := m.ecall()
		if !ok {
			m.pc = nextPC
			return stop
		}
	case isa.EBREAK:
		m.pc = nextPC
		return Stop{Kind: StopEBreak}
	case isa.FADD:
		m.SetReg(ins.Rd, math.Float64bits(freg(ins.Rs1)+freg(ins.Rs2)))
	case isa.FSUB:
		m.SetReg(ins.Rd, math.Float64bits(freg(ins.Rs1)-freg(ins.Rs2)))
	case isa.FMUL:
		m.SetReg(ins.Rd, math.Float64bits(freg(ins.Rs1)*freg(ins.Rs2)))
	case isa.FDIV:
		m.SetReg(ins.Rd, math.Float64bits(freg(ins.Rs1)/freg(ins.Rs2)))
	case isa.FEQ:
		m.SetReg(ins.Rd, b2u(freg(ins.Rs1) == freg(ins.Rs2)))
	case isa.FLT:
		m.SetReg(ins.Rd, b2u(freg(ins.Rs1) < freg(ins.Rs2)))
	case isa.FLE:
		m.SetReg(ins.Rd, b2u(freg(ins.Rs1) <= freg(ins.Rs2)))
	case isa.FNEG:
		m.SetReg(ins.Rd, math.Float64bits(-freg(ins.Rs1)))
	case isa.ITOF:
		m.SetReg(ins.Rd, math.Float64bits(float64(sreg(ins.Rs1))))
	case isa.FTOI:
		m.SetReg(ins.Rd, uint64(int64(freg(ins.Rs1))))
	default:
		return m.fault("vm: illegal instruction %v at pc %#x", ins, m.pc)
	}
	m.pc = nextPC
	return Stop{Kind: StopStep}
}

// watchStore bumps the store counter of every armed watchpoint whose range
// overlaps the store — clients polling per-watch counters must see each
// overlapped range as changed, not just the first — and returns the first
// overlapping watchpoint, which is the one that reports the stop.
func (m *Machine) watchStore(addr, size uint64) *watch {
	var first *watch
	for i := range m.watches {
		w := &m.watches[i]
		if addr < w.addr+w.size && w.addr < addr+size {
			w.version++
			if first == nil {
				first = w
			}
		}
	}
	return first
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// ecall dispatches a runtime service; returns (stop, false) for terminating
// or fault outcomes.
func (m *Machine) ecall() (Stop, bool) {
	svc := m.regs[isa.A7]
	a0 := m.regs[isa.A0]
	switch svc {
	case isa.SysExit:
		m.exited = true
		m.exitCode = int(int64(a0))
		return Stop{Kind: StopExit, ExitCode: m.exitCode}, false
	case isa.SysPrintInt:
		fmt.Fprintf(m.stdout, "%d", int64(a0))
	case isa.SysPrintStr:
		s, err := m.ReadCString(a0, 1<<16)
		if err != nil {
			return m.fault("vm: print_str fault: %v", err), false
		}
		fmt.Fprint(m.stdout, s)
	case isa.SysPrintChr:
		fmt.Fprintf(m.stdout, "%c", rune(a0))
	case isa.SysPrintFlt:
		fmt.Fprintf(m.stdout, "%g", math.Float64frombits(a0))
	case isa.SysSbrk:
		inc := int64(a0)
		old := m.brk
		nb := int64(m.brk) + inc
		if nb < int64(isa.HeapBase) || uint64(nb) > isa.HeapBase+m.maxHeap {
			m.SetReg(isa.A0, ^uint64(0)) // -1
			break
		}
		m.brk = uint64(nb)
		m.dataVersion++
		need := int(m.brk - isa.HeapBase)
		for len(m.heap) < need {
			m.heap = append(m.heap, 0)
		}
		if len(m.heap) > need {
			m.heap = m.heap[:need]
		}
		m.SetReg(isa.A0, old)
	case isa.SysReadInt:
		var v int64
		if _, err := fmt.Fscan(m.stdin, &v); err != nil {
			v = 0
		}
		m.SetReg(isa.A0, uint64(v))
	case isa.SysReadChr:
		b, err := m.stdin.ReadByte()
		if err != nil {
			m.SetReg(isa.A0, ^uint64(0))
		} else {
			m.SetReg(isa.A0, uint64(b))
		}
	default:
		return m.fault("vm: unknown ecall service %d at pc %#x", svc, m.pc), false
	}
	return Stop{Kind: StopStep}, true
}

// Interrupt raises the cooperative interrupt flag: the executing run loop
// stops with StopInterrupt before its next instruction. The flag is sticky
// while the machine is idle, so an interrupt delivered between commands
// stops the next run immediately. Safe to call from any goroutine.
func (m *Machine) Interrupt() { m.intr.Store(true) }

// TakeInterrupt consumes a pending interrupt, reporting whether one was
// raised. The idle path is a single atomic load — it runs once per
// instruction in the dispatch loop, so the consume CAS happens only when
// the flag is actually up.
func (m *Machine) TakeInterrupt() bool {
	return m.intr.Load() && m.intr.CompareAndSwap(true, false)
}

// SetStepLimit arms (or with 0 disarms) the total-instruction budget: once
// Steps() reaches n, run loops stop with StopBudget and the budget disarms
// itself.
func (m *Machine) SetStepLimit(n uint64) { m.stepLimit = n }

// TripStepLimit reports whether the armed instruction budget is exhausted,
// disarming it when so.
func (m *Machine) TripStepLimit() bool {
	if m.stepLimit > 0 && m.steps >= m.stepLimit {
		m.stepLimit = 0
		return true
	}
	return false
}

// Run executes until a breakpoint, watchpoint, exit, fault, interrupt, or
// the step budget is exhausted (budget 0 means 50 million instructions).
// The breakpoint at the starting pc is skipped, so Run can resume from one.
func (m *Machine) Run(budget uint64) Stop {
	if budget == 0 {
		budget = 50_000_000
	}
	first := true
	for i := uint64(0); i < budget; i++ {
		if m.TakeInterrupt() {
			return Stop{Kind: StopInterrupt}
		}
		if m.TripStepLimit() {
			return Stop{Kind: StopBudget}
		}
		if !first && m.breakpoints[m.pc] {
			return Stop{Kind: StopBreak}
		}
		first = false
		stop := m.StepOne()
		if stop.Kind != StopStep {
			return stop
		}
	}
	return Stop{Kind: StopBudget}
}
