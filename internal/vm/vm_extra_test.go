package vm

import (
	"math"
	"strings"
	"testing"

	"easytracker/internal/isa"
)

func TestFloatOpsSemantics(t *testing.T) {
	cases := []struct {
		op   isa.Op
		a, b float64
		want float64
	}{
		{isa.FADD, 1.5, 2.25, 3.75},
		{isa.FSUB, 1.0, 0.25, 0.75},
		{isa.FMUL, -2.0, 3.0, -6.0},
		{isa.FDIV, 7.0, 2.0, 3.5},
	}
	for _, c := range cases {
		m := mustMachine(t, prog(isa.Instr{Op: c.op, Rd: isa.A2, Rs1: isa.A0, Rs2: isa.A1}), Config{})
		m.SetReg(isa.A0, math.Float64bits(c.a))
		m.SetReg(isa.A1, math.Float64bits(c.b))
		if s := m.StepOne(); s.Kind != StopStep {
			t.Fatalf("%v: %v", c.op, s.Kind)
		}
		if got := math.Float64frombits(m.Reg(isa.A2)); got != c.want {
			t.Errorf("%v(%g, %g) = %g, want %g", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestFloatCompares(t *testing.T) {
	cases := []struct {
		op   isa.Op
		a, b float64
		want uint64
	}{
		{isa.FEQ, 1.5, 1.5, 1},
		{isa.FEQ, 1.5, 2.0, 0},
		{isa.FLT, 1.0, 2.0, 1},
		{isa.FLT, 2.0, 1.0, 0},
		{isa.FLE, 2.0, 2.0, 1},
		{isa.FEQ, math.NaN(), math.NaN(), 0},
		{isa.FLT, math.NaN(), 1.0, 0},
	}
	for _, c := range cases {
		m := mustMachine(t, prog(isa.Instr{Op: c.op, Rd: isa.A2, Rs1: isa.A0, Rs2: isa.A1}), Config{})
		m.SetReg(isa.A0, math.Float64bits(c.a))
		m.SetReg(isa.A1, math.Float64bits(c.b))
		m.StepOne()
		if m.Reg(isa.A2) != c.want {
			t.Errorf("%v(%g, %g) = %d, want %d", c.op, c.a, c.b, m.Reg(isa.A2), c.want)
		}
	}
}

func TestFnegItofFtoi(t *testing.T) {
	p := prog(
		isa.Instr{Op: isa.ADDI, Rd: isa.A0, Rs1: isa.Zero, Imm: -7},
		isa.Instr{Op: isa.ITOF, Rd: isa.A1, Rs1: isa.A0},
		isa.Instr{Op: isa.FNEG, Rd: isa.A2, Rs1: isa.A1},
		isa.Instr{Op: isa.FTOI, Rd: isa.A3, Rs1: isa.A2},
	)
	m := mustMachine(t, p, Config{})
	for i := 0; i < 4; i++ {
		m.StepOne()
	}
	if f := math.Float64frombits(m.Reg(isa.A1)); f != -7.0 {
		t.Errorf("itof = %g", f)
	}
	if f := math.Float64frombits(m.Reg(isa.A2)); f != 7.0 {
		t.Errorf("fneg = %g", f)
	}
	if v := int64(m.Reg(isa.A3)); v != 7 {
		t.Errorf("ftoi = %d", v)
	}
}

func TestReadCStringUnterminated(t *testing.T) {
	p := prog(isa.Nop())
	p.Data = []byte{'a', 'b', 'c'} // no NUL inside data segment
	m := mustMachine(t, p, Config{})
	// Reading runs to the max or faults at the segment end; either way
	// it must not hang and must return what was readable.
	s, err := m.ReadCString(isa.DataBase, 2)
	if err != nil || s != "ab" {
		t.Errorf("capped read = %q, %v", s, err)
	}
	if _, err := m.ReadCString(isa.DataBase, 100); err == nil {
		t.Error("read past segment end succeeded")
	}
}

func TestReadCharEcall(t *testing.T) {
	p := exitProg(
		isa.Instr{Op: isa.ADDI, Rd: isa.A7, Rs1: isa.Zero, Imm: isa.SysReadChr},
		isa.Instr{Op: isa.ECALL},
		isa.Instr{Op: isa.ADDI, Rd: isa.S1, Rs1: isa.A0, Imm: 0},
		isa.Instr{Op: isa.ADDI, Rd: isa.A7, Rs1: isa.Zero, Imm: isa.SysReadChr},
		isa.Instr{Op: isa.ECALL},
		isa.Instr{Op: isa.ADDI, Rd: isa.S2, Rs1: isa.A0, Imm: 0},
	)
	m := mustMachine(t, p, Config{Stdin: strings.NewReader("Z")})
	if s := m.Run(0); s.Kind != StopExit {
		t.Fatalf("stop %v", s.Kind)
	}
	if m.Reg(isa.S1) != 'Z' {
		t.Errorf("first read = %d", m.Reg(isa.S1))
	}
	if int64(m.Reg(isa.S2)) != -1 {
		t.Errorf("EOF read = %d", int64(m.Reg(isa.S2)))
	}
}

func TestUnknownEcallFaults(t *testing.T) {
	p := prog(
		isa.Instr{Op: isa.ADDI, Rd: isa.A7, Rs1: isa.Zero, Imm: 99},
		isa.Instr{Op: isa.ECALL},
	)
	m := mustMachine(t, p, Config{})
	if s := m.Run(0); s.Kind != StopFault {
		t.Errorf("stop = %v", s.Kind)
	}
}

func TestBadPCFaults(t *testing.T) {
	m := mustMachine(t, prog(isa.Nop()), Config{})
	m.SetPC(isa.DataBase)
	if s := m.StepOne(); s.Kind != StopFault {
		t.Errorf("stop = %v", s.Kind)
	}
	m.SetPC(isa.TextBase + 3) // unaligned
	if s := m.StepOne(); s.Kind != StopFault {
		t.Errorf("unaligned stop = %v", s.Kind)
	}
}

func TestStepOneAfterExit(t *testing.T) {
	p := exitProg()
	m := mustMachine(t, p, Config{})
	if s := m.Run(0); s.Kind != StopExit {
		t.Fatal("no exit")
	}
	if s := m.StepOne(); s.Kind != StopExit {
		t.Errorf("step after exit = %v", s.Kind)
	}
}

func TestSltiAndShiftImmediates(t *testing.T) {
	p := prog(
		isa.Instr{Op: isa.SLTI, Rd: isa.A1, Rs1: isa.A0, Imm: 5},
		isa.Instr{Op: isa.SLLI, Rd: isa.A2, Rs1: isa.A0, Imm: 4},
		isa.Instr{Op: isa.SRLI, Rd: isa.A3, Rs1: isa.A0, Imm: 1},
		isa.Instr{Op: isa.SRAI, Rd: isa.A4, Rs1: isa.A5, Imm: 2},
		isa.Instr{Op: isa.ANDI, Rd: isa.A6, Rs1: isa.A0, Imm: 6},
		isa.Instr{Op: isa.ORI, Rd: isa.A7, Rs1: isa.A0, Imm: 8},
		isa.Instr{Op: isa.XORI, Rd: isa.S1, Rs1: isa.A0, Imm: 1},
	)
	m := mustMachine(t, p, Config{})
	m.SetReg(isa.A0, 3)
	m.SetReg(isa.A5, uint64(^uint64(0))-15) // -16
	for i := 0; i < 7; i++ {
		m.StepOne()
	}
	if m.Reg(isa.A1) != 1 || m.Reg(isa.A2) != 48 || m.Reg(isa.A3) != 1 {
		t.Errorf("slti/slli/srli = %d %d %d", m.Reg(isa.A1), m.Reg(isa.A2), m.Reg(isa.A3))
	}
	if int64(m.Reg(isa.A4)) != -4 {
		t.Errorf("srai = %d", int64(m.Reg(isa.A4)))
	}
	if m.Reg(isa.A6) != 2 || m.Reg(isa.A7) != 11 || m.Reg(isa.S1) != 2 {
		t.Errorf("andi/ori/xori = %d %d %d", m.Reg(isa.A6), m.Reg(isa.A7), m.Reg(isa.S1))
	}
}

func TestLui(t *testing.T) {
	m := mustMachine(t, prog(isa.Instr{Op: isa.LUI, Rd: isa.A0, Imm: 5}), Config{})
	m.StepOne()
	if m.Reg(isa.A0) != 5<<12 {
		t.Errorf("lui = %#x", m.Reg(isa.A0))
	}
}
