package vm

import (
	"testing"

	"easytracker/internal/isa"
)

// storeProg stores A1 to [A0] with SD, then exits.
func storeProg(n int) *isa.Program {
	var instrs []isa.Instr
	for i := 0; i < n; i++ {
		instrs = append(instrs, isa.Instr{Op: isa.SD, Rs1: isa.A0, Rs2: isa.A1, Imm: 0})
	}
	p := exitProg(instrs...)
	p.Data = make([]byte, 128) // writable data segment at DataBase
	return p
}

func TestDataVersionAdvancesOnStores(t *testing.T) {
	m := mustMachine(t, storeProg(3), Config{})
	m.SetReg(isa.A0, isa.DataBase)
	v0 := m.DataVersion()
	for i := 1; i <= 3; i++ {
		if s := m.StepOne(); s.Kind != StopStep {
			t.Fatalf("step %d: stop %v (%v)", i, s.Kind, s.Err)
		}
		if got := m.DataVersion(); got != v0+uint64(i) {
			t.Errorf("after store %d: DataVersion = %d, want %d", i, got, v0+uint64(i))
		}
	}
	// Non-store instructions must not advance the version.
	before := m.DataVersion()
	if s := m.StepOne(); s.Kind != StopStep { // the ADDI of the exit stub
		t.Fatalf("stop %v (%v)", s.Kind, s.Err)
	}
	if got := m.DataVersion(); got != before {
		t.Errorf("ADDI advanced DataVersion: %d -> %d", before, got)
	}
}

func TestDataVersionAdvancesOnWriteMemAndReset(t *testing.T) {
	m := mustMachine(t, storeProg(0), Config{})
	v0 := m.DataVersion()
	if err := m.WriteMem(isa.DataBase, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if m.DataVersion() <= v0 {
		t.Error("WriteMem did not advance DataVersion")
	}
	v1 := m.DataVersion()
	m.Reset()
	if m.DataVersion() <= v1 {
		t.Error("Reset did not advance DataVersion (must stay monotonic so stale caches cannot validate against a fresh run)")
	}
}

func TestWatchVersionCountsOverlappingStores(t *testing.T) {
	m := mustMachine(t, storeProg(2), Config{})
	m.SetReg(isa.A0, isa.DataBase)
	id := m.AddWatch(isa.DataBase, 8)
	other := m.AddWatch(isa.DataBase+64, 8)
	if got := m.WatchVersion(id); got != 0 {
		t.Fatalf("initial WatchVersion = %d, want 0", got)
	}
	for i := 1; i <= 2; i++ {
		s := m.StepOne()
		if s.Kind != StopWatch {
			t.Fatalf("store %d: stop %v (%v)", i, s.Kind, s.Err)
		}
		if got := m.WatchVersion(id); got != uint64(i) {
			t.Errorf("after store %d: WatchVersion = %d, want %d", i, got, i)
		}
	}
	// The non-overlapping watch never advances.
	if got := m.WatchVersion(other); got != 0 {
		t.Errorf("non-overlapping WatchVersion = %d, want 0", got)
	}
	// Unknown ids report 0.
	if got := m.WatchVersion(999); got != 0 {
		t.Errorf("unknown id WatchVersion = %d, want 0", got)
	}
}

func TestWatchVersionBumpsEveryOverlappedWatch(t *testing.T) {
	// One SD spans [DataBase, DataBase+8); arm two watches that each
	// overlap half of it. The first one reports the stop, but BOTH
	// version counters must advance — a client polling per-watch
	// counters would otherwise conclude the second range is unchanged.
	m := mustMachine(t, storeProg(1), Config{})
	m.SetReg(isa.A0, isa.DataBase)
	first := m.AddWatch(isa.DataBase, 4)
	second := m.AddWatch(isa.DataBase+4, 4)
	s := m.StepOne()
	if s.Kind != StopWatch || s.Watch == nil {
		t.Fatalf("stop %v (%v)", s.Kind, s.Err)
	}
	if s.Watch.ID != first {
		t.Errorf("reported watch %d, want first-armed %d", s.Watch.ID, first)
	}
	if got := m.WatchVersion(first); got != 1 {
		t.Errorf("first watch version = %d, want 1", got)
	}
	if got := m.WatchVersion(second); got != 1 {
		t.Errorf("second overlapped watch version = %d, want 1", got)
	}
}

func TestWatchVersionCountsDebuggerWrites(t *testing.T) {
	m := mustMachine(t, storeProg(0), Config{})
	id := m.AddWatch(isa.DataBase, 8)
	if err := m.WriteMem(isa.DataBase+2, []byte{7}); err != nil {
		t.Fatal(err)
	}
	if got := m.WatchVersion(id); got != 1 {
		t.Errorf("WatchVersion after debugger write = %d, want 1", got)
	}
}
