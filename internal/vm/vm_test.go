package vm

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"easytracker/internal/isa"
)

// prog builds a minimal program from instructions.
func prog(instrs ...isa.Instr) *isa.Program {
	return &isa.Program{
		SourceFile: "t.s",
		Instrs:     instrs,
		Entry:      isa.TextBase,
	}
}

func exitProg(instrs ...isa.Instr) *isa.Program {
	all := append(instrs,
		isa.Instr{Op: isa.ADDI, Rd: isa.A0, Rs1: isa.Zero, Imm: 0},
		isa.Instr{Op: isa.ADDI, Rd: isa.A7, Rs1: isa.Zero, Imm: isa.SysExit},
		isa.Instr{Op: isa.ECALL},
	)
	return prog(all...)
}

func mustMachine(t *testing.T, p *isa.Program, cfg Config) *Machine {
	t.Helper()
	m, err := New(p, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func TestArithmeticSemantics(t *testing.T) {
	// VM arithmetic must match Go int64 semantics.
	cases := []struct {
		op   isa.Op
		a, b int64
		want int64
	}{
		{isa.ADD, 2, 3, 5},
		{isa.ADD, math.MaxInt64, 1, math.MinInt64}, // wraparound
		{isa.SUB, 2, 5, -3},
		{isa.MUL, -4, 6, -24},
		{isa.DIV, 7, 2, 3},
		{isa.DIV, -7, 2, -3}, // C truncation
		{isa.REM, -7, 2, -1}, // C remainder
		{isa.AND, 0b1100, 0b1010, 0b1000},
		{isa.OR, 0b1100, 0b1010, 0b1110},
		{isa.XOR, 0b1100, 0b1010, 0b0110},
		{isa.SLL, 1, 10, 1024},
		{isa.SRA, -16, 2, -4},
		{isa.SLT, -1, 0, 1},
		{isa.SLT, 1, 0, 0},
	}
	for _, c := range cases {
		m := mustMachine(t, prog(
			isa.Instr{Op: c.op, Rd: isa.A2, Rs1: isa.A0, Rs2: isa.A1},
		), Config{})
		m.SetReg(isa.A0, uint64(c.a))
		m.SetReg(isa.A1, uint64(c.b))
		if s := m.StepOne(); s.Kind != StopStep {
			t.Fatalf("%v: stop %v (%v)", c.op, s.Kind, s.Err)
		}
		if got := int64(m.Reg(isa.A2)); got != c.want {
			t.Errorf("%v(%d, %d) = %d, want %d", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestQuickArithMatchesGo(t *testing.T) {
	type opfn struct {
		op isa.Op
		fn func(a, b int64) int64
	}
	ops := []opfn{
		{isa.ADD, func(a, b int64) int64 { return a + b }},
		{isa.SUB, func(a, b int64) int64 { return a - b }},
		{isa.MUL, func(a, b int64) int64 { return a * b }},
		{isa.XOR, func(a, b int64) int64 { return a ^ b }},
		{isa.AND, func(a, b int64) int64 { return a & b }},
		{isa.OR, func(a, b int64) int64 { return a | b }},
	}
	for _, o := range ops {
		o := o
		f := func(a, b int64) bool {
			m, err := New(prog(isa.Instr{Op: o.op, Rd: isa.A2, Rs1: isa.A0, Rs2: isa.A1}), Config{})
			if err != nil {
				return false
			}
			m.SetReg(isa.A0, uint64(a))
			m.SetReg(isa.A1, uint64(b))
			m.StepOne()
			return int64(m.Reg(isa.A2)) == o.fn(a, b)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%v: %v", o.op, err)
		}
	}
}

func TestDivByZeroFaults(t *testing.T) {
	for _, op := range []isa.Op{isa.DIV, isa.REM} {
		m := mustMachine(t, prog(isa.Instr{Op: op, Rd: isa.A0, Rs1: isa.A0, Rs2: isa.Zero}), Config{})
		m.SetReg(isa.A0, 10)
		if s := m.StepOne(); s.Kind != StopFault {
			t.Errorf("%v by zero: stop = %v", op, s.Kind)
		}
	}
}

func TestZeroRegisterImmutable(t *testing.T) {
	m := mustMachine(t, prog(isa.Instr{Op: isa.ADDI, Rd: isa.Zero, Rs1: isa.Zero, Imm: 42}), Config{})
	m.StepOne()
	if m.Reg(isa.Zero) != 0 {
		t.Error("zero register was written")
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	// Store a word to the stack and load it back in all widths.
	p := prog(
		isa.Instr{Op: isa.SD, Rs1: isa.SP, Rs2: isa.A0, Imm: -8},
		isa.Instr{Op: isa.LD, Rd: isa.A1, Rs1: isa.SP, Imm: -8},
		isa.Instr{Op: isa.LW, Rd: isa.A2, Rs1: isa.SP, Imm: -8},
		isa.Instr{Op: isa.LB, Rd: isa.A3, Rs1: isa.SP, Imm: -8},
		isa.Instr{Op: isa.LBU, Rd: isa.A4, Rs1: isa.SP, Imm: -8},
	)
	m := mustMachine(t, p, Config{})
	val := uint64(0xFFFF_FFFF_8000_00F0)
	m.SetReg(isa.A0, val)
	for i := 0; i < 5; i++ {
		if s := m.StepOne(); s.Kind != StopStep {
			t.Fatalf("step %d: %v %v", i, s.Kind, s.Err)
		}
	}
	if m.Reg(isa.A1) != val {
		t.Errorf("LD = %#x", m.Reg(isa.A1))
	}
	low32 := uint32(val)
	if int64(m.Reg(isa.A2)) != int64(int32(low32)) {
		t.Errorf("LW sign extension = %#x", m.Reg(isa.A2))
	}
	low8 := uint8(val)
	if int64(m.Reg(isa.A3)) != int64(int8(low8)) {
		t.Errorf("LB sign extension = %#x", m.Reg(isa.A3))
	}
	if m.Reg(isa.A4) != 0xF0 {
		t.Errorf("LBU = %#x", m.Reg(isa.A4))
	}
}

func TestQuickMemoryRoundTrip(t *testing.T) {
	m := mustMachine(t, prog(isa.Nop()), Config{})
	f := func(v uint64, offRaw uint16) bool {
		off := uint64(offRaw) &^ 7
		addr := isa.StackTop - 8 - off
		var b [8]byte
		putLeU64(b[:], v)
		if err := m.WriteMem(addr, b[:]); err != nil {
			return false
		}
		got, err := m.ReadU64(addr)
		return err == nil && got == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMemoryFaults(t *testing.T) {
	m := mustMachine(t, prog(isa.Nop()), Config{})
	if _, err := m.ReadMem(0, 8); err == nil {
		t.Error("null read succeeded")
	}
	if _, err := m.ReadMem(isa.HeapBase, 8); err == nil {
		t.Error("unallocated heap read succeeded")
	}
	if err := m.WriteMem(isa.StackTop-4, make([]byte, 8)); err == nil {
		t.Error("straddling stack top write succeeded")
	}
	// Load fault during execution.
	p := prog(isa.Instr{Op: isa.LD, Rd: isa.A0, Rs1: isa.Zero, Imm: 0})
	m2 := mustMachine(t, p, Config{})
	if s := m2.StepOne(); s.Kind != StopFault {
		t.Errorf("null deref stop = %v", s.Kind)
	}
}

func TestBranchesAndJumps(t *testing.T) {
	// if (a0 == a1) a2 = 1 else a2 = 2; then exit(a2)
	p := prog(
		isa.Instr{Op: isa.BEQ, Rs1: isa.A0, Rs2: isa.A1, Imm: 24}, // -> idx 3
		isa.Instr{Op: isa.ADDI, Rd: isa.A2, Rs1: isa.Zero, Imm: 2},
		isa.Instr{Op: isa.JAL, Rd: isa.Zero, Imm: 16}, // -> idx 4
		isa.Instr{Op: isa.ADDI, Rd: isa.A2, Rs1: isa.Zero, Imm: 1},
		isa.Instr{Op: isa.ADDI, Rd: isa.A0, Rs1: isa.A2, Imm: 0},
		isa.Instr{Op: isa.ADDI, Rd: isa.A7, Rs1: isa.Zero, Imm: isa.SysExit},
		isa.Instr{Op: isa.ECALL},
	)
	m := mustMachine(t, p, Config{})
	m.SetReg(isa.A0, 7)
	m.SetReg(isa.A1, 7)
	s := m.Run(0)
	if s.Kind != StopExit || s.ExitCode != 1 {
		t.Errorf("equal: stop %v code %d", s.Kind, s.ExitCode)
	}
	m.Reset()
	m.SetReg(isa.A0, 7)
	m.SetReg(isa.A1, 8)
	s = m.Run(0)
	if s.Kind != StopExit || s.ExitCode != 2 {
		t.Errorf("unequal: stop %v code %d", s.Kind, s.ExitCode)
	}
}

func TestCallReturn(t *testing.T) {
	// main: call f (jal ra, +16); exit(a0). f: a0 = 5; ret
	p := prog(
		isa.Instr{Op: isa.JAL, Rd: isa.RA, Imm: 24},                          // idx0 -> idx3
		isa.Instr{Op: isa.ADDI, Rd: isa.A7, Rs1: isa.Zero, Imm: isa.SysExit}, // idx1
		isa.Instr{Op: isa.ECALL},                                             // idx2
		isa.Instr{Op: isa.ADDI, Rd: isa.A0, Rs1: isa.Zero, Imm: 5},           // idx3 (f)
		isa.Ret(), // idx4
	)
	m := mustMachine(t, p, Config{})
	s := m.Run(0)
	if s.Kind != StopExit || s.ExitCode != 5 {
		t.Errorf("stop %v code %d err %v", s.Kind, s.ExitCode, s.Err)
	}
}

func TestEcallOutput(t *testing.T) {
	var out strings.Builder
	p := exitProg(
		isa.Instr{Op: isa.ADDI, Rd: isa.A0, Rs1: isa.Zero, Imm: -42},
		isa.Instr{Op: isa.ADDI, Rd: isa.A7, Rs1: isa.Zero, Imm: isa.SysPrintInt},
		isa.Instr{Op: isa.ECALL},
		isa.Instr{Op: isa.ADDI, Rd: isa.A0, Rs1: isa.Zero, Imm: '\n'},
		isa.Instr{Op: isa.ADDI, Rd: isa.A7, Rs1: isa.Zero, Imm: isa.SysPrintChr},
		isa.Instr{Op: isa.ECALL},
	)
	m := mustMachine(t, p, Config{Stdout: &out})
	if s := m.Run(0); s.Kind != StopExit {
		t.Fatalf("stop %v %v", s.Kind, s.Err)
	}
	if out.String() != "-42\n" {
		t.Errorf("output %q", out.String())
	}
}

func TestEcallPrintStrAndFloat(t *testing.T) {
	var out strings.Builder
	p := exitProg(
		isa.Instr{Op: isa.ADDI, Rd: isa.A0, Rs1: isa.Zero, Imm: int32(isa.DataBase)},
		isa.Instr{Op: isa.ADDI, Rd: isa.A7, Rs1: isa.Zero, Imm: isa.SysPrintStr},
		isa.Instr{Op: isa.ECALL},
		isa.Instr{Op: isa.ADDI, Rd: isa.A0, Rs1: isa.Zero, Imm: 3},
		isa.Instr{Op: isa.ITOF, Rd: isa.A0, Rs1: isa.A0},
		isa.Instr{Op: isa.ADDI, Rd: isa.A7, Rs1: isa.Zero, Imm: isa.SysPrintFlt},
		isa.Instr{Op: isa.ECALL},
	)
	p.Data = append([]byte("hi "), 0)
	m := mustMachine(t, p, Config{Stdout: &out})
	if s := m.Run(0); s.Kind != StopExit {
		t.Fatalf("stop %v %v", s.Kind, s.Err)
	}
	if out.String() != "hi 3" {
		t.Errorf("output %q", out.String())
	}
}

func TestEcallInput(t *testing.T) {
	p := exitProg(
		isa.Instr{Op: isa.ADDI, Rd: isa.A7, Rs1: isa.Zero, Imm: isa.SysReadInt},
		isa.Instr{Op: isa.ECALL},
		isa.Instr{Op: isa.ADDI, Rd: isa.S1, Rs1: isa.A0, Imm: 0},
	)
	m := mustMachine(t, p, Config{Stdin: strings.NewReader("123\n")})
	if s := m.Run(0); s.Kind != StopExit {
		t.Fatalf("stop %v %v", s.Kind, s.Err)
	}
	if m.Reg(isa.S1) != 123 {
		t.Errorf("read = %d", m.Reg(isa.S1))
	}
}

func TestSbrkGrowsHeap(t *testing.T) {
	p := prog(
		isa.Instr{Op: isa.ADDI, Rd: isa.A0, Rs1: isa.Zero, Imm: 64},
		isa.Instr{Op: isa.ADDI, Rd: isa.A7, Rs1: isa.Zero, Imm: isa.SysSbrk},
		isa.Instr{Op: isa.ECALL},
		isa.Instr{Op: isa.SD, Rs1: isa.A0, Rs2: isa.A0, Imm: 0}, // store to new block
		isa.Instr{Op: isa.EBREAK},
	)
	m := mustMachine(t, p, Config{})
	s := m.Run(0)
	if s.Kind != StopEBreak {
		t.Fatalf("stop %v %v", s.Kind, s.Err)
	}
	if m.Reg(isa.A0) != isa.HeapBase {
		t.Errorf("sbrk returned %#x", m.Reg(isa.A0))
	}
	if m.Brk() != isa.HeapBase+64 {
		t.Errorf("brk = %#x", m.Brk())
	}
	v, err := m.ReadU64(isa.HeapBase)
	if err != nil || v != isa.HeapBase {
		t.Errorf("heap word = %#x, %v", v, err)
	}
}

func TestSbrkLimit(t *testing.T) {
	p := prog(
		isa.Instr{Op: isa.ADDI, Rd: isa.A0, Rs1: isa.Zero, Imm: 1 << 20},
		isa.Instr{Op: isa.ADDI, Rd: isa.A7, Rs1: isa.Zero, Imm: isa.SysSbrk},
		isa.Instr{Op: isa.ECALL},
		isa.Instr{Op: isa.EBREAK},
	)
	m := mustMachine(t, p, Config{MaxHeap: 1024})
	if s := m.Run(0); s.Kind != StopEBreak {
		t.Fatalf("stop %v", s.Kind)
	}
	if int64(m.Reg(isa.A0)) != -1 {
		t.Errorf("over-limit sbrk returned %d", int64(m.Reg(isa.A0)))
	}
}

func TestBreakpoints(t *testing.T) {
	p := exitProg(
		isa.Instr{Op: isa.ADDI, Rd: isa.S1, Rs1: isa.S1, Imm: 1},
		isa.Instr{Op: isa.ADDI, Rd: isa.S1, Rs1: isa.S1, Imm: 1},
		isa.Instr{Op: isa.ADDI, Rd: isa.S1, Rs1: isa.S1, Imm: 1},
	)
	m := mustMachine(t, p, Config{})
	bp := isa.IndexToPC(1)
	m.AddBreakpoint(bp)
	s := m.Run(0)
	if s.Kind != StopBreak || m.PC() != bp {
		t.Fatalf("stop %v at %#x", s.Kind, m.PC())
	}
	if m.Reg(isa.S1) != 1 {
		t.Errorf("s1 = %d at breakpoint", m.Reg(isa.S1))
	}
	// Resuming from the breakpoint must not re-trigger it.
	s = m.Run(0)
	if s.Kind != StopExit {
		t.Fatalf("resume stop %v", s.Kind)
	}
	if m.Reg(isa.S1) != 3 {
		t.Errorf("s1 = %d at exit", m.Reg(isa.S1))
	}
	m.Reset()
	m.RemoveBreakpoint(bp)
	if s := m.Run(0); s.Kind != StopExit {
		t.Errorf("after removal stop %v", s.Kind)
	}
	if len(m.Breakpoints()) != 0 {
		t.Error("Breakpoints() not empty")
	}
}

func TestWatchpoints(t *testing.T) {
	addr := isa.StackTop - 16
	p := exitProg(
		isa.Instr{Op: isa.ADDI, Rd: isa.A0, Rs1: isa.Zero, Imm: 7},
		isa.Instr{Op: isa.SD, Rs1: isa.SP, Rs2: isa.A0, Imm: -16},
		isa.Instr{Op: isa.ADDI, Rd: isa.A0, Rs1: isa.Zero, Imm: 9},
		isa.Instr{Op: isa.SD, Rs1: isa.SP, Rs2: isa.A0, Imm: -16},
		isa.Instr{Op: isa.SD, Rs1: isa.SP, Rs2: isa.A0, Imm: -32}, // unwatched
	)
	m := mustMachine(t, p, Config{})
	id := m.AddWatch(addr, 8)
	s := m.Run(0)
	if s.Kind != StopWatch || s.Watch == nil {
		t.Fatalf("stop %v", s.Kind)
	}
	if leU64(s.Watch.Old) != 0 || leU64(s.Watch.New) != 7 {
		t.Errorf("first hit old=%v new=%v", s.Watch.Old, s.Watch.New)
	}
	if s.Watch.ID != id || s.Watch.PC != isa.IndexToPC(1) {
		t.Errorf("hit meta %+v", s.Watch)
	}
	s = m.Run(0)
	if s.Kind != StopWatch || leU64(s.Watch.New) != 9 {
		t.Fatalf("second hit %v", s)
	}
	s = m.Run(0)
	if s.Kind != StopExit {
		t.Errorf("final stop %v", s.Kind)
	}
	m.RemoveWatch(id)
	m.Reset()
	if s := m.Run(0); s.Kind != StopExit {
		t.Errorf("after unwatch stop %v", s.Kind)
	}
}

func TestWatchPartialOverlap(t *testing.T) {
	addr := isa.StackTop - 16
	p := exitProg(
		// SB into the middle of the watched word.
		isa.Instr{Op: isa.ADDI, Rd: isa.A0, Rs1: isa.Zero, Imm: 0xAB},
		isa.Instr{Op: isa.SB, Rs1: isa.SP, Rs2: isa.A0, Imm: -13},
	)
	m := mustMachine(t, p, Config{})
	m.AddWatch(addr, 8)
	s := m.Run(0)
	if s.Kind != StopWatch {
		t.Fatalf("stop %v", s.Kind)
	}
	if s.Watch.New[3] != 0xAB {
		t.Errorf("new bytes %v", s.Watch.New)
	}
}

func TestRunBudget(t *testing.T) {
	p := prog(isa.Instr{Op: isa.JAL, Rd: isa.Zero, Imm: 0}) // tight loop
	m := mustMachine(t, p, Config{})
	s := m.Run(1000)
	if s.Kind != StopBudget {
		t.Errorf("stop %v err %v", s.Kind, s.Err)
	}
}

func TestRunInterrupt(t *testing.T) {
	p := prog(isa.Instr{Op: isa.JAL, Rd: isa.Zero, Imm: 0}) // tight loop
	m := mustMachine(t, p, Config{})
	m.Interrupt()
	s := m.Run(1000)
	if s.Kind != StopInterrupt {
		t.Fatalf("stop %v err %v", s.Kind, s.Err)
	}
	// The flag is consumed: the next run goes back to executing.
	if s = m.Run(10); s.Kind != StopBudget {
		t.Errorf("second stop %v err %v", s.Kind, s.Err)
	}
}

func TestStepLimit(t *testing.T) {
	p := prog(isa.Instr{Op: isa.JAL, Rd: isa.Zero, Imm: 0}) // tight loop
	m := mustMachine(t, p, Config{})
	m.SetStepLimit(100)
	s := m.Run(0)
	if s.Kind != StopBudget {
		t.Fatalf("stop %v err %v", s.Kind, s.Err)
	}
	if m.Steps() != 100 {
		t.Errorf("steps = %d, want 100", m.Steps())
	}
	// The budget is one-shot: it disarmed itself, so the machine resumes.
	if s = m.Run(50); s.Kind != StopBudget || m.Steps() != 150 {
		t.Errorf("after trip: stop %v steps %d", s.Kind, m.Steps())
	}
}

func TestSegments(t *testing.T) {
	m := mustMachine(t, prog(isa.Nop(), isa.Nop()), Config{})
	segs := m.Segments()
	if len(segs) != 4 {
		t.Fatalf("segments = %v", segs)
	}
	if segs[0].Name != "text" || segs[0].Size != 16 {
		t.Errorf("text segment %v", segs[0])
	}
	if !m.InRange(isa.StackTop-8, 8) {
		t.Error("stack not in range")
	}
	if m.InRange(isa.StackTop, 1) {
		t.Error("beyond stack top in range")
	}
}

func TestResetRestoresState(t *testing.T) {
	p := exitProg(isa.Instr{Op: isa.ADDI, Rd: isa.S1, Rs1: isa.Zero, Imm: 9})
	m := mustMachine(t, p, Config{})
	m.Run(0)
	if ex, _ := m.Exited(); !ex {
		t.Fatal("not exited")
	}
	m.Reset()
	if ex, _ := m.Exited(); ex {
		t.Error("still exited after reset")
	}
	if m.Reg(isa.S1) != 0 || m.PC() != isa.TextBase || m.Reg(isa.SP) != isa.StackTop {
		t.Error("registers not reset")
	}
	if m.Steps() != 0 {
		t.Error("step count not reset")
	}
}

func TestTextIsReadableMemory(t *testing.T) {
	// The raw memory viewer reads instruction bytes; the first byte of
	// the first instruction must decode back.
	p := prog(isa.Instr{Op: isa.ADDI, Rd: isa.A0, Rs1: isa.Zero, Imm: 1})
	m := mustMachine(t, p, Config{})
	b, err := m.ReadMem(isa.TextBase, 8)
	if err != nil {
		t.Fatal(err)
	}
	var arr [8]byte
	copy(arr[:], b)
	ins, err := isa.Decode(arr)
	if err != nil || ins.Op != isa.ADDI || ins.Imm != 1 {
		t.Errorf("decoded %v, %v", ins, err)
	}
}
