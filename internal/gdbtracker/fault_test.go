package gdbtracker

import (
	"errors"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"easytracker/internal/core"
	"easytracker/internal/mi"
)

const countC = `int count = 0;
int main() {
    for (int i = 0; i < 3; i++) {
        count += 5;
    }
    return 0;
}`

// faultTracker loads src behind a FaultConn; the returned getter always
// yields the connection of the CURRENT session, including the one a
// recovery opens.
func faultTracker(t *testing.T, src string, opts ...core.LoadOption) (*Tracker, func() *mi.FaultConn) {
	t.Helper()
	tr := New()
	var fc *mi.FaultConn
	tr.SetConnWrapper(func(c mi.Conn) mi.Conn {
		fc = mi.NewFaultConn(c)
		return fc
	})
	opts = append(opts, core.WithSource(src))
	if err := tr.LoadProgram("prog.c", opts...); err != nil {
		t.Fatalf("load: %v", err)
	}
	t.Cleanup(func() { _ = tr.Terminate() })
	return tr, func() *mi.FaultConn { return fc }
}

// sessionError pulls the *core.TrackerError out of err, failing if absent.
func sessionError(t *testing.T, err error) *core.TrackerError {
	t.Helper()
	if err == nil {
		t.Fatal("expected a session error, got nil")
	}
	var te *core.TrackerError
	if !errors.As(err, &te) {
		t.Fatalf("error is not a *TrackerError: %v", err)
	}
	return te
}

func TestTimeoutMidResumeRecoversAndReplays(t *testing.T) {
	tr, fc := faultTracker(t, countC, core.WithCommandTimeout(200*time.Millisecond))
	if err := tr.Start(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Watch("::count"); err != nil {
		t.Fatal(err)
	}

	// The debugger goes silent in the middle of a Resume: the response is
	// swallowed, the deadline fires, and recovery rebuilds the session.
	fc().DropResponses(1000)
	err := tr.Resume()
	te := sessionError(t, err)
	if !errors.Is(err, core.ErrCommandTimeout) {
		t.Fatalf("want ErrCommandTimeout, got %v", err)
	}
	if errors.Is(err, core.ErrSessionLost) {
		t.Fatalf("timeout misclassified as session lost: %v", err)
	}
	if te.Op != "Resume" || te.Kind != Kind {
		t.Fatalf("op/kind = %q/%q", te.Op, te.Kind)
	}
	if te.Recovery != core.RecoveryRestarted {
		t.Fatalf("recovery = %v, want restarted", te.Recovery)
	}
	if len(te.Lost) != 0 {
		t.Fatalf("global watchpoint should replay cleanly, lost %v", te.Lost)
	}

	// The fresh session is paused at entry with the journal re-armed:
	// resuming must hit the replayed watchpoint, from the initial value.
	if code, done := tr.ExitCode(); done {
		t.Fatalf("recovered session reports exit %d", code)
	}
	if err := tr.Resume(); err != nil {
		t.Fatalf("resume after recovery: %v", err)
	}
	r := tr.PauseReason()
	if r.Type != core.PauseWatch || r.Variable != "::count" {
		t.Fatalf("pause after recovery = %v, want replayed watch hit", r)
	}
	if got := r.Old.String() + "->" + r.New.String(); got != "0->5" {
		t.Fatalf("watch transition = %s, want 0->5 (fresh inferior)", got)
	}
}

func TestBreakpointSurvivesRecovery(t *testing.T) {
	tr, fc := faultTracker(t, fibC)
	if err := tr.Start(); err != nil {
		t.Fatal(err)
	}
	if err := tr.BreakBeforeFunc("fib"); err != nil {
		t.Fatal(err)
	}

	// Kill the connection between two commands: the next Step dies with a
	// closed pipe — the in-process analog of a debugger crash.
	fc().KillAfterCommands(0)
	err := tr.Step()
	te := sessionError(t, err)
	if !errors.Is(err, core.ErrSessionLost) {
		t.Fatalf("want ErrSessionLost, got %v", err)
	}
	if te.Recovery != core.RecoveryRestarted || len(te.Lost) != 0 {
		t.Fatalf("recovery = %v, lost = %v", te.Recovery, te.Lost)
	}

	if err := tr.Resume(); err != nil {
		t.Fatalf("resume after recovery: %v", err)
	}
	if r := tr.PauseReason(); r.Type != core.PauseBreakpoint || r.Function != "fib" {
		t.Fatalf("pause after recovery = %v, want replayed breakpoint on fib", r)
	}
}

func TestCorruptedResponseRecovers(t *testing.T) {
	tr, fc := faultTracker(t, fibC)
	if err := tr.Start(); err != nil {
		t.Fatal(err)
	}
	fc().CorruptResponses(1)
	err := tr.Step()
	te := sessionError(t, err)
	if !errors.Is(err, core.ErrSessionLost) {
		t.Fatalf("want ErrSessionLost on protocol corruption, got %v", err)
	}
	if te.Recovery != core.RecoveryRestarted {
		t.Fatalf("recovery = %v", te.Recovery)
	}
	if err := tr.Step(); err != nil {
		t.Fatalf("step after recovery: %v", err)
	}
}

func TestSecondFailureRetiresSession(t *testing.T) {
	tr, fc := faultTracker(t, fibC)
	if err := tr.Start(); err != nil {
		t.Fatal(err)
	}

	fc().KillAfterCommands(0)
	te := sessionError(t, tr.Step())
	if te.Recovery != core.RecoveryRestarted {
		t.Fatalf("first failure: recovery = %v", te.Recovery)
	}

	// The one-shot budget is spent: a second failure retires the session
	// instead of looping through restarts.
	fc().KillAfterCommands(0)
	err := tr.Step()
	te = sessionError(t, err)
	if !errors.Is(err, core.ErrSessionLost) {
		t.Fatalf("want ErrSessionLost, got %v", err)
	}
	if te.Recovery != core.RecoveryFailed {
		t.Fatalf("second failure: recovery = %v, want failed", te.Recovery)
	}

	// Listing-1 loops terminate: the dead session reports an exit code.
	code, done := tr.ExitCode()
	if !done || code != -1 {
		t.Fatalf("dead session ExitCode = %d,%v", code, done)
	}
	// And every further call fails fast with the same classification.
	err = tr.Resume()
	te = sessionError(t, err)
	if !errors.Is(err, core.ErrSessionLost) || te.Recovery != core.RecoveryFailed {
		t.Fatalf("call on dead session: %v", err)
	}
	if _, err := tr.CurrentFrame(); !errors.Is(err, core.ErrSessionLost) {
		t.Fatalf("inspection on dead session: %v", err)
	}
	if err := tr.Terminate(); err != nil {
		t.Fatalf("terminate on dead session: %v", err)
	}
}

func TestAsyncTimeoutYieldsEventNotHang(t *testing.T) {
	tr, fc := faultTracker(t, fibC, core.WithCommandTimeout(200*time.Millisecond))
	async := core.NewAsync(tr)
	defer async.Close()

	recv := func(what string) core.AsyncEvent {
		t.Helper()
		select {
		case ev := <-async.Events():
			return ev
		case <-time.After(10 * time.Second):
			t.Fatalf("%s: no event — the tool is hung", what)
			return core.AsyncEvent{}
		}
	}

	async.Start()
	if ev := recv("start"); ev.Err != nil {
		t.Fatal(ev.Err)
	}
	fc().DropResponses(1000)
	async.Resume()
	ev := recv("resume with silent debugger")
	if ev.Err == nil {
		t.Fatal("timed-out Resume reported success")
	}
	te := sessionError(t, ev.Err)
	if !errors.Is(ev.Err, core.ErrCommandTimeout) || te.Recovery != core.RecoveryRestarted {
		t.Fatalf("event error = %v", ev.Err)
	}
	// The wrapped tracker recovered; the async loop keeps working.
	async.Step()
	if ev := recv("step after recovery"); ev.Err != nil {
		t.Fatal(ev.Err)
	}
}

// buildMinigdb compiles cmd/minigdb into a temp dir for subprocess tests.
func buildMinigdb(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "minigdb")
	out, err := exec.Command("go", "build", "-o", bin, "easytracker/cmd/minigdb").CombinedOutput()
	if err != nil {
		t.Skipf("cannot build minigdb: %v\n%s", err, out)
	}
	return bin
}

func TestSubprocessCrashDetectedAndRecovered(t *testing.T) {
	bin := buildMinigdb(t)
	// The child kills itself (exit 3) when the 9th command arrives —
	// enough headroom for recovery's own boot sequence to survive.
	tr := NewSubprocess(bin, "-die-after", "8")
	if err := tr.LoadProgram("prog.c", core.WithSource(fibC)); err != nil {
		t.Fatalf("load: %v", err)
	}
	t.Cleanup(func() { _ = tr.Terminate() })
	if err := tr.Start(); err != nil {
		t.Fatal(err)
	}

	var err error
	for i := 0; i < 100; i++ {
		if err = tr.Step(); err != nil {
			break
		}
		if _, done := tr.ExitCode(); done {
			t.Fatal("inferior finished before the injected crash")
		}
	}
	te := sessionError(t, err)
	if !errors.Is(err, core.ErrSessionLost) {
		t.Fatalf("want ErrSessionLost, got %v", err)
	}
	if te.Recovery != core.RecoveryRestarted {
		t.Fatalf("recovery = %v, want restarted", te.Recovery)
	}
	// Liveness detection quotes the child's wait status as evidence.
	if !strings.Contains(err.Error(), "exit status 3") {
		t.Fatalf("error does not carry the child's exit status: %v", err)
	}
	// The crash report carries the black box: the MI traffic that led up
	// to the crash and the session layer's reaping of the child.
	if len(te.Trail) == 0 {
		t.Fatal("crash report carries no flight-recorder dump")
	}
	dump := te.FlightDump()
	if !strings.Contains(dump, "mi>") || !strings.Contains(dump, "exit status 3") {
		t.Fatalf("flight-recorder dump lacks MI traffic or reap status:\n%s", dump)
	}
	// The respawned debugger answers again.
	if err := tr.Step(); err != nil {
		t.Fatalf("step after respawn: %v", err)
	}
}
