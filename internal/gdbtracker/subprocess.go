package gdbtracker

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"easytracker/internal/asm"
	"easytracker/internal/core"
	"easytracker/internal/isa"
	"easytracker/internal/minic"
)

// NewSubprocess returns a tracker that runs MiniGDB as a real child process
// (the paper's Fig. 4 exactly: tracker and debugger in separate processes,
// connected by an OS pipe carrying MI records). minigdbPath is the compiled
// cmd/minigdb binary; extra args (e.g. the fault-injection -die-after flag)
// are passed to every spawn, including respawns by session recovery. The
// in-process pipe used by New is byte-compatible; subprocess mode exists
// for fidelity and for debugging the debugger.
//
// Limitation: the inferior's standard input cannot be forwarded over the
// MI connection; programs using read_int/read_char need the in-process
// tracker.
func NewSubprocess(minigdbPath string, args ...string) *Tracker {
	t := New()
	t.subproc = minigdbPath
	t.subprocArgs = args
	return t
}

// loadSubprocess compiles the program to a temporary image, spawns minigdb
// on it, and attaches the MI client to the child's stdio. The image is kept
// on disk until Terminate so session recovery can respawn the debugger.
func (t *Tracker) loadSubprocess(path string, cfg core.LoadConfig) error {
	src := cfg.Source
	if src == "" {
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("gdbtracker: %w", err)
		}
		src = string(data)
	}
	var prog *isa.Program
	var err error
	switch {
	case strings.HasSuffix(path, ".s") || strings.HasSuffix(path, ".asm"):
		prog, err = asm.Assemble(path, src)
	default:
		prog, err = minic.Compile(path, src)
	}
	if err != nil {
		return err
	}
	img, err := json.Marshal(prog)
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "et-mobj-*")
	if err != nil {
		return err
	}
	mobj := filepath.Join(dir, filepath.Base(path)+".mobj")
	if err := os.WriteFile(mobj, img, 0o644); err != nil {
		_ = os.RemoveAll(dir)
		return err
	}
	t.childDir = dir
	t.mobjPath = mobj
	t.cfg = cfg
	t.prog = prog
	t.file = prog.SourceFile
	t.source = prog.Source
	t.initObs()

	if err := t.bootSubprocess(); err != nil {
		_ = os.RemoveAll(dir)
		t.childDir, t.mobjPath = "", ""
		return err
	}
	t.loaded = true
	return nil
}

// closeSubprocess reaps the child (if teardown has not already) and removes
// the serialized image.
func (t *Tracker) closeSubprocess() {
	if t.child != nil {
		_ = t.child.Wait()
		t.child = nil
	}
	if t.childDir != "" {
		_ = os.RemoveAll(t.childDir)
		t.childDir = ""
		t.mobjPath = ""
	}
}
