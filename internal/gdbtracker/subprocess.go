package gdbtracker

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"easytracker/internal/asm"
	"easytracker/internal/core"
	"easytracker/internal/isa"
	"easytracker/internal/mi"
	"easytracker/internal/minic"
)

// NewSubprocess returns a tracker that runs MiniGDB as a real child process
// (the paper's Fig. 4 exactly: tracker and debugger in separate processes,
// connected by an OS pipe carrying MI records). minigdbPath is the compiled
// cmd/minigdb binary. The in-process pipe used by New is byte-compatible;
// subprocess mode exists for fidelity and for debugging the debugger.
//
// Limitation: the inferior's standard input cannot be forwarded over the
// MI connection; programs using read_int/read_char need the in-process
// tracker.
func NewSubprocess(minigdbPath string) *Tracker {
	t := New()
	t.subproc = minigdbPath
	return t
}

// loadSubprocess compiles the program to a temporary image, spawns minigdb
// on it, and attaches the MI client to the child's stdio.
func (t *Tracker) loadSubprocess(path string, cfg core.LoadConfig) error {
	src := cfg.Source
	if src == "" {
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("gdbtracker: %w", err)
		}
		src = string(data)
	}
	var prog *isa.Program
	var err error
	switch {
	case strings.HasSuffix(path, ".s") || strings.HasSuffix(path, ".asm"):
		prog, err = asm.Assemble(path, src)
	default:
		prog, err = minic.Compile(path, src)
	}
	if err != nil {
		return err
	}
	img, err := json.Marshal(prog)
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "et-mobj-*")
	if err != nil {
		return err
	}
	mobj := filepath.Join(dir, filepath.Base(path)+".mobj")
	if err := os.WriteFile(mobj, img, 0o644); err != nil {
		return err
	}

	cmd := exec.Command(t.subproc)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("gdbtracker: spawning minigdb: %w", err)
	}
	t.child = cmd
	t.childDir = dir

	conn := mi.NewStdioConn(stdout, stdin, nil)
	// Consume the greeting prompt.
	if line, err := conn.Recv(); err != nil || line != "(gdb)" {
		_ = cmd.Process.Kill()
		return fmt.Errorf("gdbtracker: bad minigdb greeting %q (%v)", line, err)
	}
	t.client = mi.NewClient(conn)
	if _, err := t.client.Send("-file-exec-and-symbols", mobj); err != nil {
		_ = cmd.Process.Kill()
		return err
	}
	t.cfg = cfg
	t.prog = prog
	t.file = prog.SourceFile
	t.source = prog.Source
	t.loaded = true
	return nil
}

// closeSubprocess reaps the child after -gdb-exit.
func (t *Tracker) closeSubprocess() {
	if t.child != nil {
		_ = t.child.Wait()
		t.child = nil
	}
	if t.childDir != "" {
		_ = os.RemoveAll(t.childDir)
		t.childDir = ""
	}
}
