package gdbtracker

import (
	"testing"

	"easytracker/internal/core"
)

// TestWatchDoubleGlobal checks typed rendering of watch old/new values for
// doubles across the MI pipe.
func TestWatchDoubleGlobal(t *testing.T) {
	src := `double ratio = 0.0;
int main() {
    ratio = 0.5;
    ratio = 2.25;
    return 0;
}`
	tr := start(t, src)
	if err := tr.Watch("::ratio"); err != nil {
		t.Fatal(err)
	}
	var vals []float64
	for {
		if err := tr.Resume(); err != nil {
			t.Fatal(err)
		}
		if _, done := tr.ExitCode(); done {
			break
		}
		r := tr.PauseReason()
		if r.Type != core.PauseWatch {
			t.Fatalf("pause = %v", r)
		}
		if f, ok := r.New.Float(); ok {
			vals = append(vals, f)
		} else {
			t.Errorf("new value not a float: %s", r.New)
		}
	}
	if len(vals) != 2 || vals[0] != 0.5 || vals[1] != 2.25 {
		t.Errorf("vals = %v", vals)
	}
}

// TestWatchCharGlobal checks char-typed watches.
func TestWatchCharGlobal(t *testing.T) {
	src := `char c = 'a';
int main() {
    c = 'b';
    return 0;
}`
	tr := start(t, src)
	if err := tr.Watch("::c"); err != nil {
		t.Fatal(err)
	}
	if err := tr.Resume(); err != nil {
		t.Fatal(err)
	}
	r := tr.PauseReason()
	if r.Type != core.PauseWatch {
		t.Fatalf("pause = %v", r)
	}
	oldV, _ := r.Old.Int()
	newV, _ := r.New.Int()
	if oldV != 'a' || newV != 'b' {
		t.Errorf("old/new = %d/%d", oldV, newV)
	}
}

// TestWatchPointerGlobal checks pointer-typed watches render as addresses.
func TestWatchPointerGlobal(t *testing.T) {
	src := `int x = 1;
int* p = 0;
int main() {
    p = &x;
    return 0;
}`
	tr := start(t, src)
	if err := tr.Watch("::p"); err != nil {
		t.Fatal(err)
	}
	if err := tr.Resume(); err != nil {
		t.Fatal(err)
	}
	r := tr.PauseReason()
	if r.Type != core.PauseWatch {
		t.Fatalf("pause = %v", r)
	}
	// Old: null pointer -> INVALID; new: an address.
	if r.Old.Kind != core.Invalid {
		t.Errorf("old = %+v", r.Old)
	}
	if v, ok := r.New.Int(); !ok || v == 0 {
		t.Errorf("new = %+v", r.New)
	}
}

// TestNextOverMI drives step-over through the tracker.
func TestNextOverMI(t *testing.T) {
	tr := start(t, fibC)
	if err := tr.Next(); err != nil { // over fib(4)
		t.Fatal(err)
	}
	fr, err := tr.CurrentFrame()
	if err != nil {
		t.Fatal(err)
	}
	if fr.Name != "main" || fr.Line != 9 {
		t.Errorf("next landed at %s:%d", fr.Name, fr.Line)
	}
	if v, _ := fr.Lookup("r").Value.Int(); v != 3 {
		t.Errorf("r = %s", fr.Lookup("r").Value)
	}
}
