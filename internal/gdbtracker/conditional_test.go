package gdbtracker

import (
	"errors"
	"testing"

	"easytracker/internal/core"
)

// Conditional-probe semantics on the GDB-style tracker: conditions are
// pre-validated client-side, rendered as `-break-insert -c` flags over the
// MI wire, and evaluated by the VM-side debugger against the paused frame.

// derefInt unwraps a possibly-ref variable value to its integer payload.
func derefInt(v *core.Value) (int64, bool) {
	if v == nil {
		return 0, false
	}
	if d := v.Deref(); d != nil {
		v = d
	}
	return v.Int()
}

func TestConditionalLineBreak(t *testing.T) {
	tr := start(t, fibC)
	if err := tr.BreakBeforeLine("", 2, core.WithCondition("n == 2")); err != nil {
		t.Fatalf("arm: %v", err)
	}
	hits := 0
	for i := 0; i < 1000; i++ {
		if err := tr.Resume(); err != nil {
			t.Fatalf("resume: %v", err)
		}
		if _, done := tr.ExitCode(); done {
			break
		}
		hits++
		fr, err := tr.CurrentFrame()
		if err != nil {
			t.Fatalf("frame: %v", err)
		}
		v := fr.Lookup("n")
		if v == nil {
			t.Fatal("no n at conditional pause")
		}
		if n, ok := derefInt(v.Value); !ok || n != 2 {
			t.Errorf("paused with n = %d (ok=%v), want 2", n, ok)
		}
	}
	// fib(4) reaches fib(2) exactly twice.
	if hits != 2 {
		t.Errorf("hits = %d, want 2", hits)
	}
}

func TestConditionalFuncBreak(t *testing.T) {
	tr := start(t, fibC)
	if err := tr.BreakBeforeFunc("fib", core.WithCondition("n == 1")); err != nil {
		t.Fatalf("arm: %v", err)
	}
	hits := 0
	for i := 0; i < 1000; i++ {
		if err := tr.Resume(); err != nil {
			t.Fatalf("resume: %v", err)
		}
		if _, done := tr.ExitCode(); done {
			break
		}
		hits++
		fr, _ := tr.CurrentFrame()
		if v := fr.Lookup("n"); v != nil {
			if n, ok := derefInt(v.Value); !ok || n != 1 {
				t.Errorf("paused with n = %d (ok=%v), want 1", n, ok)
			}
		}
	}
	// fib(4) calls fib(1) exactly three times.
	if hits != 3 {
		t.Errorf("hits = %d, want 3", hits)
	}
}

func TestConditionalBreakBadQuery(t *testing.T) {
	tr := start(t, fibC)
	err := tr.BreakBeforeLine("", 2, core.WithCondition("n =="))
	if err == nil {
		t.Fatal("expected error for bad condition")
	}
	if !errors.Is(err, core.ErrBadQuery) {
		t.Errorf("error %v does not unwrap to ErrBadQuery", err)
	}
	var te *core.TrackerError
	if !errors.As(err, &te) || te.Op != "BreakBeforeLine" {
		t.Errorf("error %v is not a TrackerError for BreakBeforeLine", err)
	}
}

func TestConditionalIgnoreHits(t *testing.T) {
	tr := start(t, fibC)
	if err := tr.BreakBeforeLine("", 2, core.WithIgnoreHits(3)); err != nil {
		t.Fatalf("arm: %v", err)
	}
	hits := 0
	for i := 0; i < 1000; i++ {
		if err := tr.Resume(); err != nil {
			t.Fatalf("resume: %v", err)
		}
		if _, done := tr.ExitCode(); done {
			break
		}
		hits++
	}
	// fib is entered 9 times for fib(4); the first 3 line-2 hits are eaten.
	if hits != 6 {
		t.Errorf("hits = %d, want 6", hits)
	}
}

func TestConditionalOneShot(t *testing.T) {
	tr := start(t, fibC)
	if err := tr.BreakBeforeLine("", 2, core.WithOneShot()); err != nil {
		t.Fatalf("arm: %v", err)
	}
	hits := 0
	for i := 0; i < 1000; i++ {
		if err := tr.Resume(); err != nil {
			t.Fatalf("resume: %v", err)
		}
		if _, done := tr.ExitCode(); done {
			break
		}
		hits++
	}
	if hits != 1 {
		t.Errorf("hits = %d, want 1 (one-shot)", hits)
	}
}

func TestConditionalTrackEventFilter(t *testing.T) {
	tr := start(t, fibC)
	if err := tr.TrackFunction("fib", core.WithCondition(`event == "return"`)); err != nil {
		t.Fatalf("arm: %v", err)
	}
	calls, rets := 0, 0
	for i := 0; i < 1000; i++ {
		if err := tr.Resume(); err != nil {
			t.Fatalf("resume: %v", err)
		}
		if _, done := tr.ExitCode(); done {
			break
		}
		switch tr.PauseReason().Type {
		case core.PauseCall:
			calls++
		case core.PauseReturn:
			rets++
		}
	}
	if calls != 0 {
		t.Errorf("calls = %d, want 0 (condition selects returns only)", calls)
	}
	if rets != 9 {
		t.Errorf("returns = %d, want 9", rets)
	}
}

// TestConditionalWatch pins the write-trap semantics: the VM watchpoint
// fires per write, so a gated write resumes silently and the next reported
// hit carries that write's own old/new pair (unlike MiniPy's polling watch,
// whose reference snapshot freezes while gated).
func TestConditionalWatch(t *testing.T) {
	src := `int count = 0;
int main() {
    for (int i = 0; i < 3; i++) {
        count += 5;
    }
    return 0;
}`
	tr := start(t, src)
	if err := tr.Watch("::count", core.WithCondition("count > 5")); err != nil {
		t.Fatalf("arm: %v", err)
	}
	var transitions []string
	for i := 0; i < 1000; i++ {
		if err := tr.Resume(); err != nil {
			t.Fatalf("resume: %v", err)
		}
		if _, done := tr.ExitCode(); done {
			break
		}
		r := tr.PauseReason()
		if r.Type != core.PauseWatch || r.Variable != "::count" {
			t.Fatalf("pause = %v", r)
		}
		transitions = append(transitions, r.Old.String()+"->"+r.New.String())
	}
	// Writes are 0->5, 5->10, 10->15; the first is outside the window.
	want := []string{"5->10", "10->15"}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Errorf("transition %d = %s, want %s", i, transitions[i], want[i])
		}
	}
}

func TestOneShotWatchUnsupported(t *testing.T) {
	tr := start(t, fibC)
	err := tr.Watch("::count", core.WithOneShot())
	if err == nil {
		t.Fatal("expected error: MI -break-watch has no one-shot form")
	}
	if !errors.Is(err, core.ErrUnsupported) {
		t.Errorf("error %v does not unwrap to ErrUnsupported", err)
	}
}

func TestArmUnifiedSurface(t *testing.T) {
	tr := start(t, fibC)
	if err := tr.Arm(core.LineProbe("", 2, core.WithCondition("n == 0"))); err != nil {
		t.Fatalf("Arm: %v", err)
	}
	hits := 0
	for i := 0; i < 1000; i++ {
		if err := tr.Resume(); err != nil {
			t.Fatalf("resume: %v", err)
		}
		if _, done := tr.ExitCode(); done {
			break
		}
		hits++
	}
	if hits != 2 {
		t.Errorf("hits = %d, want 2 (fib(0) is reached twice)", hits)
	}
	if err := tr.Arm(core.Probe{Kind: core.ProbeKind(99)}); !errors.Is(err, core.ErrUnsupported) {
		t.Errorf("unknown probe kind: err = %v, want ErrUnsupported", err)
	}
}

func TestConditionalCapability(t *testing.T) {
	tr := New()
	caps := core.CapabilitiesOf(tr)
	if !caps.ConditionalBreak {
		t.Error("GDB tracker should advertise ConditionalBreak")
	}
}
