package gdbtracker

import (
	"errors"
	"fmt"
	"os/exec"

	"easytracker/internal/core"
	"easytracker/internal/mi"
)

// This file is the hardened session layer between the tracker and the
// MiniGDB transport: per-round-trip deadlines (core.WithCommandTimeout),
// liveness detection on the subprocess, a journal of everything the tool
// armed, and automatic one-shot recovery — on a crash, hang or protocol
// corruption the debugger is restarted, the journal is replayed, and the
// caller gets a *core.TrackerError describing what was lost.

// SetConnWrapper installs a hook applied to every connection the tracker
// opens — including the ones recovery opens. It exists for fault-injection
// tests (wrap with mi.NewFaultConn) and diagnostics (logging transports).
// In-process mode only; must be called before LoadProgram.
func (t *Tracker) SetConnWrapper(wrap func(mi.Conn) mi.Conn) { t.wrapConn = wrap }

// setTransport wires the client behind the configured command deadline and
// the observability wire tap. The tap is outermost, so it sees round trips
// exactly as the tracker does — including deadline expiries and transport
// deaths the DeadlineTransport below it produces.
func (t *Tracker) setTransport(c *mi.Client) {
	var trans mi.Transport = c
	if t.cfg.CommandTimeout > 0 {
		trans = &mi.DeadlineTransport{T: trans, Timeout: t.cfg.CommandTimeout}
	}
	if t.obs != nil {
		trans = &mi.TapTransport{T: trans, Tap: t.miTap, Tracer: t.tracer}
	}
	t.trans = trans
}

// bootInProcess starts a fresh in-process MI server for the loaded program
// and connects the transport to it.
func (t *Tracker) bootInProcess() error {
	srv := mi.NewServer(t.prog)
	srv.SetStdin(t.cfg.Stdin)
	cConn, sConn := mi.Pipe()
	go func() { _ = srv.Serve(sConn) }()
	var conn mi.Conn = cConn
	if t.wrapConn != nil {
		conn = t.wrapConn(conn)
	}
	t.setTransport(mi.NewClient(conn))
	return nil
}

// bootSubprocess spawns the minigdb binary, consumes its greeting and loads
// the serialized program image prepared by loadSubprocess.
func (t *Tracker) bootSubprocess() error {
	cmd := exec.Command(t.subproc, t.subprocArgs...)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("gdbtracker: spawning minigdb: %w", err)
	}
	conn := mi.NewStdioConn(stdout, stdin, nil)
	if line, err := conn.Recv(); err != nil || line != "(gdb)" {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		return fmt.Errorf("gdbtracker: bad minigdb greeting %q (%v)", line, err)
	}
	t.child = cmd
	t.setTransport(mi.NewClient(conn))
	if _, err := t.sendRaw("-file-exec-and-symbols", t.mobjPath); err != nil {
		t.teardown()
		return err
	}
	return nil
}

// reboot builds a fresh session for the already-loaded program.
func (t *Tracker) reboot() error {
	if t.subproc != "" {
		return t.bootSubprocess()
	}
	return t.bootInProcess()
}

// teardown closes the transport and reaps the subprocess, returning the
// child's wait status ("exit status 3", "signal: killed", ...) when there
// was one — the liveness evidence quoted in session-lost errors.
func (t *Tracker) teardown() string {
	if t.trans != nil {
		_ = t.trans.Close()
	}
	status := ""
	if t.child != nil {
		// If the child already crashed, Kill is a no-op and Wait
		// returns the real exit state; if it is wedged (deadline
		// path), Kill ends it.
		_ = t.child.Process.Kill()
		err := t.child.Wait()
		if t.child.ProcessState != nil {
			status = t.child.ProcessState.String()
		} else if err != nil {
			status = err.Error()
		}
		t.child = nil
	}
	return status
}

// classifySessionErr maps a transport failure onto the public sentinels,
// folding in the subprocess wait status when one exists.
func classifySessionErr(err error, childStatus string) error {
	if errors.Is(err, mi.ErrTimeout) {
		return fmt.Errorf("%w: %w", core.ErrCommandTimeout, err)
	}
	if childStatus != "" {
		return fmt.Errorf("%w: %w (minigdb: %s)", core.ErrSessionLost, err, childStatus)
	}
	return fmt.Errorf("%w: %w", core.ErrSessionLost, err)
}

// recoverSession handles a transport failure during op: restart the
// debugger once, replay the journal, and return a *core.TrackerError
// describing the failure, the recovery outcome and anything lost. The
// tracker remains usable after a successful recovery — paused at the
// inferior's entry point with all journal entries re-armed.
func (t *Tracker) recoverSession(op string, cause error) error {
	te := &core.TrackerError{
		Op: op, Kind: Kind,
		File: t.file, Line: t.curLine,
	}
	wasStarted := t.started
	wasImplicit := t.implicit
	t.obs.Event("session", fmt.Sprintf("%s failed at line %d: %v", op, t.curLine, cause))
	status := t.teardown()
	te.Err = classifySessionErr(cause, status)
	if status != "" {
		t.obs.Event("session", "minigdb reaped: "+status)
	}

	if t.recovered {
		// The one-shot recovery budget is spent: declare the session
		// dead instead of thrashing through restart loops.
		t.obs.Event("session", "recovery budget spent; retiring session")
		t.markDead()
		te.Recovery = core.RecoveryFailed
		te.Trail = t.obs.EventDump()
		return te
	}
	t.recovered = true
	t.recovering = true
	defer func() { t.recovering = false }()
	t.obs.Counter(core.CtrRecoveries).Inc()

	if err := t.reboot(); err != nil {
		t.obs.Event("session", "restart failed: "+err.Error())
		t.markDead()
		te.Recovery = core.RecoveryFailed
		te.Err = fmt.Errorf("%w; restart failed: %v", te.Err, err)
		te.Trail = t.obs.EventDump()
		return te
	}

	// Reset per-session state: the new inferior starts from scratch.
	t.bps = map[int]bpInfo{}
	t.watches = map[int]string{}
	t.state, t.stale = nil, nil
	t.exited = false
	t.exitCode = 0
	t.started = false
	t.implicit = false

	if wasStarted {
		if err := t.Start(); err != nil {
			t.obs.Event("session", "restart failed: "+err.Error())
			t.markDead()
			te.Recovery = core.RecoveryFailed
			te.Err = fmt.Errorf("%w; restart failed: %v", te.Err, err)
			te.Trail = t.obs.EventDump()
			return te
		}
		// If the original session was started implicitly (a breakpoint
		// call before Start), keep that pending so a later explicit
		// Start still succeeds.
		t.implicit = wasImplicit
		te.Lost = t.replayJournal()
	}
	// Execution progress is always lost: the inferior is back at entry.
	t.obs.Event("session", fmt.Sprintf(
		"restarted; journal replayed (%d armed, %d lost)", len(t.journal), len(te.Lost)))
	te.Recovery = core.RecoveryRestarted
	te.Trail = t.obs.EventDump()
	return te
}

// replayJournal re-arms every journaled breakpoint, tracked function and
// watchpoint against the fresh session, reporting the ones that could not
// be re-established (e.g. a watchpoint on a local whose function has no
// live activation at the entry point).
func (t *Tracker) replayJournal() (lost []string) {
	for _, p := range t.journal {
		if err := t.armProbe(p); err != nil {
			lost = append(lost, p.String())
			// The flight recorder keeps the evidence of what the
			// recovered session is missing — and why re-arming failed.
			t.obs.Event("lost", p.String()+": "+err.Error())
			t.obs.Counter(core.CtrLostItems).Inc()
		}
	}
	return lost
}

// markDead retires the session permanently: control and inspection calls
// fail with ErrSessionLost, and ExitCode reports termination so Listing-1
// style loops come to an end.
func (t *Tracker) markDead() {
	t.obs.Event("session", "session retired; ExitCode reports -1/done")
	t.dead = true
	t.exited = true
	t.exitCode = -1
}

// sessionDead is the error every call on a dead session gets. It carries
// the flight-recorder dump: the recorder outlives the session, so the
// postmortem trail stays available to every later caller.
func (t *Tracker) sessionDead(op string) error {
	return &core.TrackerError{
		Op: op, Kind: Kind, File: t.file, Line: t.curLine,
		Recovery: core.RecoveryFailed,
		Trail:    t.obs.EventDump(),
		Err:      fmt.Errorf("%w: session is down", core.ErrSessionLost),
	}
}
