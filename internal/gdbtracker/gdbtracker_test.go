package gdbtracker

import (
	"errors"
	"strings"
	"testing"

	"easytracker/internal/core"
)

const fibC = `int fib(int n) {
    if (n < 2) {
        return n;
    }
    return fib(n - 1) + fib(n - 2);
}
int main() {
    int r = fib(4);
    printf("%d\n", r);
    return 0;
}`

const heapC = `struct node {
    int v;
    struct node* next;
};
int main() {
    int* xs = (int*)malloc(3 * sizeof(int));
    xs[0] = 10;
    xs[1] = 20;
    xs[2] = 30;
    struct node* n = (struct node*)malloc(sizeof(struct node));
    n->v = 7;
    n->next = 0;
    free((char*)n);
    return 0;
}`

func load(t *testing.T, src string, opts ...core.LoadOption) *Tracker {
	t.Helper()
	tr := New()
	opts = append(opts, core.WithSource(src))
	if err := tr.LoadProgram("prog.c", opts...); err != nil {
		t.Fatalf("load: %v", err)
	}
	t.Cleanup(func() { _ = tr.Terminate() })
	return tr
}

func start(t *testing.T, src string, opts ...core.LoadOption) *Tracker {
	t.Helper()
	tr := load(t, src, opts...)
	if err := tr.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	return tr
}

func TestRegistered(t *testing.T) {
	tr, err := core.NewTracker(Kind)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tr.(*Tracker); !ok {
		t.Fatalf("got %T", tr)
	}
	// Interface assertions for the GDB-specific extensions.
	if _, ok := tr.(core.RegisterInspector); !ok {
		t.Error("not a RegisterInspector")
	}
	if _, ok := tr.(core.MemoryInspector); !ok {
		t.Error("not a MemoryInspector")
	}
	if _, ok := tr.(core.HeapInspector); !ok {
		t.Error("not a HeapInspector")
	}
}

func TestStartAndEntry(t *testing.T) {
	tr := start(t, fibC)
	if r := tr.PauseReason(); r.Type != core.PauseEntry {
		t.Errorf("reason = %v", r)
	}
	_, line := tr.Position()
	if line != 8 {
		t.Errorf("entry line = %d, want 8", line)
	}
	if _, ok := tr.ExitCode(); ok {
		t.Error("exit code set at entry")
	}
}

func TestListing1LoopOnC(t *testing.T) {
	// The paper's Listing 1 control loop, language-agnostic: step through
	// every line and read the frame each time.
	var out strings.Builder
	tr := start(t, fibC, core.WithStdout(&out))
	lines := 0
	for {
		if _, done := tr.ExitCode(); done {
			break
		}
		if _, err := tr.CurrentFrame(); err != nil {
			t.Fatalf("frame: %v", err)
		}
		if err := tr.Step(); err != nil {
			t.Fatalf("step: %v", err)
		}
		lines++
		if lines > 300 {
			t.Fatal("runaway")
		}
	}
	if out.String() != "3\n" {
		t.Errorf("output = %q", out.String())
	}
	if lines < 20 {
		t.Errorf("stepped only %d lines", lines)
	}
}

func TestTrackFunctionViaRetScan(t *testing.T) {
	tr := start(t, fibC)
	if err := tr.TrackFunction("fib"); err != nil {
		t.Fatal(err)
	}
	calls, rets := 0, 0
	var lastRet int64
	for {
		if err := tr.Resume(); err != nil {
			t.Fatal(err)
		}
		if _, done := tr.ExitCode(); done {
			break
		}
		switch r := tr.PauseReason(); r.Type {
		case core.PauseCall:
			calls++
			// Arguments inspectable at entry.
			fr, err := tr.CurrentFrame()
			if err != nil {
				t.Fatal(err)
			}
			if fr.Name != "fib" || fr.Lookup("n") == nil {
				t.Fatalf("entry frame: %s", fr)
			}
		case core.PauseReturn:
			rets++
			if v, ok := r.ReturnValue.Int(); ok {
				lastRet = v
			}
		default:
			t.Fatalf("unexpected pause %v", r)
		}
	}
	if calls != 9 || rets != 9 {
		t.Errorf("calls=%d rets=%d, want 9/9", calls, rets)
	}
	if lastRet != 3 {
		t.Errorf("last return = %d, want fib(4)=3", lastRet)
	}
}

func TestTrackUnknownFunction(t *testing.T) {
	tr := start(t, fibC)
	if err := tr.TrackFunction("nope"); !errors.Is(err, core.ErrUnknownFunction) {
		t.Errorf("err = %v", err)
	}
	if err := tr.BreakBeforeFunc("nope"); !errors.Is(err, core.ErrUnknownFunction) {
		t.Errorf("err = %v", err)
	}
	if err := tr.BreakBeforeLine("", 9999); !errors.Is(err, core.ErrBadLine) {
		t.Errorf("err = %v", err)
	}
}

func TestBreakBeforeFuncMaxDepth(t *testing.T) {
	tr := start(t, fibC)
	if err := tr.BreakBeforeFunc("fib", core.WithMaxDepth(2)); err != nil {
		t.Fatal(err)
	}
	hits := 0
	for {
		if err := tr.Resume(); err != nil {
			t.Fatal(err)
		}
		if _, done := tr.ExitCode(); done {
			break
		}
		hits++
		fr, _ := tr.CurrentFrame()
		if fr.Depth >= 2 {
			t.Errorf("paused at depth %d", fr.Depth)
		}
	}
	if hits != 1 {
		t.Errorf("hits = %d, want 1", hits)
	}
}

func TestBreakpointBeforeStartImplicitRun(t *testing.T) {
	tr := load(t, fibC)
	// Paper scripts may set breakpoints before start().
	if err := tr.BreakBeforeFunc("fib"); err != nil {
		t.Fatal(err)
	}
	if err := tr.Start(); err != nil {
		t.Fatalf("explicit start after implicit: %v", err)
	}
	if r := tr.PauseReason(); r.Type != core.PauseEntry {
		t.Errorf("reason = %v", r)
	}
	if err := tr.Resume(); err != nil {
		t.Fatal(err)
	}
	if r := tr.PauseReason(); r.Type != core.PauseBreakpoint || r.Function != "fib" {
		t.Errorf("reason = %v", r)
	}
}

func TestWatchGlobalOverPipe(t *testing.T) {
	src := `int count = 0;
int main() {
    for (int i = 0; i < 3; i++) {
        count += 5;
    }
    return 0;
}`
	tr := start(t, src)
	if err := tr.Watch("::count"); err != nil {
		t.Fatal(err)
	}
	var transitions []string
	for {
		if err := tr.Resume(); err != nil {
			t.Fatal(err)
		}
		if _, done := tr.ExitCode(); done {
			break
		}
		r := tr.PauseReason()
		if r.Type != core.PauseWatch || r.Variable != "::count" {
			t.Fatalf("pause = %v", r)
		}
		transitions = append(transitions, r.Old.String()+"->"+r.New.String())
	}
	want := []string{"0->5", "5->10", "10->15"}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v", transitions)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Errorf("transition %d = %s, want %s", i, transitions[i], want[i])
		}
	}
}

func TestWatchUnknown(t *testing.T) {
	tr := start(t, fibC)
	if err := tr.Watch("::nosuch"); !errors.Is(err, core.ErrUnknownVariable) {
		t.Errorf("err = %v", err)
	}
}

func TestStackAndAliasingThroughPipe(t *testing.T) {
	src := `int g = 1;
void touch(int* p) {
    *p = 42;
    return;
}
int main() {
    touch(&g);
    return 0;
}`
	tr := start(t, src)
	if err := tr.BreakBeforeLine("", 4); err != nil { // return; inside touch
		t.Fatal(err)
	}
	if err := tr.Resume(); err != nil {
		t.Fatal(err)
	}
	st, err := tr.State()
	if err != nil {
		t.Fatal(err)
	}
	if st.Frame.Name != "touch" || st.Frame.Parent.Name != "main" {
		t.Fatalf("stack: %s", st.Frame.Backtrace())
	}
	p := st.Frame.Lookup("p").Value
	if p.Kind != core.Ref {
		t.Fatalf("p = %+v", p)
	}
	var g *core.Value
	for _, gv := range st.Globals {
		if gv.Name == "g" {
			g = gv.Value
		}
	}
	// The pipe serialization must preserve aliasing: *p IS g.
	if p.Deref() != g {
		t.Error("aliasing lost across the MI pipe")
	}
	if v, _ := g.Int(); v != 42 {
		t.Errorf("g = %s", g)
	}
}

func TestHeapTrackingEndToEnd(t *testing.T) {
	tr := start(t, heapC, core.WithHeapTracking())
	if err := tr.BreakBeforeLine("", 14); err != nil { // return 0;
		t.Fatal(err)
	}
	if err := tr.Resume(); err != nil {
		t.Fatal(err)
	}
	blocks, err := tr.HeapBlocks()
	if err != nil {
		t.Fatal(err)
	}
	// xs (24 bytes) is live; n (16 bytes) was freed.
	if len(blocks) != 1 {
		t.Fatalf("blocks = %v", blocks)
	}
	for _, size := range blocks {
		if size != 24 {
			t.Errorf("block size = %d, want 24", size)
		}
	}
	// Inspection expands xs into [10, 20, 30].
	fr, err := tr.CurrentFrame()
	if err != nil {
		t.Fatal(err)
	}
	xs := fr.Lookup("xs").Value
	if xs.Kind != core.Ref {
		t.Fatalf("xs = %+v", xs)
	}
	arr := xs.Deref()
	if arr.Kind != core.List || len(arr.Elems()) != 3 {
		t.Fatalf("xs -> %s", arr)
	}
	if v, _ := arr.Elems()[2].Int(); v != 30 {
		t.Errorf("xs[2] = %s", arr.Elems()[2])
	}
	// The freed node pointer is dangling.
	n := fr.Lookup("n").Value
	if n.Kind != core.Ref && n.Kind != core.Invalid {
		t.Errorf("n after free = %v", n.Kind)
	}
}

func TestWithoutHeapTrackingNoExpansion(t *testing.T) {
	tr := start(t, heapC) // no WithHeapTracking
	if err := tr.BreakBeforeLine("", 14); err != nil {
		t.Fatal(err)
	}
	if err := tr.Resume(); err != nil {
		t.Fatal(err)
	}
	fr, err := tr.CurrentFrame()
	if err != nil {
		t.Fatal(err)
	}
	xs := fr.Lookup("xs").Value
	if xs.Kind != core.Ref {
		t.Fatalf("xs = %+v", xs)
	}
	if xs.Deref().Kind == core.List {
		t.Error("heap array expanded without interposition tracking")
	}
	blocks, err := tr.HeapBlocks()
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) != 0 {
		t.Errorf("blocks without tracking = %v", blocks)
	}
}

func TestRegistersAndMemory(t *testing.T) {
	tr := start(t, fibC)
	regs, err := tr.Registers()
	if err != nil {
		t.Fatal(err)
	}
	if regs["sp"] == 0 || regs["pc"] == 0 {
		t.Errorf("regs = %v", regs)
	}
	segs := tr.MemorySegments()
	if len(segs) != 4 {
		t.Fatalf("segments = %v", segs)
	}
	mem, err := tr.ValueAt(segs[0].Start, 16)
	if err != nil || len(mem) != 16 {
		t.Errorf("ValueAt: %v len %d", err, len(mem))
	}
}

func TestAssemblyInferior(t *testing.T) {
	// The GDB tracker controls assembly programs too (paper: "written in
	// C, or assembly").
	asmSrc := `    .data
msg: .asciz "asm!"
    .text
    .global main
main:
    la a0, msg
    li a7, 2
    ecall
    li a0, 7
    li a7, 0
    ecall
`
	var out strings.Builder
	tr := New()
	if err := tr.LoadProgram("prog.s", core.WithSource(asmSrc), core.WithStdout(&out)); err != nil {
		t.Fatalf("load asm: %v", err)
	}
	defer tr.Terminate()
	if err := tr.Start(); err != nil {
		t.Fatal(err)
	}
	steps := 0
	for {
		if _, done := tr.ExitCode(); done {
			break
		}
		if err := tr.Step(); err != nil {
			t.Fatal(err)
		}
		steps++
		if steps > 50 {
			t.Fatal("runaway")
		}
	}
	if out.String() != "asm!" {
		t.Errorf("output = %q", out.String())
	}
	if code, _ := tr.ExitCode(); code != 7 {
		t.Errorf("exit = %d", code)
	}
	if steps < 5 {
		t.Errorf("asm stepping too coarse: %d steps", steps)
	}
}

func TestMultiRetAssemblyTracking(t *testing.T) {
	// Hand-written assembly function with two epilogues: the ret scan
	// arms both (the case the paper flags for x86 single-epilogue
	// assumptions).
	asmSrc := `    .text
    .global main
    .global par
main:
    addi sp, sp, -16
    sd ra, 8(sp)
    li a0, 4
    call par
    ld ra, 8(sp)
    addi sp, sp, 16
    li a7, 0
    ecall
par:
    andi t0, a0, 1
    beqz t0, even
    li a0, 111
    ret
even:
    li a0, 222
    ret
`
	tr := New()
	if err := tr.LoadProgram("prog.s", core.WithSource(asmSrc)); err != nil {
		t.Fatal(err)
	}
	defer tr.Terminate()
	if err := tr.Start(); err != nil {
		t.Fatal(err)
	}
	if err := tr.TrackFunction("par"); err != nil {
		t.Fatal(err)
	}
	var rets []int64
	for {
		if err := tr.Resume(); err != nil {
			t.Fatal(err)
		}
		if _, done := tr.ExitCode(); done {
			break
		}
		if r := tr.PauseReason(); r.Type == core.PauseReturn {
			v, _ := r.ReturnValue.Int()
			rets = append(rets, v)
		}
	}
	if len(rets) != 1 || rets[0] != 222 {
		t.Errorf("returns = %v, want [222] (even path)", rets)
	}
}

func TestRuntimeErrorExit(t *testing.T) {
	src := `int main() {
    int* p = 0;
    *p = 1;
    return 0;
}`
	tr := start(t, src)
	if err := tr.Resume(); err != nil {
		t.Fatal(err)
	}
	code, done := tr.ExitCode()
	if !done || code != 139 {
		t.Errorf("exit = %d, %v (want 139 segfault)", code, done)
	}
	if err := tr.Resume(); !errors.Is(err, core.ErrExited) {
		t.Errorf("Resume after crash = %v", err)
	}
}

func TestSourceLinesAndLastLine(t *testing.T) {
	tr := start(t, fibC)
	lines, err := tr.SourceLines()
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 11 || !strings.Contains(lines[0], "int fib") {
		t.Errorf("source lines = %d", len(lines))
	}
	if err := tr.Step(); err != nil {
		t.Fatal(err)
	}
	if tr.LastLine() != 8 {
		t.Errorf("LastLine = %d, want 8", tr.LastLine())
	}
}

func TestErrorsBeforeLoad(t *testing.T) {
	tr := New()
	if err := tr.Start(); !errors.Is(err, core.ErrNoProgram) {
		t.Errorf("Start = %v", err)
	}
	if err := tr.Watch("x"); !errors.Is(err, core.ErrNoProgram) {
		t.Errorf("Watch = %v", err)
	}
	if _, err := tr.SourceLines(); !errors.Is(err, core.ErrNoProgram) {
		t.Errorf("SourceLines = %v", err)
	}
}
