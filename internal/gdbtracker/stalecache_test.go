package gdbtracker

import (
	"testing"

	"easytracker/internal/core"
)

// globalInt pulls the named global's int content out of a snapshot.
func globalInt(t *testing.T, st *core.State, name string) int64 {
	t.Helper()
	for _, g := range st.Globals {
		if g.Name == name {
			v := g.Value
			if v.Kind == core.Ref {
				v = v.Deref()
			}
			n, ok := v.Content.(int64)
			if !ok {
				t.Fatalf("global %s content = %T", name, v.Content)
			}
			return n
		}
	}
	t.Fatalf("global %s not in snapshot", name)
	return 0
}

func TestStateRevalidatedAcrossNonStoringStep(t *testing.T) {
	// Stepping over a line that performs no memory store must not pay
	// for a second full state transfer: the previous snapshot is
	// revalidated by a -data-watch-version round trip and patched with
	// the new position.
	src := `int g = 5;
int main() {
    g = 6;
    return 0;
}`
	tr := start(t, src)
	st0, err := tr.State() // entry pause, full fetch
	if err != nil {
		t.Fatal(err)
	}
	if got := globalInt(t, st0, "g"); got != 5 {
		t.Fatalf("g at entry = %d, want 5", got)
	}

	if err := tr.Step(); err != nil { // executes g = 6: stores
		t.Fatal(err)
	}
	st1, err := tr.State()
	if err != nil {
		t.Fatal(err)
	}
	// A store invalidates the stale snapshot: the new state must be a
	// fresh decode, so its variable objects cannot be shared with st0.
	if len(st0.Globals) > 0 && len(st1.Globals) > 0 && st1.Globals[0] == st0.Globals[0] {
		t.Error("storing step reused the stale snapshot")
	}
	if got := globalInt(t, st1, "g"); got != 6 {
		t.Errorf("g after store = %d, want 6", got)
	}
	st1Line, st1Reason := st1.Frame.Line, st1.Reason.Type

	if err := tr.Step(); err != nil { // executes return 0: no stores
		t.Fatal(err)
	}
	st2, err := tr.State()
	if err != nil {
		t.Fatal(err)
	}
	// Revalidation reuses the decoded object graph (shared *Variable
	// identity proves no second transfer) ...
	if len(st2.Globals) == 0 || len(st1.Globals) == 0 || st2.Globals[0] != st1.Globals[0] {
		t.Error("non-storing step re-fetched the full state instead of revalidating")
	}
	_, line := tr.Position()
	if st2.Frame == nil || st2.Frame.Line != line {
		t.Errorf("revalidated frame line = %d, want current position %d", st2.Frame.Line, line)
	}
	if st2.Reason.Type != core.PauseStep {
		t.Errorf("revalidated reason = %v, want STEP", st2.Reason.Type)
	}
	// ... but must not patch the retained earlier snapshot in place:
	// consumers that record one State per pause (pt.Record) would see
	// history rewritten.
	if st1.Frame.Line != st1Line || st1.Reason.Type != st1Reason {
		t.Errorf("revalidation mutated the previous pause's snapshot: line %d -> %d, reason %v -> %v",
			st1Line, st1.Frame.Line, st1Reason, st1.Reason.Type)
	}
}

func TestStateNotReusedAcrossFunctionChange(t *testing.T) {
	// Even with no stores in between, a snapshot taken in one function
	// must not be served for a pause in another: the innermost frame
	// would be wrong.
	src := `int id(int x) {
    return x;
}
int main() {
    int r = id(3);
    return r;
}`
	tr := start(t, src)
	if _, err := tr.State(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if _, done := tr.ExitCode(); done {
			t.Fatal("program exited before reaching id()")
		}
		if err := tr.Step(); err != nil {
			t.Fatal(err)
		}
		st, err := tr.State()
		if err != nil {
			t.Fatal(err)
		}
		fr, err := tr.CurrentFrame()
		if err != nil {
			t.Fatal(err)
		}
		if st.Frame != fr {
			t.Fatal("State and CurrentFrame disagree")
		}
		_, line := tr.Position()
		if fr.Line != line {
			t.Fatalf("frame line %d != position line %d (stale frame served?)", fr.Line, line)
		}
		if fr.Name == "id" {
			return // reached the callee with a consistent frame
		}
	}
	t.Fatal("never stepped into id()")
}

func TestInvalidateStateCacheDropsStaleCandidate(t *testing.T) {
	src := `int main() {
    int x = 1;
    x = 2;
    return 0;
}`
	tr := start(t, src)
	st0, err := tr.State()
	if err != nil {
		t.Fatal(err)
	}
	tr.InvalidateStateCache()
	st1, err := tr.State()
	if err != nil {
		t.Fatal(err)
	}
	// A fresh transfer decodes a fresh frame graph; a served cache would
	// hand back the identical *Frame.
	if st1.Frame == st0.Frame {
		t.Error("InvalidateStateCache did not force a fresh transfer")
	}
}

func TestWatchVersionsOverTracker(t *testing.T) {
	src := `int g = 0;
int main() {
    g = 1;
    g = 2;
    return 0;
}`
	tr := start(t, src)
	if err := tr.Watch("g"); err != nil {
		t.Fatal(err)
	}
	wv, err := tr.WatchVersions()
	if err != nil {
		t.Fatal(err)
	}
	if len(wv) != 1 {
		t.Fatalf("WatchVersions = %v, want one entry", wv)
	}
	if err := tr.Resume(); err != nil { // first hit: g = 1
		t.Fatal(err)
	}
	wv2, err := tr.WatchVersions()
	if err != nil {
		t.Fatal(err)
	}
	for id, v0 := range wv {
		if wv2[id] != v0+1 {
			t.Errorf("watch %d version = %d, want %d", id, wv2[id], v0+1)
		}
	}
}
