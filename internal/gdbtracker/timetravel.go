package gdbtracker

import (
	"fmt"
	"strconv"

	"easytracker/internal/core"
)

// Time travel over MI: with core.WithRecording the tracker arms server-side
// stop-granularity recording (-et-record, re-armed automatically when
// session recovery reboots the server) and drives the replay cursor with
// -exec-step-back / -exec-seek. Landings come back as ordinary *stopped
// records (reason "step-back"/"seek") and flow through classifyStop, so
// position, pause reason and the state cache behave exactly as for live
// stops; while rewound, -et-inspect serves the reconstructed snapshot.
//
// MiniGDB records at stop granularity — one step per pause, not per executed
// line — so StepBack rewinds pause-by-pause. ResumeBack and NextBack have no
// MI vocabulary and report ErrUnsupported.

// replaying reports whether inspection is rewound into the recording.
func (t *Tracker) replaying() bool { return t.replay >= 0 }

func (t *Tracker) ttOK(op string) error {
	if t.dead {
		return t.sessionDead(op)
	}
	if !t.cfg.Recording {
		return t.werr(op, fmt.Errorf("%w: recording not enabled (load with WithRecording)", core.ErrUnsupported))
	}
	if !t.started {
		return t.werr(op, core.ErrNotStarted)
	}
	return nil
}

// StepBack implements core.TimeTraveler: rewind inspection one recorded stop.
func (t *Tracker) StepBack() error {
	if err := t.ttOK("StepBack"); err != nil {
		return err
	}
	resp, err := t.send("-exec-step-back")
	if err == nil {
		err = t.classifyStop(resp)
	}
	return t.werr("StepBack", err)
}

// SeekTo implements core.TimeTraveler: jump inspection to an absolute
// recorded step.
func (t *Tracker) SeekTo(step int) error {
	if err := t.ttOK("SeekTo"); err != nil {
		return err
	}
	resp, err := t.send("-exec-seek", strconv.Itoa(step))
	if err == nil {
		err = t.classifyStop(resp)
	}
	return t.werr("SeekTo", err)
}

// ResumeBack implements core.TimeTraveler. MiniGDB records at stop
// granularity and MI has no reverse-continue, so it is not offered.
func (t *Tracker) ResumeBack() error {
	return t.werr("ResumeBack", fmt.Errorf("reverse continue over MI: %w", core.ErrUnsupported))
}

// NextBack implements core.TimeTraveler; see ResumeBack.
func (t *Tracker) NextBack() error {
	return t.werr("NextBack", fmt.Errorf("reverse next over MI: %w", core.ErrUnsupported))
}

// replayPos asks the server for the replay cursor and recording length.
func (t *Tracker) replayPos() (pos, length int, err error) {
	resp, err := t.send("-et-replay-pos")
	if err != nil {
		return 0, 0, err
	}
	p, _ := resp.Result.Results.GetInt("pos")
	l, _ := resp.Result.Results.GetInt("len")
	return int(p), int(l), nil
}

// Pos implements core.TimeTraveler: the current step index in the recording.
func (t *Tracker) Pos() int {
	if t.ttOK("Pos") != nil {
		return 0
	}
	p, _, err := t.replayPos()
	if err != nil {
		return 0
	}
	return p
}

// Len implements core.TimeTraveler: the number of recorded steps.
func (t *Tracker) Len() int {
	if t.ttOK("Len") != nil {
		return 0
	}
	_, l, err := t.replayPos()
	if err != nil {
		return 0
	}
	return l
}

// SupportsCapability implements core.CapabilityGate: the TimeTraveler
// methods exist unconditionally but only work with a server-side recording,
// so the capability follows WithRecording.
func (t *Tracker) SupportsCapability(ptr any) bool {
	if _, ok := ptr.(*core.TimeTraveler); ok {
		return t.cfg.Recording
	}
	return true
}
