package gdbtracker

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"easytracker/internal/core"
)

// TestStatsMIRoundTrips exercises the full observability surface of the
// MiniGDB tracker: every MI command crosses the wire tap, so after a short
// session the round-trip histogram, the command counter and the flight
// recorder must all have evidence of the traffic.
func TestStatsMIRoundTrips(t *testing.T) {
	tr := New()
	if err := tr.LoadProgram("prog.c", core.WithSource(fibC), core.WithObservability()); err != nil {
		t.Fatalf("load: %v", err)
	}
	t.Cleanup(func() { _ = tr.Terminate() })
	if err := tr.Start(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Step(); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.State(); err != nil {
		t.Fatal(err)
	}

	snap := tr.Stats()
	if snap.Tracker != Kind || !snap.Enabled {
		t.Fatalf("snapshot header = %q/%v", snap.Tracker, snap.Enabled)
	}
	mir, ok := snap.Ops[core.OpMIRound]
	if !ok || mir.Count == 0 {
		t.Fatalf("no MI round-trip latencies recorded: %+v", snap.Ops)
	}
	if mir.SumNs <= 0 || mir.MinNs > mir.MaxNs {
		t.Fatalf("implausible latency stats: %+v", mir)
	}
	if snap.Counters[core.CtrMICommands] != mir.Count {
		t.Fatalf("command counter %d != round-trip count %d",
			snap.Counters[core.CtrMICommands], mir.Count)
	}
	if _, ok := snap.Ops[core.OpStep]; !ok {
		t.Fatalf("no Step latency recorded: %+v", snap.Ops)
	}
	var sawCmd, sawResp, sawPause bool
	for _, ev := range snap.Events {
		switch ev.Kind {
		case "mi>":
			sawCmd = true
		case "mi<":
			sawResp = true
		case "pause":
			sawPause = true
		}
	}
	if !sawCmd || !sawResp || !sawPause {
		t.Fatalf("flight recorder missing traffic (cmd=%v resp=%v pause=%v): %v",
			sawCmd, sawResp, sawPause, snap.Events)
	}
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot not JSON-serializable: %v", err)
	}
}

// TestFlightRecorderAlwaysOn: the black box runs even without
// WithObservability — an unobserved session that crashes must still produce
// a trail — while the metric instruments stay off.
func TestFlightRecorderAlwaysOn(t *testing.T) {
	tr, fc := faultTracker(t, fibC)
	if err := tr.Start(); err != nil {
		t.Fatal(err)
	}
	fc().KillAfterCommands(0)
	te := sessionError(t, tr.Step())
	if len(te.Trail) == 0 {
		t.Fatal("session failure carries no flight-recorder dump")
	}
	dump := te.FlightDump()
	if !strings.Contains(dump, "mi>") || !strings.Contains(dump, "session") {
		t.Fatalf("trail lacks MI traffic or session events:\n%s", dump)
	}
	snap := tr.Stats()
	if snap.Enabled {
		t.Fatal("metrics reported enabled without WithObservability")
	}
	if len(snap.Counters) != 0 || len(snap.Ops) != 0 {
		t.Fatalf("disabled tracker collected metrics: %+v", snap)
	}
	if len(snap.Events) == 0 {
		t.Fatal("snapshot lost the always-on flight recorder events")
	}
}

// TestLostWatchpointRecordedInTrail reproduces the partial-loss scenario: a
// watchpoint on a local can only re-arm while its function has a live
// activation, so after a mid-fib crash the recovered session (paused back at
// the entry point) loses it. The loss must be reported in TrackerError.Lost
// AND recorded in the flight recorder with the re-arm failure's reason —
// previously the session replay logged nothing about what went missing.
func TestLostWatchpointRecordedInTrail(t *testing.T) {
	tr, fc := faultTracker(t, fibC)
	if err := tr.Start(); err != nil {
		t.Fatal(err)
	}
	if err := tr.BreakBeforeFunc("fib"); err != nil {
		t.Fatal(err)
	}
	if err := tr.Resume(); err != nil {
		t.Fatal(err)
	}
	if r := tr.PauseReason(); r.Type != core.PauseBreakpoint || r.Function != "fib" {
		t.Fatalf("not paused in fib: %v", r)
	}
	if err := tr.Watch("fib:n"); err != nil {
		t.Fatal(err)
	}

	fc().KillAfterCommands(0)
	err := tr.Step()
	te := sessionError(t, err)
	if !errors.Is(err, core.ErrSessionLost) {
		t.Fatalf("want ErrSessionLost, got %v", err)
	}
	if te.Recovery != core.RecoveryRestarted {
		t.Fatalf("recovery = %v, want restarted", te.Recovery)
	}
	wantLost := "watchpoint on fib:n"
	if len(te.Lost) != 1 || te.Lost[0] != wantLost {
		t.Fatalf("Lost = %v, want [%q]", te.Lost, wantLost)
	}
	// The flight recorder names the lost item and why re-arming failed.
	dump := te.FlightDump()
	if !strings.Contains(dump, "lost") || !strings.Contains(dump, wantLost) {
		t.Fatalf("trail does not record the lost watchpoint:\n%s", dump)
	}
	if !strings.Contains(dump, "journal replayed") {
		t.Fatalf("trail does not record the replay summary:\n%s", dump)
	}
	// The breakpoint survived; only the local watchpoint is gone.
	if err := tr.Resume(); err != nil {
		t.Fatalf("resume after recovery: %v", err)
	}
	if r := tr.PauseReason(); r.Type != core.PauseBreakpoint || r.Function != "fib" {
		t.Fatalf("pause after recovery = %v, want replayed breakpoint", r)
	}
}
