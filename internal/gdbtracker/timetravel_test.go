package gdbtracker

import (
	"errors"
	"testing"

	"easytracker/internal/core"
)

const loopC = `int main() {
    int s = 0;
    int i = 0;
    while (i < 5) {
        s = s + i;
        i = i + 1;
    }
    printf("%d\n", s);
    return 0;
}`

// TestTimeTravelStepBackSeek drives the MI record/step-back/seek round trip:
// states inspected at live stops must be reproduced when seeking back to the
// same recorded steps.
func TestTimeTravelStepBackSeek(t *testing.T) {
	tr := start(t, loopC, core.WithRecording(0))

	type stopShot struct {
		pos  int
		line int
		s    string
		i    string
	}
	lookup := func(name string) string {
		fr, err := tr.CurrentFrame()
		if err != nil {
			return "<err>"
		}
		if v := fr.Lookup(name); v != nil {
			return v.Value.String()
		}
		return "<undef>"
	}
	var shots []stopShot
	for n := 0; n < 8; n++ {
		_, line := tr.Position()
		shots = append(shots, stopShot{pos: tr.Pos(), line: line, s: lookup("s"), i: lookup("i")})
		if err := tr.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() < 8 {
		t.Fatalf("recording has %d steps, want >= 8", tr.Len())
	}

	// Seek back to every captured stop and compare inspection.
	for _, sh := range shots {
		if err := tr.SeekTo(sh.pos); err != nil {
			t.Fatalf("SeekTo(%d): %v", sh.pos, err)
		}
		if got := tr.Pos(); got != sh.pos {
			t.Fatalf("Pos after SeekTo(%d) = %d", sh.pos, got)
		}
		if _, line := tr.Position(); line != sh.line {
			t.Fatalf("line at step %d = %d, want %d", sh.pos, line, sh.line)
		}
		if got := lookup("s"); got != sh.s {
			t.Fatalf("s at step %d = %s, want %s", sh.pos, got, sh.s)
		}
		if got := lookup("i"); got != sh.i {
			t.Fatalf("i at step %d = %s, want %s", sh.pos, got, sh.i)
		}
	}

	// StepBack walks the cursor down one recorded stop at a time.
	if err := tr.SeekTo(3); err != nil {
		t.Fatal(err)
	}
	for want := 2; want >= 0; want-- {
		if err := tr.StepBack(); err != nil {
			t.Fatal(err)
		}
		if got := tr.Pos(); got != want {
			t.Fatalf("Pos after StepBack = %d, want %d", got, want)
		}
	}
	if tr.PauseReason().Type != core.PauseEntry {
		t.Fatalf("reason at step 0 = %v", tr.PauseReason())
	}

	// Forward execution returns to the live present and keeps recording.
	before := tr.Len()
	if err := tr.Step(); err != nil {
		t.Fatal(err)
	}
	if tr.replaying() {
		t.Fatal("still rewound after a forward step")
	}
	if tr.Len() <= before {
		t.Fatalf("recording did not grow: %d -> %d", before, tr.Len())
	}

	// Run to exit; reverse navigation still inspects the recording.
	for {
		if _, done := tr.ExitCode(); done {
			break
		}
		if err := tr.Resume(); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.StepBack(); err != nil {
		t.Fatalf("StepBack after exit: %v", err)
	}
	st, err := tr.State()
	if err != nil || st.Frame == nil {
		t.Fatalf("state after post-exit StepBack: %+v, %v", st, err)
	}
	if code, ok := tr.ExitCode(); !ok || code != 0 {
		t.Fatalf("exit code lost while rewound: %d, %v", code, ok)
	}
}

// TestTimeTravelGate checks the capability surface is tied to WithRecording.
func TestTimeTravelGate(t *testing.T) {
	plain := start(t, loopC)
	if _, ok := core.As[core.TimeTraveler](plain); ok {
		t.Fatal("TimeTraveler advertised without recording")
	}
	if err := plain.StepBack(); !errors.Is(err, core.ErrUnsupported) {
		t.Fatalf("StepBack without recording = %v", err)
	}

	rec := start(t, loopC, core.WithRecording(4))
	tt, ok := core.As[core.TimeTraveler](rec)
	if !ok {
		t.Fatal("TimeTraveler not advertised with recording")
	}
	if err := rec.Step(); err != nil {
		t.Fatal(err)
	}
	if err := tt.StepBack(); err != nil {
		t.Fatal(err)
	}
	if err := rec.ResumeBack(); !errors.Is(err, core.ErrUnsupported) {
		t.Fatalf("ResumeBack over MI = %v", err)
	}
}
