// Package gdbtracker implements the EasyTracker Tracker interface for
// compiled MiniC/assembly inferiors by driving MiniGDB over the MI protocol,
// reproducing the paper's GDB tracker (Section II-C1):
//
//   - the tracker talks to the debugger exclusively through a pipe carrying
//     MI records (Fig. 4);
//   - function tracking places an entry breakpoint plus exit breakpoints
//     found by disassembling the function and scanning for the return
//     instruction (the paper's x86 retq trick);
//   - the maxdepth breakpoint semantic runs server-side as a custom
//     extension;
//   - heap-allocation sizes come from the allocator interposition wrappers
//     (internal/rt), observed through silent internal watchpoints;
//   - program state crosses the pipe as the serialized core model.
package gdbtracker

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"easytracker/internal/asm"
	"easytracker/internal/core"
	"easytracker/internal/isa"
	"easytracker/internal/mi"
	"easytracker/internal/minic"
	"easytracker/internal/obs"
	"easytracker/internal/query"
)

// Kind is the tracker registry name.
const Kind = "minigdb"

func init() {
	core.RegisterTracker(Kind, func() core.Tracker { return New() })
}

type trackKind int

const (
	bkUser trackKind = iota
	bkUserFunc
	bkTrackEntry
	bkTrackExit
)

type bpInfo struct {
	kind trackKind
	fn   string
}

// Tracker drives one compiled inferior through MiniGDB/MI.
type Tracker struct {
	// trans is the hardened command transport: the MI client, optionally
	// behind a DeadlineTransport (core.WithCommandTimeout) and, in
	// tests, behind a fault-injection wrapper (SetConnWrapper).
	trans    mi.Transport
	wrapConn func(mi.Conn) mi.Conn

	// journal records every arming operation (breakpoints, tracked
	// functions, watchpoints) so a recovered session can replay them.
	journal []core.Probe
	// recovered marks the one-shot automatic recovery as spent;
	// recovering suppresses nested recovery while the journal replays;
	// dead retires the session after recovery failed.
	recovered  bool
	recovering bool
	dead       bool

	cfg      core.LoadConfig
	prog     *isa.Program
	file     string
	source   string
	loaded   bool
	started  bool
	implicit bool // started implicitly by a breakpoint call before Start
	exited   bool
	exitCode int

	reason   core.PauseReason
	curLine  int
	curFunc  string
	curDepth int
	lastLine int
	state    *core.State // cached snapshot for the current pause
	// stateVersion is the machine data version at which state was
	// fetched. After a resume, the snapshot is demoted to stale rather
	// than dropped: if a cheap -data-watch-version round trip shows the
	// version (and innermost function and frame depth) unchanged, the
	// stale snapshot is revalidated instead of re-serializing the full
	// state.
	stateVersion uint64
	stale        *core.State
	staleVersion uint64
	staleFunc    string
	staleDepth   int

	bps     map[int]bpInfo // breakpoint id -> classification
	watches map[int]string // watchpoint id -> variable identifier

	// replay is the time-travel cursor into the server-side recording
	// (timetravel.go): -1 while inspecting the live present, a step index
	// after -exec-step-back/-exec-seek landed there. Maintained by
	// classifyStop from the stop record's reason.
	replay int

	// deadlineHit marks that the WithExecutionTimeout timer fired; the
	// next "interrupted" stop rewrites its detail from "interrupt" to
	// "deadline" so tools can tell a Ctrl-C from an expired budget. Set
	// from the timer goroutine, consumed on the tool goroutine.
	deadlineHit atomic.Bool

	// obs is the tracker's instrument panel. The flight recorder inside it
	// is always on (sized by WithFlightRecorder, default 64 events): it is
	// the black box quoted in session crash reports, and a recorder that
	// only runs when observability was requested records nothing when an
	// unobserved session dies. Counters/histograms/gauges activate with
	// WithObservability.
	obs *obs.Metrics

	// tracer records one span per tracker op (and one per MI round trip,
	// nested under the op via the ambient parent) when span tracing is on;
	// nil otherwise, costing one pointer test per op.
	tracer *obs.Tracer

	// subprocess mode (NewSubprocess)
	subproc     string
	subprocArgs []string
	child       *exec.Cmd
	childDir    string
	mobjPath    string
}

// New returns an unloaded MiniGDB tracker using an in-process MI pipe.
func New() *Tracker {
	return &Tracker{
		bps:     map[int]bpInfo{},
		watches: map[int]string{},
		replay:  -1,
	}
}

// LoadProgram builds the program at path (MiniC for .c, assembly for .s,
// a serialized image for .mobj) and boots the MI server for it.
func (t *Tracker) LoadProgram(path string, opts ...core.LoadOption) error {
	cfg := core.ApplyLoadOptions(opts)
	if t.subproc != "" {
		return t.werr("LoadProgram", t.loadSubprocess(path, cfg))
	}
	src := cfg.Source
	if src == "" && !strings.HasSuffix(path, ".mobj") {
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("gdbtracker: %w", err)
		}
		src = string(data)
	}
	var prog *isa.Program
	var err error
	switch {
	case strings.HasSuffix(path, ".s") || strings.HasSuffix(path, ".asm"):
		prog, err = asm.Assemble(path, src)
	case strings.HasSuffix(path, ".mobj"):
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return fmt.Errorf("gdbtracker: %w", rerr)
		}
		prog = new(isa.Program)
		err = json.Unmarshal(data, prog)
	default:
		prog, err = minic.Compile(path, src)
	}
	if err != nil {
		return err
	}

	t.cfg = cfg
	t.prog = prog
	t.file = prog.SourceFile
	t.source = prog.Source
	t.initObs()
	if err := t.bootInProcess(); err != nil {
		return t.werr("LoadProgram", err)
	}
	t.loaded = true
	return nil
}

// initObs builds the instrument panel for the loaded configuration: the
// flight recorder always runs (the session layer's black box), the metric
// instruments only with WithObservability.
func (t *Tracker) initObs() {
	events := t.cfg.Obs.Events
	if events <= 0 {
		events = obs.DefaultEvents
	}
	t.obs = obs.New(obs.Config{Enabled: t.cfg.Obs.Enabled, Events: events})
	if sink := t.cfg.Obs.SpanSink; sink != nil {
		t.tracer = obs.NewTracerOn(Kind, sink)
	} else if t.cfg.Obs.Spans > 0 {
		t.tracer = obs.NewTracer(Kind, t.cfg.Obs.Spans)
	}
}

// Stats implements core.StatsProvider.
func (t *Tracker) Stats() *obs.Snapshot {
	s := t.obs.Snapshot()
	s.Tracker = Kind
	return s
}

// ObsMetrics implements core.MetricsSource, letting wrappers (AsyncTracker)
// report into the same panel.
func (t *Tracker) ObsMetrics() *obs.Metrics { return t.obs }

// Spans implements core.SpanProvider; nil when span tracing is off.
func (t *Tracker) Spans() []obs.SpanRecord { return t.tracer.Spans() }

// SpanTracer implements core.SpanTracerSource; nil when span tracing is off.
func (t *Tracker) SpanTracer() *obs.Tracer { return t.tracer }

// miTap is the wire-tap callback observing every MI round trip: the
// command/record pair lands in the flight recorder, and with metrics on,
// the round-trip latency lands in the OpMIRound histogram.
func (t *Tracker) miTap(op string, args []string, resp *mi.Response, err error, d time.Duration) {
	rec := t.obs.Recorder()
	cmd := op
	if len(args) > 0 {
		cmd += " " + strings.Join(args, " ")
	}
	rec.Record("mi>", cmd)
	switch {
	case err != nil && resp == nil:
		rec.Recordf("mi!", "%s: transport failed after %s: %v", op, d.Round(time.Microsecond), err)
	case err != nil:
		rec.Recordf("mi<", "%s (%s) %v", mi.SummarizeResponse(resp), d.Round(time.Microsecond), err)
	default:
		rec.Recordf("mi<", "%s (%s)", mi.SummarizeResponse(resp), d.Round(time.Microsecond))
	}
	if t.obs.Enabled() {
		t.obs.Hist(core.OpMIRound).Observe(d)
		t.obs.Counter(core.CtrMICommands).Inc()
		if err != nil {
			t.obs.Counter(core.CtrMIErrors).Inc()
		}
	}
}

// send issues an MI command and pumps inferior output to the tool's stdout.
// A transport-level failure (timeout, crash, corrupted stream) triggers the
// session layer's one-shot recovery; the returned error is then a
// *core.TrackerError describing the failure and the recovery outcome.
func (t *Tracker) send(op string, args ...string) (*mi.Response, error) {
	resp, err := t.sendRaw(op, args...)
	if err != nil && resp == nil && !t.recovering && !t.dead {
		return nil, t.recoverSession(op, err)
	}
	return resp, err
}

// sendRaw is send without the recovery layer (used by teardown-adjacent
// paths and by recovery itself).
func (t *Tracker) sendRaw(op string, args ...string) (*mi.Response, error) {
	resp, err := t.trans.RoundTrip(op, args...)
	if out := t.trans.TakeOutput(); out != "" && t.cfg.Stdout != nil {
		fmt.Fprint(t.cfg.Stdout, out)
	}
	return resp, err
}

// werr wraps err in the tracker's typed error, preserving already-typed
// session errors. Session errors record the raw MI command that failed;
// replace it with the public operation name the tool actually called.
func (t *Tracker) werr(op string, err error) error {
	var te *core.TrackerError
	if errors.As(err, &te) && strings.HasPrefix(te.Op, "-") {
		te.Op = op
	}
	return core.WrapErr(Kind, op, t.file, t.curLine, err)
}

// Start launches the inferior and pauses it at main's first line.
func (t *Tracker) Start() error {
	if !t.loaded {
		return t.werr("Start", core.ErrNoProgram)
	}
	if t.dead {
		return t.sessionDead("Start")
	}
	if t.started {
		if t.implicit {
			// Breakpoint calls before Start booted the inferior; it
			// is still paused at the entry point.
			t.implicit = false
			return nil
		}
		return t.werr("Start", errors.New("gdbtracker: already started"))
	}
	if t.cfg.TrackHeap {
		if _, err := t.send("-et-track-heap"); err != nil {
			return t.werr("Start", err)
		}
	}
	// Arm the instruction budget before -exec-run: the server applies it
	// to the machine at run time, and because Start re-runs after session
	// recovery, a rebooted inferior gets the same budget re-armed.
	if n := t.cfg.Budgets.MaxInstructions; n > 0 {
		if _, err := t.send("-et-budget", strconv.FormatUint(n, 10)); err != nil {
			return t.werr("Start", err)
		}
	}
	// Arm server-side recording before -exec-run; like the budget, a
	// recovery-rebooted server gets it re-armed (the recording itself
	// restarts with the re-run — the old timeline died with the server).
	if t.cfg.Recording {
		var args []string
		if t.cfg.RecordInterval > 0 {
			args = append(args, strconv.Itoa(t.cfg.RecordInterval))
		}
		if _, err := t.send("-et-record", args...); err != nil {
			return t.werr("Start", err)
		}
	}
	sp := t.tracer.StartOp(core.OpStart)
	t0 := t.obs.Now()
	resp, err := t.send("-exec-run")
	if err != nil {
		sp.EndErr(err)
		return t.werr("Start", err)
	}
	t.started = true
	err = t.classifyStop(resp)
	t.obs.Observe(core.OpStart, t0)
	sp.EndErr(err)
	return t.werr("Start", err)
}

// classifyStop turns the *stopped record into the pause reason taxonomy.
func (t *Tracker) classifyStop(resp *mi.Response) error {
	// Demote the snapshot of the previous pause to a stale candidate:
	// fetchState revalidates it with a version check before reuse.
	if t.state != nil {
		t.stale, t.staleVersion = t.state, t.stateVersion
		t.staleFunc, t.staleDepth = t.curFunc, t.curDepth
		t.state = nil
	}
	stopped, ok := resp.Stopped()
	if !ok {
		return fmt.Errorf("gdbtracker: no *stopped record in response")
	}
	line, _ := stopped.Results.GetInt("line")
	t.lastLine = t.curLine
	t.curLine = int(line)
	t.curFunc = stopped.GetString("func")
	depth, _ := stopped.Results.GetInt("depth")
	t.curDepth = int(depth)
	reason := stopped.GetString("reason")
	if reason == "step-back" || reason == "seek" {
		pos, _ := stopped.Results.GetInt("pos")
		t.replay = int(pos)
		// The stale snapshot belongs to the live timeline; replayed
		// -et-inspect responses carry synthetic versions that must never
		// revalidate it.
		t.stale = nil
		typ := core.PauseStep
		if pos == 0 {
			typ = core.PauseEntry
		}
		t.reason = core.PauseReason{Type: typ, File: t.file, Line: int(line)}
		t.obs.Event("pause", t.reason.String())
		return nil
	}
	// Any live stop means the present moved on: inspection is live again.
	t.replay = -1
	switch reason {
	case "entry":
		t.reason = core.PauseReason{Type: core.PauseEntry, File: t.file, Line: int(line)}
	case "end-stepping-range":
		t.reason = core.PauseReason{Type: core.PauseStep, File: t.file, Line: int(line)}
	case "breakpoint-hit":
		no, _ := stopped.Results.GetInt("bkptno")
		info := t.bps[int(no)]
		switch info.kind {
		case bkTrackEntry:
			t.reason = core.PauseReason{
				Type: core.PauseCall, Function: info.fn,
				File: t.file, Line: int(line),
			}
		case bkTrackExit:
			t.reason = core.PauseReason{
				Type: core.PauseReturn, Function: info.fn,
				File: t.file, Line: int(line),
				ReturnValue: t.returnValue(),
			}
		case bkUserFunc:
			t.reason = core.PauseReason{
				Type: core.PauseBreakpoint, Function: info.fn,
				File: t.file, Line: int(line),
			}
		default:
			t.reason = core.PauseReason{
				Type: core.PauseBreakpoint, File: t.file, Line: int(line),
			}
		}
	case "watchpoint-trigger":
		wpt, _ := stopped.Results.Get("wpt").(mi.Tuple)
		no, _ := wpt.GetInt("number")
		val, _ := stopped.Results.Get("value").(mi.Tuple)
		t.reason = core.PauseReason{
			Type:     core.PauseWatch,
			Variable: t.watches[int(no)],
			Old:      parseWatchValue(val.GetString("old")),
			New:      parseWatchValue(val.GetString("new")),
			File:     t.file, Line: int(line),
		}
	case "interrupted":
		detail := stopped.GetString("detail")
		if detail == "interrupt" && t.deadlineHit.Swap(false) {
			detail = "deadline"
		}
		t.reason = core.PauseReason{
			Type: core.PauseInterrupted, Detail: detail,
			Function: t.curFunc, File: t.file, Line: int(line),
		}
		if detail == "step-budget" {
			t.obs.Event("budget", "instruction budget exhausted")
			if t.obs.Enabled() {
				t.obs.Counter(core.CtrBudgetTrips).Inc()
			}
		} else {
			t.obs.Event("interrupt", detail)
			if t.obs.Enabled() {
				t.obs.Counter(core.CtrInterrupts).Inc()
			}
		}
	case "exited", "signal-received":
		code, _ := stopped.Results.GetInt("exit-code")
		t.exited = true
		t.exitCode = int(code)
		t.reason = core.PauseReason{Type: core.PauseExited, ExitCode: int(code)}
	default:
		return fmt.Errorf("gdbtracker: unknown stop reason %q", reason)
	}
	t.obs.Event("pause", t.reason.String())
	if t.obs.Enabled() {
		t.obs.Counter(core.CtrPauses).Inc()
		if t.reason.Type == core.PauseWatch {
			t.obs.Counter(core.CtrWatchHits).Inc()
		}
	}
	return nil
}

// parseWatchValue converts the server's rendered old/new watch values.
func parseWatchValue(s string) *core.Value {
	if s == "" {
		return nil
	}
	if strings.HasPrefix(s, "0x") {
		if v, err := strconv.ParseUint(s, 0, 64); err == nil {
			if v == 0 {
				return core.NewInvalid()
			}
			val := core.NewInt(int64(v))
			val.LanguageType = "ptr"
			return val
		}
	}
	if v, err := strconv.ParseInt(s, 10, 64); err == nil {
		return core.NewInt(v)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return core.NewFloat(f)
	}
	return core.NewString(s)
}

// returnValue reads a0 at a function-exit pause.
func (t *Tracker) returnValue() *core.Value {
	regs, err := t.registerList()
	if err != nil {
		return nil
	}
	return core.NewInt(int64(regs[isa.A0.String()]))
}

func (t *Tracker) registerList() (map[string]uint64, error) {
	resp, err := t.send("-data-list-register-values", "x")
	if err != nil {
		return nil, err
	}
	vals, _ := resp.Result.Results.Get("register-values").(mi.List)
	out := make(map[string]uint64, len(vals))
	for _, it := range vals {
		tp, _ := it.(mi.Tuple)
		v, _ := strconv.ParseUint(tp.GetString("value"), 10, 64)
		out[tp.GetString("name")] = v
	}
	return out, nil
}

func (t *Tracker) control(name, op string) error {
	if t.dead {
		return t.sessionDead(name)
	}
	if !t.started {
		return t.werr(name, core.ErrNotStarted)
	}
	if t.exited {
		return t.werr(name, core.ErrExited)
	}
	sp := t.tracer.StartOp(opHistName(name))
	t0 := t.obs.Now()
	disarm := t.armExecDeadline()
	resp, err := t.send(op)
	disarm()
	if err == nil {
		err = t.classifyStop(resp)
	}
	t.obs.Observe(opHistName(name), t0)
	sp.EndErr(err)
	return t.werr(name, err)
}

// armExecDeadline starts the WithExecutionTimeout timer for one resuming
// command: on expiry the inferior is interrupted — a recoverable pause with
// all session state intact — rather than the transport torn down. The
// returned disarm stops the timer. If the timer fired but the run stopped
// for another reason first, the interrupt stays latched server-side and
// surfaces as an immediate "interrupted" pause on the next resume; the
// deadlineHit flag makes its detail read "deadline" either way.
func (t *Tracker) armExecDeadline() func() {
	d := t.cfg.ExecTimeout
	if d <= 0 {
		return func() {}
	}
	timer := time.AfterFunc(d, func() {
		t.deadlineHit.Store(true)
		t.Interrupt()
	})
	return func() { timer.Stop() }
}

// Interrupt implements core.Interrupter: it asks the running inferior to
// pause before its next instruction. The request crosses the pipe out of
// band (no response of its own), so it is safe to call from any goroutine —
// including while the tool goroutine is blocked inside Resume — and the
// in-flight command returns a normal "interrupted" pause. No-op when the
// transport does not support interrupts (e.g. a fault-injection wrapper
// that swallowed the capability) or the session is down.
func (t *Tracker) Interrupt() {
	if t.trans == nil || t.dead {
		return
	}
	if in, ok := t.trans.(mi.Interrupter); ok {
		_ = in.Interrupt()
	}
}

// opHistName maps a public control-op name onto its canonical histogram.
func opHistName(name string) string {
	switch name {
	case "Resume":
		return core.OpResume
	case "Step":
		return core.OpStep
	case "Next":
		return core.OpNext
	}
	return "op." + strings.ToLower(name)
}

// Resume continues to the next pause condition.
func (t *Tracker) Resume() error { return t.control("Resume", "-exec-continue") }

// Step executes one source line, entering calls.
func (t *Tracker) Step() error { return t.control("Step", "-exec-step") }

// Next executes one source line, stepping over calls.
func (t *Tracker) Next() error { return t.control("Next", "-exec-next") }

// Terminate shuts the debugger down. It never triggers recovery: a dead
// session is simply torn down.
func (t *Tracker) Terminate() error {
	if t.trans == nil {
		return nil
	}
	if !t.dead {
		_, _ = t.sendRaw("-gdb-exit")
	}
	t.teardown()
	t.closeSubprocess()
	t.exited = true
	return nil
}

// Arm registers any probe kind — the unified arming surface behind the
// four convenience methods. Conditions are compiled client-side first so a
// bad expression fails with a typed ErrBadQuery before anything crosses the
// MI pipe; the server compiles its own copy at insert time and evaluates it
// inside the debugger's stop filter, so non-matching hits never pay an MI
// round trip.
func (t *Tracker) Arm(p core.Probe) error {
	sp := t.tracer.StartOp(core.SpanArm)
	sp.Detail = p.Op()
	err := t.armChecked(p)
	sp.EndErr(err)
	return err
}

func (t *Tracker) armChecked(p core.Probe) error {
	op := p.Op()
	if !t.loaded {
		return t.werr(op, core.ErrNoProgram)
	}
	if t.dead {
		return t.sessionDead(op)
	}
	if p.Condition != "" {
		if _, err := query.Compile(p.Condition); err != nil {
			return t.werr(op, err)
		}
	}
	if err := t.ensureRunning(); err != nil {
		return t.werr(op, err)
	}
	if err := t.armProbe(p); err != nil {
		return t.werr(op, err)
	}
	t.journal = append(t.journal, p)
	t.obs.Gauge(core.GaugeJournalSize).Set(int64(len(t.journal)))
	return nil
}

// ConditionalProbes advertises the ConditionalBreaker capability.
func (t *Tracker) ConditionalProbes() bool { return true }

// armProbe performs the MI insertion for one probe (also used by the
// session journal replay).
func (t *Tracker) armProbe(p core.Probe) error {
	switch p.Kind {
	case core.ProbeLine:
		return t.armBreakLine(p.Line, p.BreakConfig)
	case core.ProbeFunc:
		return t.armBreakFunc(p.Function, p.BreakConfig)
	case core.ProbeTrack:
		return t.armTrack(p.Function, p.BreakConfig)
	case core.ProbeWatch:
		return t.armWatch(p.VarID, p.BreakConfig)
	default:
		return core.ErrUnsupported
	}
}

// breakArgs renders the shared BreakConfig flags of -break-insert. The
// condition crosses the pipe as one quoted argument (the MI client quotes
// every argument containing spaces).
func breakArgs(bc core.BreakConfig) []string {
	var args []string
	if bc.OneShot {
		args = append(args, "-t")
	}
	if bc.Condition != "" {
		args = append(args, "-c", bc.Condition)
	}
	if bc.IgnoreHits > 0 {
		args = append(args, "-i", strconv.Itoa(bc.IgnoreHits))
	}
	if bc.MaxDepth > 0 {
		args = append(args, "--maxdepth", strconv.Itoa(bc.MaxDepth))
	}
	return args
}

// BreakBeforeLine arms a line breakpoint. Equivalent to
// Arm(core.LineProbe(file, line, opts...)).
func (t *Tracker) BreakBeforeLine(file string, line int, opts ...core.BreakOption) error {
	return t.Arm(core.LineProbe(file, line, opts...))
}

// armBreakLine performs the line-breakpoint insertion.
func (t *Tracker) armBreakLine(line int, bc core.BreakConfig) error {
	args := append(breakArgs(bc), strconv.Itoa(line))
	resp, err := t.send("-break-insert", args...)
	if err != nil {
		if strings.Contains(err.Error(), "no code at line") {
			return core.ErrBadLine
		}
		return err
	}
	t.bps[bpNumber(resp)] = bpInfo{kind: bkUser}
	return nil
}

// BreakBeforeFunc arms a function breakpoint (fires with arguments stored).
// Equivalent to Arm(core.FuncProbe(name, opts...)).
func (t *Tracker) BreakBeforeFunc(name string, opts ...core.BreakOption) error {
	return t.Arm(core.FuncProbe(name, opts...))
}

// armBreakFunc performs the function-breakpoint insertion.
func (t *Tracker) armBreakFunc(name string, bc core.BreakConfig) error {
	args := append(breakArgs(bc), "--function", name)
	resp, err := t.send("-break-insert", args...)
	if err != nil {
		if strings.Contains(err.Error(), "no function") {
			return core.ErrUnknownFunction
		}
		return err
	}
	t.bps[bpNumber(resp)] = bpInfo{kind: bkUserFunc, fn: name}
	return nil
}

// TrackFunction arms entry and exit pauses for every execution of the named
// function. The exit breakpoints are found exactly as in the paper: ask the
// debugger to disassemble the function, scan for the return instruction,
// and breakpoint its address. Equivalent to
// Arm(core.TrackProbe(name, opts...)).
func (t *Tracker) TrackFunction(name string, opts ...core.BreakOption) error {
	return t.Arm(core.TrackProbe(name, opts...))
}

// armTrack performs the entry/exit breakpoint insertion of TrackFunction. A
// condition gates entry and exit independently; the --event flag tells the
// server which event vocabulary the condition sees at each site.
func (t *Tracker) armTrack(name string, bc core.BreakConfig) error {
	args := append(breakArgs(bc), "--event", "call", "--function", name)
	resp, err := t.send("-break-insert", args...)
	if err != nil {
		if strings.Contains(err.Error(), "no function") {
			return core.ErrUnknownFunction
		}
		return err
	}
	t.bps[bpNumber(resp)] = bpInfo{kind: bkTrackEntry, fn: name}

	dis, err := t.send("-data-disassemble", name)
	if err != nil {
		return err
	}
	insns, _ := dis.Result.Results.Get("asm_insns").(mi.List)
	found := false
	for _, it := range insns {
		tp, _ := it.(mi.Tuple)
		if tp.GetString("inst") != "ret" {
			continue
		}
		found = true
		bargs := append(breakArgs(bc), "--event", "return", "*"+tp.GetString("address"))
		bresp, err := t.send("-break-insert", bargs...)
		if err != nil {
			return err
		}
		t.bps[bpNumber(bresp)] = bpInfo{kind: bkTrackExit, fn: name}
	}
	if !found {
		return fmt.Errorf("gdbtracker: no return instruction found in %q", name)
	}
	return nil
}

// Watch pauses whenever the identified variable is modified. Global
// variables ("name" or "::name") can be watched any time; locals
// ("func:name") require a live activation of the function, as with GDB.
// Equivalent to Arm(core.WatchProbe(varID, opts...)).
func (t *Tracker) Watch(varID string, opts ...core.BreakOption) error {
	return t.Arm(core.WatchProbe(varID, opts...))
}

// armWatch performs the watchpoint insertion. The MI -break-watch command
// has no temporary (-t) form, so a one-shot watch is rejected up front
// rather than silently armed as persistent.
func (t *Tracker) armWatch(varID string, bc core.BreakConfig) error {
	if bc.OneShot {
		return fmt.Errorf("one-shot watchpoints: %w", core.ErrUnsupported)
	}
	fn, name := core.SplitVarID(varID)
	expr := name
	if fn != "" && fn != "::" {
		expr = fn + ":" + name
	}
	var args []string
	if bc.Condition != "" {
		args = append(args, "-c", bc.Condition)
	}
	if bc.IgnoreHits > 0 {
		args = append(args, "-i", strconv.Itoa(bc.IgnoreHits))
	}
	args = append(args, expr)
	resp, err := t.send("-break-watch", args...)
	if err != nil {
		if strings.Contains(err.Error(), "no global") || strings.Contains(err.Error(), "no live local") {
			return core.ErrUnknownVariable
		}
		return err
	}
	wpt, _ := resp.Result.Results.Get("wpt").(mi.Tuple)
	no, _ := wpt.GetInt("number")
	t.watches[int(no)] = varID
	t.obs.Gauge(core.GaugeWatches).Set(int64(len(t.watches)))
	return nil
}

// ensureRunning starts the inferior implicitly when breakpoints are set
// before Start (the debugger needs a live process to own them; the paper's
// scripts call the control functions in either order).
func (t *Tracker) ensureRunning() error {
	if t.started {
		return nil
	}
	if err := t.Start(); err != nil {
		return err
	}
	t.implicit = true
	return nil
}

func bpNumber(resp *mi.Response) int {
	bkpt, _ := resp.Result.Results.Get("bkpt").(mi.Tuple)
	no, _ := bkpt.GetInt("number")
	return int(no)
}

// PauseReason reports why the inferior paused.
func (t *Tracker) PauseReason() core.PauseReason { return t.reason }

// ExitCode returns the exit status after termination.
func (t *Tracker) ExitCode() (int, bool) {
	if !t.exited {
		return 0, false
	}
	return t.exitCode, true
}

// fetchState pulls the serialized snapshot across the pipe.
func (t *Tracker) fetchState() (*core.State, error) {
	if t.dead {
		return nil, t.sessionDead("State")
	}
	if !t.started {
		return nil, core.ErrNotStarted
	}
	if t.exited && !t.replaying() {
		return nil, core.ErrExited
	}
	if t.state != nil {
		t.obs.Counter(core.CtrSnapshotHits).Inc()
		return t.state, nil
	}
	if st := t.revalidateStale(); st != nil {
		t.obs.Counter(core.CtrSnapshotHits).Inc()
		return st, nil
	}
	sp := t.tracer.StartOp(core.OpStateFetch)
	t0 := t.obs.Now()
	resp, err := t.send("-et-inspect")
	if err != nil {
		sp.EndErr(err)
		return nil, err
	}
	var st core.State
	if err := json.Unmarshal([]byte(resp.Result.GetString("state")), &st); err != nil {
		sp.EndErr(err)
		return nil, fmt.Errorf("gdbtracker: bad state payload: %w", err)
	}
	t.state = &st
	t.stateVersion, _ = strconv.ParseUint(resp.Result.GetString("version"), 10, 64)
	t.obs.Observe(core.OpStateFetch, t0)
	sp.End()
	t.obs.Counter(core.CtrSnapshotMisses).Inc()
	return &st, nil
}

// revalidateStale reuses the previous pause's snapshot when a single
// -data-watch-version round trip proves no store (or debugger write, or
// heap move) happened since it was serialized and the innermost frame is
// still the same invocation (same function name at the same frame depth).
// Only the position and pause reason can differ, and both are known
// locally from the *stopped record, so the stale snapshot is revalidated
// as a shallow clone with a fresh innermost Frame — the full state
// transfer and JSON decode are skipped. Cloning matters: consumers
// (pt.Record) retain each pause's State, so patching the previous pause's
// snapshot in place would retroactively rewrite recorded traces.
func (t *Tracker) revalidateStale() *core.State {
	if t.stale == nil || t.stale.Frame == nil {
		return nil
	}
	resp, err := t.send("-data-watch-version")
	if err != nil {
		return nil
	}
	ver, err := strconv.ParseUint(resp.Result.GetString("version"), 10, 64)
	if err != nil || ver != t.staleVersion ||
		t.staleFunc != t.curFunc || t.stale.Frame.Name != t.curFunc ||
		t.staleDepth != t.curDepth {
		return nil
	}
	cp := *t.stale
	fr := *t.stale.Frame
	fr.Line = t.curLine
	cp.Frame = &fr
	cp.Reason = t.reason
	t.state, t.stateVersion = &cp, ver
	t.stale = nil
	return &cp
}

// WatchVersions returns the per-watchpoint store counters (number of
// stores so far overlapping each armed watchpoint's range), keyed by
// watchpoint number, via one -data-watch-version round trip.
func (t *Tracker) WatchVersions() (map[int]uint64, error) {
	if t.dead {
		return nil, t.sessionDead("WatchVersions")
	}
	if !t.started {
		return nil, t.werr("WatchVersions", core.ErrNotStarted)
	}
	if t.exited {
		return nil, t.werr("WatchVersions", core.ErrExited)
	}
	resp, err := t.send("-data-watch-version")
	if err != nil {
		return nil, t.werr("WatchVersions", err)
	}
	out := map[int]uint64{}
	lst, _ := resp.Result.Results.Get("watch-versions").(mi.List)
	for _, el := range lst {
		tp, ok := el.(mi.Tuple)
		if !ok {
			continue
		}
		no, _ := tp.GetInt("number")
		ver, _ := strconv.ParseUint(tp.GetString("version"), 10, 64)
		out[int(no)] = ver
	}
	return out, nil
}

// CurrentFrame returns the innermost frame of the paused inferior.
func (t *Tracker) CurrentFrame() (*core.Frame, error) {
	st, err := t.fetchState()
	if err != nil {
		return nil, t.werr("CurrentFrame", err)
	}
	if st.Frame == nil {
		return nil, t.werr("CurrentFrame", core.ErrExited)
	}
	return st.Frame, nil
}

// GlobalVariables returns the program's globals (runtime internals hidden).
func (t *Tracker) GlobalVariables() ([]*core.Variable, error) {
	st, err := t.fetchState()
	if err != nil {
		return nil, t.werr("GlobalVariables", err)
	}
	return st.Globals, nil
}

// State returns the full snapshot (frames, globals, pause reason). The
// returned struct is a fresh shallow copy per call: callers may set its
// Reason without writing into the pause-scoped cache, but the Frame and
// Globals graphs are shared with the cache and must be treated as
// read-only.
func (t *Tracker) State() (*core.State, error) {
	st, err := t.fetchState()
	if err != nil {
		return nil, t.werr("State", err)
	}
	cp := *st
	return &cp, nil
}

// InvalidateStateCache drops the cached snapshot — including the stale
// revalidation candidate — so the next inspection crosses the pipe again
// with a full transfer (benchmarks measuring the transfer cost).
func (t *Tracker) InvalidateStateCache() {
	t.state = nil
	t.stale = nil
}

// Position returns the next line to execute.
func (t *Tracker) Position() (string, int) { return t.file, t.curLine }

// LastLine returns the most recently executed line.
func (t *Tracker) LastLine() int { return t.lastLine }

// SourceLines returns the program text.
func (t *Tracker) SourceLines() ([]string, error) {
	if !t.loaded {
		return nil, t.werr("SourceLines", core.ErrNoProgram)
	}
	return strings.Split(strings.TrimRight(t.source, "\n"), "\n"), nil
}

// Registers implements core.RegisterInspector (the paper's
// get_registers_gdb).
func (t *Tracker) Registers() (map[string]uint64, error) {
	if t.dead {
		return nil, t.sessionDead("Registers")
	}
	if !t.started {
		return nil, t.werr("Registers", core.ErrNotStarted)
	}
	regs, err := t.registerList()
	return regs, t.werr("Registers", err)
}

// ValueAt implements core.MemoryInspector (the paper's get_value_at_gdb).
func (t *Tracker) ValueAt(addr uint64, size int) ([]byte, error) {
	if t.dead {
		return nil, t.sessionDead("ValueAt")
	}
	if !t.started {
		return nil, t.werr("ValueAt", core.ErrNotStarted)
	}
	resp, err := t.send("-data-read-memory",
		strconv.FormatUint(addr, 10), strconv.Itoa(size))
	if err != nil {
		return nil, t.werr("ValueAt", err)
	}
	hexStr := resp.Result.GetString("memory")
	out := make([]byte, len(hexStr)/2)
	for i := range out {
		v, err := strconv.ParseUint(hexStr[2*i:2*i+2], 16, 8)
		if err != nil {
			return nil, err
		}
		out[i] = byte(v)
	}
	return out, nil
}

// MemorySegments implements core.MemoryInspector.
func (t *Tracker) MemorySegments() []core.Segment {
	if !t.started {
		return nil
	}
	resp, err := t.send("-et-segments")
	if err != nil {
		return nil
	}
	segs, _ := resp.Result.Results.Get("segments").(mi.List)
	var out []core.Segment
	for _, it := range segs {
		tp, _ := it.(mi.Tuple)
		start, _ := strconv.ParseUint(tp.GetString("start"), 10, 64)
		size, _ := strconv.ParseUint(tp.GetString("size"), 10, 64)
		out = append(out, core.Segment{Name: tp.GetString("name"), Start: start, Size: size})
	}
	return out
}

// HeapBlocks implements core.HeapInspector: the live allocation map
// maintained from the interposition watchpoints.
func (t *Tracker) HeapBlocks() (map[uint64]uint64, error) {
	if t.dead {
		return nil, t.sessionDead("HeapBlocks")
	}
	if !t.started {
		return nil, t.werr("HeapBlocks", core.ErrNotStarted)
	}
	resp, err := t.send("-et-heap-blocks")
	if err != nil {
		return nil, t.werr("HeapBlocks", err)
	}
	blocks, _ := resp.Result.Results.Get("blocks").(mi.List)
	out := map[uint64]uint64{}
	for _, it := range blocks {
		tp, _ := it.(mi.Tuple)
		addr, _ := strconv.ParseUint(tp.GetString("addr"), 10, 64)
		size, _ := strconv.ParseUint(tp.GetString("size"), 10, 64)
		out[addr] = size
	}
	return out, nil
}
