package asm

import (
	"strings"
	"testing"

	"easytracker/internal/isa"
	"easytracker/internal/vm"
)

func TestAllPseudoOperandErrors(t *testing.T) {
	cases := []string{
		"    .text\n    li a0\n",
		"    .text\n    li zz, 1\n",
		"    .text\n    la a0, missing\n",
		"    .text\n    mv a0\n",
		"    .text\n    mv a0, zz\n",
		"    .text\n    neg a0, zz\n",
		"    .text\n    not zz, a0\n",
		"    .text\n    snez a0, zz\n",
		"    .text\n    j\n",
		"    .text\n    beqz a0\n",
		"    .text\n    beqz zz, somewhere\n",
		"    .text\n    ble a0, a1\n",
		"    .text\n    jal a0\n",
		"    .text\n    jalr a0, a1, bad\n",
		"    .text\n    lui a0\n",
		"    .text\n    sd a0, nowhere(sp\n",
		"    .text\n    fadd a0, a1\n",
		"    .text\n    itof a0\n",
		"    .text\n    ecall a0\n",
	}
	for _, src := range cases {
		if _, err := Assemble("e.s", src); err == nil {
			t.Errorf("Assemble(%q) succeeded", src)
		}
	}
}

func TestDirectiveErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{"    .global\n    .text\n    nop\n", "needs a symbol"},
		{"    .text\n    .word 1\n", "outside .data"},
		{"    .text\n    .byte 1\n", "outside .data"},
		{"    .data\nw: .byte zz\n", "bad .byte"},
		{"    .data\ns: .asciz unquoted\n", "bad string"},
		{"    .data\nb: .space -4\n", "bad .space"},
		{"    .data\nb: .align 0\n", "bad .align"},
	}
	for _, c := range cases {
		_, err := Assemble("e.s", c.src)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Assemble(%q) = %v, want %q", c.src, err, c.want)
		}
	}
}

func TestCharLiteralImmediate(t *testing.T) {
	src := `    .text
    .global main
main:
    li a0, 'A'
    li a7, 3
    ecall
    li a0, 0
    li a7, 0
    ecall
`
	out, stop, _ := run(t, src, "")
	if stop.Kind != vm.StopExit || out != "A" {
		t.Errorf("stop=%v out=%q", stop.Kind, out)
	}
}

func TestLabelArithmetic(t *testing.T) {
	src := `    .data
tbl: .word 10, 20, 30
    .text
    .global main
main:
    ld a0, tbl+8(zero)
    li a7, 1
    ecall
    li a0, 0
    li a7, 0
    ecall
`
	out, stop, _ := run(t, src, "")
	if stop.Kind != vm.StopExit || out != "20" {
		t.Errorf("stop=%v out=%q", stop.Kind, out)
	}
}

func TestStartSymbolEntry(t *testing.T) {
	src := `    .text
    .global _start
_start:
    li a0, 3
    li a7, 0
    ecall
`
	p, err := Assemble("s.s", src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != isa.TextBase {
		t.Errorf("entry = %#x", p.Entry)
	}
	m, _ := vm.New(p, vm.Config{})
	if stop := m.Run(0); stop.Kind != vm.StopExit || stop.ExitCode != 3 {
		t.Errorf("stop %v code %d", stop.Kind, stop.ExitCode)
	}
}

func TestMultipleGlobalsFunctionRanges(t *testing.T) {
	src := `    .text
    .global main
    .global helper
main:
    call helper
    li a7, 0
    ecall
helper:
    li a0, 1
    ret
`
	p, err := Assemble("f.s", src)
	if err != nil {
		t.Fatal(err)
	}
	mainFn := p.FuncByName("main")
	helperFn := p.FuncByName("helper")
	if mainFn == nil || helperFn == nil {
		t.Fatal("functions missing")
	}
	if mainFn.End != helperFn.Entry {
		t.Errorf("main ends %#x, helper starts %#x", mainFn.End, helperFn.Entry)
	}
	if helperFn.End != isa.IndexToPC(len(p.Instrs)) {
		t.Errorf("helper end = %#x", helperFn.End)
	}
}

func TestBranchOutOfRangeReported(t *testing.T) {
	// A numeric offset beyond int32.
	src := "    .text\n    jal ra, 99999999999\n"
	if _, err := Assemble("e.s", src); err == nil {
		t.Error("out-of-range branch accepted")
	}
}

func TestTailPseudo(t *testing.T) {
	src := `    .text
    .global main
main:
    tail fin
    nop
fin:
    li a0, 2
    li a7, 0
    ecall
`
	_, stop, m := run(t, src, "")
	if stop.Kind != vm.StopExit || stop.ExitCode != 2 {
		t.Errorf("stop %v code %d", stop.Kind, stop.ExitCode)
	}
	_ = m
}
