package asm

import (
	"strings"
	"testing"

	"easytracker/internal/isa"
	"easytracker/internal/vm"
)

func assemble(t *testing.T, src string) *isa.Program {
	t.Helper()
	p, err := Assemble("t.s", src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return p
}

func run(t *testing.T, src string, stdin string) (string, vm.Stop, *vm.Machine) {
	t.Helper()
	p := assemble(t, src)
	var out strings.Builder
	m, err := vm.New(p, vm.Config{Stdout: &out, Stdin: strings.NewReader(stdin)})
	if err != nil {
		t.Fatalf("vm.New: %v", err)
	}
	stop := m.Run(0)
	return out.String(), stop, m
}

const helloSrc = `
    .data
msg: .asciz "hello\n"
    .text
    .global main
main:
    la a0, msg
    li a7, 2        # print_str
    ecall
    li a0, 0
    li a7, 0        # exit
    ecall
`

func TestHelloWorld(t *testing.T) {
	out, stop, _ := run(t, helloSrc, "")
	if stop.Kind != vm.StopExit || stop.ExitCode != 0 {
		t.Fatalf("stop %v code %d err %v", stop.Kind, stop.ExitCode, stop.Err)
	}
	if out != "hello\n" {
		t.Errorf("output %q", out)
	}
}

func TestLoopAndBranches(t *testing.T) {
	src := `
    .text
    .global main
main:
    li t0, 0        # i
    li t1, 0        # sum
loop:
    bge t0, t2, done    # t2 = 0... set below
    nop
done:
    li t2, 5
    li t0, 0
    li t1, 0
again:
    bge t0, t2, end
    add t1, t1, t0
    addi t0, t0, 1
    j again
end:
    mv a0, t1
    li a7, 1
    ecall           # print 0+1+2+3+4 = 10
    li a0, 0
    li a7, 0
    ecall
`
	out, stop, _ := run(t, src, "")
	if stop.Kind != vm.StopExit {
		t.Fatalf("stop %v err %v", stop.Kind, stop.Err)
	}
	if out != "10" {
		t.Errorf("output %q", out)
	}
}

func TestCallRetAndStackFrames(t *testing.T) {
	src := `
    .text
    .global main
    .global double
main:
    addi sp, sp, -16
    sd ra, 8(sp)
    li a0, 21
    call double
    ld ra, 8(sp)
    addi sp, sp, 16
    li a7, 1
    ecall
    li a0, 0
    li a7, 0
    ecall
double:
    add a0, a0, a0
    ret
`
	out, stop, _ := run(t, src, "")
	if stop.Kind != vm.StopExit {
		t.Fatalf("stop %v err %v", stop.Kind, stop.Err)
	}
	if out != "42" {
		t.Errorf("output %q", out)
	}
}

func TestDataDirectives(t *testing.T) {
	src := `
    .data
nums:  .word 10, 20, 30
bytes: .byte 1, 2
       .align 8
after: .word 99
    .text
    .global main
main:
    la t0, nums
    ld a0, 8(t0)    # nums[1]
    li a7, 1
    ecall
    li a0, 0
    li a7, 0
    ecall
`
	out, stop, m := run(t, src, "")
	if stop.Kind != vm.StopExit {
		t.Fatalf("stop %v err %v", stop.Kind, stop.Err)
	}
	if out != "20" {
		t.Errorf("output %q", out)
	}
	p := m.Prog()
	g := p.GlobalByName("after")
	if g == nil {
		t.Fatal("after symbol missing")
	}
	if uint64(g.Offset)%8 != 0 {
		t.Errorf("after not aligned: %#x", g.Offset)
	}
	v, err := m.ReadU64(uint64(g.Offset))
	if err != nil || v != 99 {
		t.Errorf("after = %d, %v", v, err)
	}
}

func TestFunctionsAndLineTable(t *testing.T) {
	p := assemble(t, helloSrc)
	f := p.FuncByName("main")
	if f == nil {
		t.Fatal("main not found")
	}
	if f.Entry != p.Entry {
		t.Errorf("entry mismatch: %#x vs %#x", f.Entry, p.Entry)
	}
	// Every instruction has a line.
	for i := range p.Instrs {
		if p.LineAt(isa.IndexToPC(i)) == 0 {
			t.Errorf("instruction %d has no line", i)
		}
	}
	// `la a0, msg` is on source line 7.
	if got := p.LineAt(p.Entry); got != 7 {
		t.Errorf("entry line = %d", got)
	}
}

func TestPseudoInstructions(t *testing.T) {
	src := `
    .text
    .global main
main:
    li t0, -5
    neg t1, t0          # 5
    not t2, t0          # 4
    snez t3, t0         # 1
    beqz zero, is_zero
    j fail
is_zero:
    bnez t0, not_zero
    j fail
not_zero:
    bltz t0, was_neg
    j fail
was_neg:
    bgtz t1, pos
    j fail
pos:
    ble t0, t1, le_ok
    j fail
le_ok:
    bgt t1, t0, done
fail:
    li a0, 1
    li a7, 0
    ecall
done:
    add a0, t1, t2      # 5+4 = 9
    add a0, a0, t3      # 10
    li a7, 0
    ecall
`
	_, stop, _ := run(t, src, "")
	if stop.Kind != vm.StopExit || stop.ExitCode != 10 {
		t.Fatalf("stop %v code %d err %v", stop.Kind, stop.ExitCode, stop.Err)
	}
}

func TestReadInt(t *testing.T) {
	src := `
    .text
    .global main
main:
    li a7, 6
    ecall
    mv t0, a0
    li a7, 6
    ecall
    add a0, a0, t0
    li a7, 1
    ecall
    li a0, 0
    li a7, 0
    ecall
`
	out, stop, _ := run(t, src, "20 22\n")
	if stop.Kind != vm.StopExit {
		t.Fatalf("stop %v", stop.Kind)
	}
	if out != "42" {
		t.Errorf("output %q", out)
	}
}

func TestMultipleRetsDetectable(t *testing.T) {
	// A hand-written function with two rets — the case the paper's
	// single-epilogue assumption misses; our scan finds both.
	src := `
    .text
    .global main
    .global par
main:
    li a0, 3
    call par
    li a7, 0
    ecall
par:
    andi t0, a0, 1
    beqz t0, even
    li a0, 1
    ret
even:
    li a0, 0
    ret
`
	p := assemble(t, src)
	f := p.FuncByName("par")
	if f == nil {
		t.Fatal("par missing")
	}
	rets := 0
	for _, d := range p.Disassemble(f.Entry, f.End) {
		if d.Instr.IsRet() {
			rets++
		}
	}
	if rets != 2 {
		t.Errorf("found %d rets, want 2", rets)
	}
}

func TestCommentsAndLabelsOnOwnLine(t *testing.T) {
	src := `
# full line comment
    .text
    .global main
main:               # label line
    li a0, 0        ; semicolon comment
    li a7, 0
    ecall
`
	out, stop, _ := run(t, src, "")
	_ = out
	if stop.Kind != vm.StopExit {
		t.Fatalf("stop %v err %v", stop.Kind, stop.Err)
	}
}

func TestAsmErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{"    .text\n    frob a0, a1\n", "unknown instruction"},
		{"    .text\n    add a0\n", "expects 3 operands"},
		{"    .text\n    add a0, a1, qq\n", "bad register"},
		{"    .text\n    j nowhere\n", "undefined symbol"},
		{"    .text\nx:\nx:\n    nop\n", "duplicate label"},
		{"    .data\n    nop\n", "outside .text"},
		{"    .text\n    .bogus\n", "unknown directive"},
		{"    .text\n    li a0, 99999999999999\n", "out of 32-bit range"},
		{"    .data\nw: .word zz\n", "bad .word"},
		{"    .text\n    ld a0, nowhere\n", "bad memory operand"},
		{"", "no instructions"},
	}
	for _, c := range cases {
		_, err := Assemble("e.s", c.src)
		if err == nil {
			t.Errorf("Assemble(%q) succeeded", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Assemble(%q) error %q, want %q", c.src, err, c.want)
		}
	}
}

func TestDisasmReassembleRoundTrip(t *testing.T) {
	// Disassembling the text and reassembling yields the same encoding
	// (labels become raw offsets, which the disassembler emits as
	// numbers the assembler accepts).
	p := assemble(t, helloSrc)
	var sb strings.Builder
	sb.WriteString(".text\n.global main\nmain:\n")
	for _, d := range p.Disassemble(isa.TextBase, isa.IndexToPC(len(p.Instrs))) {
		sb.WriteString("    " + d.Text + "\n")
	}
	p2, err := Assemble("rt.s", sb.String())
	if err != nil {
		t.Fatalf("reassemble: %v\n%s", err, sb.String())
	}
	if len(p2.Instrs) != len(p.Instrs) {
		t.Fatalf("instruction count %d vs %d", len(p2.Instrs), len(p.Instrs))
	}
	for i := range p.Instrs {
		if p.Instrs[i] != p2.Instrs[i] {
			t.Errorf("instr %d: %v vs %v", i, p.Instrs[i], p2.Instrs[i])
		}
	}
}

func TestFloatOps(t *testing.T) {
	src := `
    .text
    .global main
main:
    li t0, 7
    itof t1, t0
    li t0, 2
    itof t2, t0
    fdiv a0, t1, t2
    li a7, 4
    ecall
    li a0, 0
    li a7, 0
    ecall
`
	out, stop, _ := run(t, src, "")
	if stop.Kind != vm.StopExit {
		t.Fatalf("stop %v err %v", stop.Kind, stop.Err)
	}
	if out != "3.5" {
		t.Errorf("output %q", out)
	}
}
