// Package asm implements a two-pass assembler for the isa package: labels,
// .text/.data sections, data directives, RISC-V-style pseudo-instructions
// (li, la, mv, j, call, ret, beqz, ...), and per-line debug information so
// assembly programs can be stepped at source-line granularity (the paper's
// Fig. 7 RISC-V viewer workflow).
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"easytracker/internal/isa"
)

// AsmError is an assembly failure with position information.
type AsmError struct {
	File string
	Line int
	Msg  string
}

// Error implements error.
func (e *AsmError) Error() string {
	return fmt.Sprintf("%s:%d: %s", e.File, e.Line, e.Msg)
}

type section int

const (
	secText section = iota
	secData
)

// pendingInstr is a first-pass instruction awaiting label resolution.
type pendingInstr struct {
	line int
	op   string
	args []string
	pc   uint64
}

type assembler struct {
	file    string
	sec     section
	text    []pendingInstr
	data    []byte
	labels  map[string]uint64 // name -> address (text or data)
	globals []string          // .global names in order
}

// Assemble builds a program image from assembly source.
func Assemble(file, src string) (*isa.Program, error) {
	a := &assembler{
		file:   file,
		labels: map[string]uint64{},
	}
	lines := strings.Split(src, "\n")

	// Pass 1: record labels and instruction slots (pseudo-expansion size
	// must be known here, so expansion happens in pass 1 and operand
	// resolution in pass 2).
	for ln, raw := range lines {
		if err := a.scanLine(ln+1, raw); err != nil {
			return nil, err
		}
	}

	// Pass 2: resolve operands into instructions.
	prog := &isa.Program{
		SourceFile: file,
		Source:     src,
		Data:       a.data,
		Entry:      isa.TextBase,
	}
	for _, pi := range a.text {
		ins, err := a.resolve(pi)
		if err != nil {
			return nil, err
		}
		prog.Instrs = append(prog.Instrs, ins)
		prog.Lines = append(prog.Lines, isa.LineEntry{PC: pi.pc, Line: pi.line})
	}
	if len(prog.Instrs) == 0 {
		return nil, &AsmError{File: file, Line: 1, Msg: "no instructions"}
	}

	// Functions: every .global label in the text section opens a
	// function extending to the next text label that is also global, or
	// the end of text.
	end := isa.IndexToPC(len(prog.Instrs))
	var fnames []string
	for _, g := range a.globals {
		if addr, ok := a.labels[g]; ok && addr >= isa.TextBase && addr < end {
			fnames = append(fnames, g)
		}
	}
	for i, name := range fnames {
		fend := end
		for _, other := range fnames {
			oaddr := a.labels[other]
			if oaddr > a.labels[name] && oaddr < fend {
				fend = oaddr
			}
		}
		prog.Funcs = append(prog.Funcs, isa.FuncInfo{
			Name:  name,
			Entry: a.labels[name],
			End:   fend,
			Line:  prog.LineAt(a.labels[name]),
		})
		_ = i
	}
	if main, ok := a.labels["main"]; ok && main >= isa.TextBase && main < end {
		prog.Entry = main
	} else if start, ok := a.labels["_start"]; ok {
		prog.Entry = start
	}

	// Data labels become globals typed as raw words for the viewer.
	for name, addr := range a.labels {
		if addr >= isa.DataBase && addr < isa.DataBase+uint64(len(a.data)) {
			prog.Globals = append(prog.Globals, isa.VarInfo{
				Name: name, Type: isa.IntType(), Offset: int64(addr),
			})
		}
	}

	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

func (a *assembler) errf(line int, format string, args ...any) error {
	return &AsmError{File: a.file, Line: line, Msg: fmt.Sprintf(format, args...)}
}

// scanLine processes one source line in pass 1.
func (a *assembler) scanLine(ln int, raw string) error {
	line := raw
	if i := strings.IndexAny(line, "#;"); i >= 0 {
		// Don't strip inside string literals (.asciz "...#...").
		if q := strings.Index(line, "\""); q < 0 || q > i {
			line = line[:i]
		} else if e := strings.LastIndex(line, "\""); e >= 0 {
			if j := strings.IndexAny(line[e:], "#;"); j >= 0 {
				line = line[:e+j]
			}
		}
	}
	line = strings.TrimSpace(line)
	if line == "" {
		return nil
	}

	// Labels (possibly several on one line).
	for {
		i := strings.Index(line, ":")
		if i < 0 {
			break
		}
		name := strings.TrimSpace(line[:i])
		if !isIdent(name) {
			break
		}
		if _, dup := a.labels[name]; dup {
			return a.errf(ln, "duplicate label %q", name)
		}
		if a.sec == secText {
			a.labels[name] = isa.IndexToPC(len(a.text))
		} else {
			a.labels[name] = isa.DataBase + uint64(len(a.data))
		}
		line = strings.TrimSpace(line[i+1:])
	}
	if line == "" {
		return nil
	}

	if strings.HasPrefix(line, ".") {
		return a.directive(ln, line)
	}
	if a.sec != secText {
		return a.errf(ln, "instruction %q outside .text", line)
	}

	op, args := splitInstr(line)
	count, err := expansionSize(op, args)
	if err != nil {
		return a.errf(ln, "%v", err)
	}
	for i := 0; i < count; i++ {
		a.text = append(a.text, pendingInstr{
			line: ln, op: op, args: args,
			pc: isa.IndexToPC(len(a.text)),
		})
	}
	return nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r == '.' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func splitInstr(line string) (string, []string) {
	fields := strings.SplitN(line, " ", 2)
	op := strings.TrimSpace(fields[0])
	if len(fields) == 1 {
		return op, nil
	}
	rest := strings.TrimSpace(fields[1])
	if rest == "" {
		return op, nil
	}
	parts := strings.Split(rest, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return op, parts
}

// expansionSize returns how many machine instructions the (possibly pseudo)
// instruction expands to.
func expansionSize(op string, args []string) (int, error) {
	switch op {
	case "li", "la", "mv", "j", "call", "ret", "nop", "neg", "not",
		"beqz", "bnez", "blez", "bgez", "bltz", "bgtz", "ble", "bgt",
		"snez", "tail":
		return 1, nil
	}
	if _, ok := isa.OpByName(op); !ok {
		return 0, fmt.Errorf("unknown instruction %q", op)
	}
	return 1, nil
}

func (a *assembler) directive(ln int, line string) error {
	fields := strings.SplitN(line, " ", 2)
	dir := fields[0]
	rest := ""
	if len(fields) == 2 {
		rest = strings.TrimSpace(fields[1])
	}
	switch dir {
	case ".text":
		a.sec = secText
	case ".data":
		a.sec = secData
	case ".global", ".globl":
		if rest == "" {
			return a.errf(ln, "%s needs a symbol", dir)
		}
		a.globals = append(a.globals, rest)
	case ".word", ".quad", ".dword":
		if a.sec != secData {
			return a.errf(ln, "%s outside .data", dir)
		}
		for _, f := range strings.Split(rest, ",") {
			v, err := parseImm(strings.TrimSpace(f))
			if err != nil {
				return a.errf(ln, "bad .word operand: %v", err)
			}
			var b [8]byte
			for i := 0; i < 8; i++ {
				b[i] = byte(uint64(v) >> (8 * i))
			}
			a.data = append(a.data, b[:]...)
		}
	case ".byte":
		if a.sec != secData {
			return a.errf(ln, ".byte outside .data")
		}
		for _, f := range strings.Split(rest, ",") {
			v, err := parseImm(strings.TrimSpace(f))
			if err != nil {
				return a.errf(ln, "bad .byte operand: %v", err)
			}
			a.data = append(a.data, byte(v))
		}
	case ".asciz", ".string":
		s, err := strconv.Unquote(rest)
		if err != nil {
			return a.errf(ln, "bad string literal %s", rest)
		}
		a.data = append(a.data, []byte(s)...)
		a.data = append(a.data, 0)
	case ".space", ".zero":
		n, err := parseImm(rest)
		if err != nil || n < 0 {
			return a.errf(ln, "bad .space size %q", rest)
		}
		a.data = append(a.data, make([]byte, n)...)
	case ".align":
		n, err := parseImm(rest)
		if err != nil || n <= 0 {
			return a.errf(ln, "bad .align %q", rest)
		}
		for uint64(len(a.data))%uint64(n) != 0 {
			a.data = append(a.data, 0)
		}
	default:
		return a.errf(ln, "unknown directive %s", dir)
	}
	return nil
}

func parseImm(s string) (int64, error) {
	if s == "" {
		return 0, fmt.Errorf("empty immediate")
	}
	if len(s) == 3 && s[0] == '\'' && s[2] == '\'' {
		return int64(s[1]), nil
	}
	return strconv.ParseInt(s, 0, 64)
}

// operand resolution helpers

func (a *assembler) reg(ln int, s string) (isa.Reg, error) {
	r, ok := isa.RegByName(s)
	if !ok {
		return 0, a.errf(ln, "bad register %q", s)
	}
	return r, nil
}

// immOrLabel resolves an immediate, label address, or %lo-style arithmetic
// (label+offset).
func (a *assembler) immOrLabel(ln int, s string) (int64, error) {
	if v, err := parseImm(s); err == nil {
		return v, nil
	}
	base := s
	var off int64
	if i := strings.IndexAny(s, "+-"); i > 0 {
		v, err := parseImm(s[i:])
		if err == nil {
			base = s[:i]
			off = v
		}
	}
	if addr, ok := a.labels[base]; ok {
		return int64(addr) + off, nil
	}
	return 0, a.errf(ln, "undefined symbol %q", s)
}

// branchOff resolves a branch/jump target. A bare number is a pc-relative
// byte offset (what the disassembler prints); a label resolves to its
// pc-relative distance.
func (a *assembler) branchOff(ln int, target string, pc uint64) (int32, error) {
	if v, err := parseImm(target); err == nil {
		if int64(int32(v)) != v {
			return 0, a.errf(ln, "branch offset %q out of range", target)
		}
		return int32(v), nil
	}
	addr, err := a.immOrLabel(ln, target)
	if err != nil {
		return 0, err
	}
	diff := addr - int64(pc)
	if int64(int32(diff)) != diff {
		return 0, a.errf(ln, "branch target %q out of range", target)
	}
	return int32(diff), nil
}

func wantArgs(n int, args []string, ln int, a *assembler, op string) error {
	if len(args) != n {
		return a.errf(ln, "%s expects %d operands, got %d", op, n, len(args))
	}
	return nil
}

// memOperand parses "imm(reg)".
func (a *assembler) memOperand(ln int, s string) (int32, isa.Reg, error) {
	o := strings.Index(s, "(")
	c := strings.LastIndex(s, ")")
	if o < 0 || c <= o {
		return 0, 0, a.errf(ln, "bad memory operand %q", s)
	}
	immStr := strings.TrimSpace(s[:o])
	var imm int64
	if immStr != "" {
		v, err := a.immOrLabel(ln, immStr)
		if err != nil {
			return 0, 0, err
		}
		imm = v
	}
	r, err := a.reg(ln, strings.TrimSpace(s[o+1:c]))
	if err != nil {
		return 0, 0, err
	}
	if int64(int32(imm)) != imm {
		return 0, 0, a.errf(ln, "offset %d out of range", imm)
	}
	return int32(imm), r, nil
}

func (a *assembler) resolve(pi pendingInstr) (isa.Instr, error) {
	ln := pi.line
	op, args := pi.op, pi.args

	// Pseudo-instructions first.
	switch op {
	case "nop":
		return isa.Nop(), nil
	case "ret":
		return isa.Ret(), nil
	case "li":
		if err := wantArgs(2, args, ln, a, op); err != nil {
			return isa.Instr{}, err
		}
		rd, err := a.reg(ln, args[0])
		if err != nil {
			return isa.Instr{}, err
		}
		v, err := a.immOrLabel(ln, args[1])
		if err != nil {
			return isa.Instr{}, err
		}
		if int64(int32(v)) != v {
			return isa.Instr{}, a.errf(ln, "li immediate %d out of 32-bit range", v)
		}
		return isa.Instr{Op: isa.ADDI, Rd: rd, Rs1: isa.Zero, Imm: int32(v)}, nil
	case "la":
		if err := wantArgs(2, args, ln, a, op); err != nil {
			return isa.Instr{}, err
		}
		rd, err := a.reg(ln, args[0])
		if err != nil {
			return isa.Instr{}, err
		}
		addr, ok := a.labels[args[1]]
		if !ok {
			return isa.Instr{}, a.errf(ln, "undefined symbol %q", args[1])
		}
		return isa.Instr{Op: isa.ADDI, Rd: rd, Rs1: isa.Zero, Imm: int32(addr)}, nil
	case "mv":
		if err := wantArgs(2, args, ln, a, op); err != nil {
			return isa.Instr{}, err
		}
		rd, err := a.reg(ln, args[0])
		if err != nil {
			return isa.Instr{}, err
		}
		rs, err := a.reg(ln, args[1])
		if err != nil {
			return isa.Instr{}, err
		}
		return isa.Instr{Op: isa.ADDI, Rd: rd, Rs1: rs}, nil
	case "neg":
		if err := wantArgs(2, args, ln, a, op); err != nil {
			return isa.Instr{}, err
		}
		rd, err := a.reg(ln, args[0])
		if err != nil {
			return isa.Instr{}, err
		}
		rs, err := a.reg(ln, args[1])
		if err != nil {
			return isa.Instr{}, err
		}
		return isa.Instr{Op: isa.SUB, Rd: rd, Rs1: isa.Zero, Rs2: rs}, nil
	case "not":
		if err := wantArgs(2, args, ln, a, op); err != nil {
			return isa.Instr{}, err
		}
		rd, err := a.reg(ln, args[0])
		if err != nil {
			return isa.Instr{}, err
		}
		rs, err := a.reg(ln, args[1])
		if err != nil {
			return isa.Instr{}, err
		}
		return isa.Instr{Op: isa.XORI, Rd: rd, Rs1: rs, Imm: -1}, nil
	case "snez":
		if err := wantArgs(2, args, ln, a, op); err != nil {
			return isa.Instr{}, err
		}
		rd, err := a.reg(ln, args[0])
		if err != nil {
			return isa.Instr{}, err
		}
		rs, err := a.reg(ln, args[1])
		if err != nil {
			return isa.Instr{}, err
		}
		return isa.Instr{Op: isa.SLTU, Rd: rd, Rs1: isa.Zero, Rs2: rs}, nil
	case "j", "call", "tail":
		if err := wantArgs(1, args, ln, a, op); err != nil {
			return isa.Instr{}, err
		}
		off, err := a.branchOff(ln, args[0], pi.pc)
		if err != nil {
			return isa.Instr{}, err
		}
		rd := isa.Zero
		if op == "call" {
			rd = isa.RA
		}
		return isa.Instr{Op: isa.JAL, Rd: rd, Imm: off}, nil
	case "beqz", "bnez", "blez", "bgez", "bltz", "bgtz":
		if err := wantArgs(2, args, ln, a, op); err != nil {
			return isa.Instr{}, err
		}
		rs, err := a.reg(ln, args[0])
		if err != nil {
			return isa.Instr{}, err
		}
		off, err := a.branchOff(ln, args[1], pi.pc)
		if err != nil {
			return isa.Instr{}, err
		}
		switch op {
		case "beqz":
			return isa.Instr{Op: isa.BEQ, Rs1: rs, Rs2: isa.Zero, Imm: off}, nil
		case "bnez":
			return isa.Instr{Op: isa.BNE, Rs1: rs, Rs2: isa.Zero, Imm: off}, nil
		case "blez":
			return isa.Instr{Op: isa.BGE, Rs1: isa.Zero, Rs2: rs, Imm: off}, nil
		case "bgez":
			return isa.Instr{Op: isa.BGE, Rs1: rs, Rs2: isa.Zero, Imm: off}, nil
		case "bltz":
			return isa.Instr{Op: isa.BLT, Rs1: rs, Rs2: isa.Zero, Imm: off}, nil
		default: // bgtz
			return isa.Instr{Op: isa.BLT, Rs1: isa.Zero, Rs2: rs, Imm: off}, nil
		}
	case "ble", "bgt":
		if err := wantArgs(3, args, ln, a, op); err != nil {
			return isa.Instr{}, err
		}
		rs1, err := a.reg(ln, args[0])
		if err != nil {
			return isa.Instr{}, err
		}
		rs2, err := a.reg(ln, args[1])
		if err != nil {
			return isa.Instr{}, err
		}
		off, err := a.branchOff(ln, args[2], pi.pc)
		if err != nil {
			return isa.Instr{}, err
		}
		if op == "ble" {
			return isa.Instr{Op: isa.BGE, Rs1: rs2, Rs2: rs1, Imm: off}, nil
		}
		return isa.Instr{Op: isa.BLT, Rs1: rs2, Rs2: rs1, Imm: off}, nil
	}

	o, _ := isa.OpByName(op)
	switch o {
	case isa.NOP, isa.ECALL, isa.EBREAK:
		if err := wantArgs(0, args, ln, a, op); err != nil {
			return isa.Instr{}, err
		}
		return isa.Instr{Op: o}, nil
	case isa.ADD, isa.SUB, isa.MUL, isa.DIV, isa.REM, isa.AND, isa.OR,
		isa.XOR, isa.SLL, isa.SRL, isa.SRA, isa.SLT, isa.SLTU,
		isa.FADD, isa.FSUB, isa.FMUL, isa.FDIV, isa.FEQ, isa.FLT, isa.FLE:
		if err := wantArgs(3, args, ln, a, op); err != nil {
			return isa.Instr{}, err
		}
		rd, err := a.reg(ln, args[0])
		if err != nil {
			return isa.Instr{}, err
		}
		rs1, err := a.reg(ln, args[1])
		if err != nil {
			return isa.Instr{}, err
		}
		rs2, err := a.reg(ln, args[2])
		if err != nil {
			return isa.Instr{}, err
		}
		return isa.Instr{Op: o, Rd: rd, Rs1: rs1, Rs2: rs2}, nil
	case isa.FNEG, isa.ITOF, isa.FTOI:
		if err := wantArgs(2, args, ln, a, op); err != nil {
			return isa.Instr{}, err
		}
		rd, err := a.reg(ln, args[0])
		if err != nil {
			return isa.Instr{}, err
		}
		rs1, err := a.reg(ln, args[1])
		if err != nil {
			return isa.Instr{}, err
		}
		return isa.Instr{Op: o, Rd: rd, Rs1: rs1}, nil
	case isa.ADDI, isa.ANDI, isa.ORI, isa.XORI, isa.SLLI, isa.SRLI,
		isa.SRAI, isa.SLTI:
		if err := wantArgs(3, args, ln, a, op); err != nil {
			return isa.Instr{}, err
		}
		rd, err := a.reg(ln, args[0])
		if err != nil {
			return isa.Instr{}, err
		}
		rs1, err := a.reg(ln, args[1])
		if err != nil {
			return isa.Instr{}, err
		}
		v, err := a.immOrLabel(ln, args[2])
		if err != nil {
			return isa.Instr{}, err
		}
		if int64(int32(v)) != v {
			return isa.Instr{}, a.errf(ln, "immediate %d out of range", v)
		}
		return isa.Instr{Op: o, Rd: rd, Rs1: rs1, Imm: int32(v)}, nil
	case isa.LUI:
		if err := wantArgs(2, args, ln, a, op); err != nil {
			return isa.Instr{}, err
		}
		rd, err := a.reg(ln, args[0])
		if err != nil {
			return isa.Instr{}, err
		}
		v, err := a.immOrLabel(ln, args[1])
		if err != nil {
			return isa.Instr{}, err
		}
		return isa.Instr{Op: o, Rd: rd, Imm: int32(v)}, nil
	case isa.LD, isa.LW, isa.LB, isa.LBU:
		if err := wantArgs(2, args, ln, a, op); err != nil {
			return isa.Instr{}, err
		}
		rd, err := a.reg(ln, args[0])
		if err != nil {
			return isa.Instr{}, err
		}
		imm, rs1, err := a.memOperand(ln, args[1])
		if err != nil {
			return isa.Instr{}, err
		}
		return isa.Instr{Op: o, Rd: rd, Rs1: rs1, Imm: imm}, nil
	case isa.SD, isa.SW, isa.SB:
		if err := wantArgs(2, args, ln, a, op); err != nil {
			return isa.Instr{}, err
		}
		rs2, err := a.reg(ln, args[0])
		if err != nil {
			return isa.Instr{}, err
		}
		imm, rs1, err := a.memOperand(ln, args[1])
		if err != nil {
			return isa.Instr{}, err
		}
		return isa.Instr{Op: o, Rs1: rs1, Rs2: rs2, Imm: imm}, nil
	case isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.BLTU, isa.BGEU:
		if err := wantArgs(3, args, ln, a, op); err != nil {
			return isa.Instr{}, err
		}
		rs1, err := a.reg(ln, args[0])
		if err != nil {
			return isa.Instr{}, err
		}
		rs2, err := a.reg(ln, args[1])
		if err != nil {
			return isa.Instr{}, err
		}
		off, err := a.branchOff(ln, args[2], pi.pc)
		if err != nil {
			return isa.Instr{}, err
		}
		return isa.Instr{Op: o, Rs1: rs1, Rs2: rs2, Imm: off}, nil
	case isa.JAL:
		if err := wantArgs(2, args, ln, a, op); err != nil {
			return isa.Instr{}, err
		}
		rd, err := a.reg(ln, args[0])
		if err != nil {
			return isa.Instr{}, err
		}
		off, err := a.branchOff(ln, args[1], pi.pc)
		if err != nil {
			return isa.Instr{}, err
		}
		return isa.Instr{Op: o, Rd: rd, Imm: off}, nil
	case isa.JALR:
		if err := wantArgs(3, args, ln, a, op); err != nil {
			return isa.Instr{}, err
		}
		rd, err := a.reg(ln, args[0])
		if err != nil {
			return isa.Instr{}, err
		}
		rs1, err := a.reg(ln, args[1])
		if err != nil {
			return isa.Instr{}, err
		}
		v, err := parseImm(args[2])
		if err != nil {
			return isa.Instr{}, a.errf(ln, "bad jalr offset %q", args[2])
		}
		return isa.Instr{Op: o, Rd: rd, Rs1: rs1, Imm: int32(v)}, nil
	}
	return isa.Instr{}, a.errf(ln, "unhandled instruction %q", op)
}
