package easytracker_test

import (
	"easytracker"

	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"easytracker/internal/gdbtracker"
	"easytracker/internal/mi"
)

var (
	buildOnce sync.Once
	binDir    string
	buildErr  error
)

// buildTools compiles every cmd/ binary once per test run.
func buildTools(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "et-bin-*")
		if err != nil {
			buildErr = err
			return
		}
		binDir = dir
		cmd := exec.Command("go", "build", "-o", dir+string(os.PathSeparator), "./cmd/...")
		cmd.Dir = "."
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = err
			t.Logf("build output: %s", out)
		}
	})
	if buildErr != nil {
		t.Fatalf("building tools: %v", buildErr)
	}
	return binDir
}

func bin(t *testing.T, name string) string {
	return filepath.Join(buildTools(t), name)
}

// run executes a tool and returns combined output and exit code.
func run(t *testing.T, name string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(bin(t, name), args...)
	out, err := cmd.CombinedOutput()
	code := 0
	if ee, ok := err.(*exec.ExitError); ok {
		code = ee.ExitCode()
	} else if err != nil {
		t.Fatalf("%s: %v\n%s", name, err, out)
	}
	return string(out), code
}

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestMinipyCLI(t *testing.T) {
	dir := t.TempDir()
	prog := writeFile(t, dir, "hello.py", "print(\"hi\", 1 + 1)\nexit(3)\n")
	out, code := run(t, "minipy", prog)
	if out != "hi 2\n" || code != 3 {
		t.Errorf("out=%q code=%d", out, code)
	}
	// argv passing.
	prog2 := writeFile(t, dir, "args.py", "print(argv)\n")
	out, code = run(t, "minipy", prog2, "a", "b")
	if out != "['a', 'b']\n" || code != 0 {
		t.Errorf("out=%q code=%d", out, code)
	}
	// Syntax errors exit 2.
	bad := writeFile(t, dir, "bad.py", "def f(:\n")
	_, code = run(t, "minipy", bad)
	if code != 2 {
		t.Errorf("bad program exit = %d", code)
	}
}

func TestMiniccCLI(t *testing.T) {
	dir := t.TempDir()
	prog := writeFile(t, dir, "p.c", `int main() {
    printf("answer %d\n", 6 * 7);
    return 5;
}`)
	out, code := run(t, "minicc", "run", prog)
	if out != "answer 42\n" || code != 5 {
		t.Errorf("run: out=%q code=%d", out, code)
	}
	// disasm shows functions and lines.
	out, code = run(t, "minicc", "disasm", prog)
	if code != 0 || !strings.Contains(out, "main:") || !strings.Contains(out, "ret") {
		t.Errorf("disasm: code=%d out=%.200s", code, out)
	}
	// build emits a loadable image.
	mobj := filepath.Join(dir, "p.mobj")
	out, code = run(t, "minicc", "build", prog, "-o", mobj)
	if code != 0 || !strings.Contains(out, "wrote") {
		t.Fatalf("build: code=%d out=%q", code, out)
	}
	if _, err := os.Stat(mobj); err != nil {
		t.Fatal(err)
	}
	// The image runs under minigdb (below).
	t.Run("subprocess-minigdb", func(t *testing.T) {
		testMinigdbSubprocess(t, mobj)
	})
}

// testMinigdbSubprocess drives the real minigdb binary over its stdio — the
// paper's Fig. 4 with genuine process separation.
func testMinigdbSubprocess(t *testing.T, progPath string) {
	cmd := exec.Command(bin(t, "minigdb"), progPath)
	stdin, err := cmd.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	conn := mi.NewStdioConn(stdout, stdin, nil)
	// The server greets with a prompt.
	if line, err := conn.Recv(); err != nil || line != "(gdb)" {
		t.Fatalf("greeting = %q, %v", line, err)
	}
	cl := mi.NewClient(conn)
	resp, err := cl.Send("-exec-run")
	if err != nil {
		t.Fatal(err)
	}
	stopped, ok := resp.Stopped()
	if !ok || stopped.GetString("reason") != "entry" {
		t.Fatalf("entry: %v", resp.Result.Print())
	}
	resp, err = cl.Send("-exec-continue")
	if err != nil {
		t.Fatal(err)
	}
	stopped, _ = resp.Stopped()
	if stopped.GetString("reason") != "exited" || stopped.GetString("exit-code") != "5" {
		t.Errorf("exit: %s", stopped.Print())
	}
	if out := cl.TakeOutput(); out != "answer 42\n" {
		t.Errorf("inferior output over subprocess pipe = %q", out)
	}
	if _, err := cl.Send("-gdb-exit"); err != nil {
		t.Fatal(err)
	}
	_ = cmd.Wait()
}

func TestEtStackheapCLI(t *testing.T) {
	dir := t.TempDir()
	prog := writeFile(t, dir, "p.py", "xs = [1, 2]\nys = xs\nprint(len(ys))\n")
	outDir := filepath.Join(dir, "imgs")
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		t.Fatal(err)
	}
	out, code := run(t, "et-stackheap", "-out", outDir, prog)
	if code != 0 {
		t.Fatalf("code=%d out=%s", code, out)
	}
	svgs, _ := filepath.Glob(filepath.Join(outDir, "*.svg"))
	if len(svgs) != 3 {
		t.Errorf("svg count = %d", len(svgs))
	}
	data, err := os.ReadFile(svgs[0])
	if err != nil || !strings.HasPrefix(string(data), "<svg") {
		t.Errorf("first svg: %v %.40s", err, data)
	}
}

func TestEtRecvizCLI(t *testing.T) {
	dir := t.TempDir()
	prog := writeFile(t, dir, "fact.py", `def fact(n):
    if n <= 1:
        return 1
    return n * fact(n - 1)

print(fact(4))
`)
	out, code := run(t, "et-recviz", "-out", dir, "-args", "n", prog, "fact")
	if code != 0 {
		t.Fatalf("code=%d out=%s", code, out)
	}
	dots, _ := filepath.Glob(filepath.Join(dir, "rec-*.dot"))
	if len(dots) == 0 {
		t.Fatal("no dot files")
	}
	data, _ := os.ReadFile(dots[len(dots)-1])
	if !strings.Contains(string(data), "fact(4)") {
		t.Errorf("final tree missing root label:\n%s", data)
	}
}

func TestEtInvariantCLI(t *testing.T) {
	dir := t.TempDir()
	prog := writeFile(t, dir, "sort.py", `def srt(a):
    i = 1
    while i < len(a):
        j = i
        while j > 0 and a[j - 1] > a[j]:
            a[j - 1], a[j] = a[j], a[j - 1]
            j = j - 1
        i = i + 1

data = [3, 1, 2]
srt(data)
print(data)
`)
	out, code := run(t, "et-invariant", "-out", dir, prog)
	if code != 0 {
		t.Fatalf("code=%d out=%s", code, out)
	}
	svgs, _ := filepath.Glob(filepath.Join(dir, "array-*.svg"))
	if len(svgs) == 0 {
		t.Error("no array views written")
	}
}

func TestEtMemviewCLI(t *testing.T) {
	dir := t.TempDir()
	prog := writeFile(t, dir, "m.s", `    .data
v: .word 7
    .text
    .global main
main:
    la t0, v
    ld t1, 0(t0)
    li a0, 0
    li a7, 0
    ecall
`)
	out, code := run(t, "et-memview", "-words", "2", prog)
	if code != 0 {
		t.Fatalf("code=%d out=%s", code, out)
	}
	for _, want := range []string{"registers:", "memory (data", "->"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestEtGameCLI(t *testing.T) {
	// Buggy level fails with hints.
	out, code := run(t, "et-game")
	if code != 1 {
		t.Fatalf("buggy level code = %d\n%s", code, out)
	}
	if !strings.Contains(out, "hint") || !strings.Contains(out, "check_key") {
		t.Errorf("hints missing:\n%s", out)
	}
	// Dump the level, apply the fix, win.
	src, code := run(t, "et-game", "-dump-level")
	if code != 0 || !strings.Contains(src, "BUG") {
		t.Fatalf("dump failed: %d", code)
	}
	fixed := strings.Replace(src, "int found = 1; /* BUG: should set has_key = 1; */",
		"has_key = 1;", 1)
	dir := t.TempDir()
	path := writeFile(t, dir, "fix.c", fixed)
	out, code = run(t, "et-game", path)
	if code != 0 || !strings.Contains(out, "LEVEL COMPLETE") {
		t.Errorf("fixed level: code=%d\n%s", code, out)
	}
}

func TestEtTraceCLI(t *testing.T) {
	dir := t.TempDir()
	prog := writeFile(t, dir, "f.py", `def f(n):
    return n + 1

print(f(1) + f(2))
`)
	trace := filepath.Join(dir, "f.trace")
	out, code := run(t, "et-trace", "record", "-track", "f", "-o", trace, prog)
	if code != 0 || !strings.Contains(out, "recorded") {
		t.Fatalf("record: code=%d out=%s", code, out)
	}
	out, code = run(t, "et-trace", "stats", trace)
	if code != 0 || !strings.Contains(out, "steps:") || !strings.Contains(out, "call") {
		t.Errorf("stats: code=%d out=%s", code, out)
	}
	html := filepath.Join(dir, "f.html")
	out, code = run(t, "et-trace", "html", "-o", html, trace)
	if code != 0 {
		t.Fatalf("html: code=%d out=%s", code, out)
	}
	page, err := os.ReadFile(html)
	if err != nil || !strings.Contains(string(page), "Forward") {
		t.Errorf("html page: %v", err)
	}
	out, code = run(t, "et-trace", "replay", trace)
	if code != 0 || !strings.Contains(out, "replay finished") {
		t.Errorf("replay: code=%d out=%.200s", code, out)
	}
}

func TestEtTablesCLI(t *testing.T) {
	out, code := run(t, "et-tables", "-verify")
	if code != 0 {
		t.Fatalf("verify failed:\n%s", out)
	}
	for _, want := range []string{"Table I", "Table II", "Table III", "EasyTracker", "ok   language-agnostic"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

// TestSubprocessTrackerEndToEnd runs the full EasyTracker API against a
// MiniGDB child process — the paper's Fig. 4 with genuine process
// separation at the tracker level.
func TestSubprocessTrackerEndToEnd(t *testing.T) {
	tr := gdbtracker.NewSubprocess(bin(t, "minigdb"))
	src := `int fib(int n) {
    if (n < 2) {
        return n;
    }
    return fib(n - 1) + fib(n - 2);
}
int main() {
    printf("%d\n", fib(5));
    return 0;
}`
	var out strings.Builder
	if err := tr.LoadProgram("fib.c",
		easytracker.WithSource(src), easytracker.WithStdout(&out)); err != nil {
		t.Fatal(err)
	}
	defer tr.Terminate()
	if err := tr.Start(); err != nil {
		t.Fatal(err)
	}
	if err := tr.TrackFunction("fib"); err != nil {
		t.Fatal(err)
	}
	calls := 0
	for {
		if err := tr.Resume(); err != nil {
			t.Fatal(err)
		}
		if _, done := tr.ExitCode(); done {
			break
		}
		if tr.PauseReason().Type == easytracker.PauseCall {
			calls++
			fr, err := tr.CurrentFrame()
			if err != nil {
				t.Fatal(err)
			}
			if fr.Name != "fib" {
				t.Errorf("frame = %s", fr.Name)
			}
		}
	}
	if calls != 15 { // fib(5) makes 15 calls
		t.Errorf("calls over subprocess = %d, want 15", calls)
	}
	if out.String() != "5\n" {
		t.Errorf("output = %q", out.String())
	}
}
