module easytracker

go 1.22
