package easytracker_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"easytracker"
)

// TestSpansPublicAPI drives a local tracker with span tracing on and checks
// the whole public surface: Spans, ExportSpans and the Chrome renderer.
func TestSpansPublicAPI(t *testing.T) {
	tr := newTracker(t, "minipy")
	err := tr.LoadProgram("agree.py",
		easytracker.WithSource(agreePy),
		easytracker.WithObservability(easytracker.WithSpanTracing(64)))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Start(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Resume(); err != nil {
		t.Fatal(err)
	}

	spans, ok := easytracker.Spans(tr)
	if !ok {
		t.Fatal("minipy tracker should expose spans")
	}
	var names []string
	for _, sp := range spans {
		names = append(names, sp.Name)
	}
	joined := strings.Join(names, " ")
	if !strings.Contains(joined, "op.start") || !strings.Contains(joined, "op.resume") {
		t.Fatalf("op spans missing: %v", names)
	}

	var dumpBuf bytes.Buffer
	if err := easytracker.ExportSpans(&dumpBuf, "tool", tr); err != nil {
		t.Fatal(err)
	}
	var dump easytracker.SpanDump
	if err := json.Unmarshal(dumpBuf.Bytes(), &dump); err != nil {
		t.Fatal(err)
	}
	if dump.Proc != "tool" || len(dump.Spans) != len(spans) {
		t.Fatalf("dump drifted: proc=%q n=%d want %d", dump.Proc, len(dump.Spans), len(spans))
	}

	var chrome bytes.Buffer
	if err := easytracker.WriteChromeTrace(&chrome, &dump); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(chrome.String(), `"traceEvents"`) ||
		!strings.Contains(chrome.String(), "op.resume") {
		t.Fatal("chrome render missing events")
	}
}

// TestSpansOffByDefault: without WithSpanTracing a tracker records no spans
// and Spans reports ok=false — the disabled path is the default.
func TestSpansOffByDefault(t *testing.T) {
	tr := newTracker(t, "minipy")
	if err := tr.LoadProgram("agree.py", easytracker.WithSource(agreePy)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Start(); err != nil {
		t.Fatal(err)
	}
	spans, _ := easytracker.Spans(tr)
	if len(spans) != 0 {
		t.Fatalf("spans recorded with tracing off: %d", len(spans))
	}
}
