// Ablation benchmarks for the design choices the paper motivates:
//
//   - the MI pipe (Fig. 4): what the protocol layer costs over driving the
//     debugger directly;
//   - server-side maxdepth breakpoints (the custom GDB extension): what it
//     saves over pausing at every hit and filtering client-side;
//   - allocator interposition (the LD_PRELOAD shim): what the silent
//     watchpoints cost an allocation-heavy program;
//   - watchpoint count in the MiniPy tracker: the per-line comparison cost
//     that makes resume degrade to single-stepping.
package easytracker_test

import (
	"strings"
	"testing"

	"easytracker/internal/core"
	"easytracker/internal/dbg"
	"easytracker/internal/gdbtracker"
	"easytracker/internal/minic"
	"easytracker/internal/pytracker"
	"easytracker/internal/vm"
)

const ablFibC = `int fib(int n) {
    if (n < 2) {
        return n;
    }
    return fib(n - 1) + fib(n - 2);
}
int main() {
    int r = fib(8);
    printf("%d\n", r);
    return 0;
}`

// BenchmarkAblationDirectDbgStep steps line by line against the debugger
// core directly (no MI pipe).
func BenchmarkAblationDirectDbgStep(b *testing.B) {
	prog, err := minic.Compile("fib.c", ablFibC)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := dbg.New(prog, vm.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := d.Start(); err != nil {
			b.Fatal(err)
		}
		steps := 0
		for {
			if _, done := d.Exited(); done {
				break
			}
			if _, err := d.StepLine(nil); err != nil {
				b.Fatal(err)
			}
			steps++
		}
		b.ReportMetric(float64(steps), "lines/op")
	}
}

// BenchmarkAblationMIPipeStep is the same workload through the full MI
// protocol; the difference against DirectDbgStep is the pipe cost the
// paper accepts for process separation.
func BenchmarkAblationMIPipeStep(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := gdbtracker.New()
		if err := tr.LoadProgram("fib.c", core.WithSource(ablFibC)); err != nil {
			b.Fatal(err)
		}
		if err := tr.Start(); err != nil {
			b.Fatal(err)
		}
		steps := 0
		for {
			if _, done := tr.ExitCode(); done {
				break
			}
			if err := tr.Step(); err != nil {
				b.Fatal(err)
			}
			steps++
		}
		b.ReportMetric(float64(steps), "lines/op")
		tr.Terminate()
	}
}

// BenchmarkAblationMaxDepthServerSide uses the paper's custom maxdepth
// breakpoint: filtered activations never cross the pipe.
func BenchmarkAblationMaxDepthServerSide(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := gdbtracker.New()
		if err := tr.LoadProgram("fib.c", core.WithSource(ablFibC)); err != nil {
			b.Fatal(err)
		}
		if err := tr.Start(); err != nil {
			b.Fatal(err)
		}
		if err := tr.BreakBeforeFunc("fib", core.WithMaxDepth(2)); err != nil {
			b.Fatal(err)
		}
		pauses := 0
		for {
			if err := tr.Resume(); err != nil {
				b.Fatal(err)
			}
			if _, done := tr.ExitCode(); done {
				break
			}
			pauses++
		}
		b.ReportMetric(float64(pauses), "pipe-pauses/op")
		tr.Terminate()
	}
}

// BenchmarkAblationMaxDepthClientSide ablates the extension: an unfiltered
// breakpoint pauses on every activation and the tracker inspects the depth
// and resumes — every hit pays a pipe round trip plus a state transfer.
func BenchmarkAblationMaxDepthClientSide(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := gdbtracker.New()
		if err := tr.LoadProgram("fib.c", core.WithSource(ablFibC)); err != nil {
			b.Fatal(err)
		}
		if err := tr.Start(); err != nil {
			b.Fatal(err)
		}
		if err := tr.BreakBeforeFunc("fib"); err != nil {
			b.Fatal(err)
		}
		pauses, kept := 0, 0
		for {
			if err := tr.Resume(); err != nil {
				b.Fatal(err)
			}
			if _, done := tr.ExitCode(); done {
				break
			}
			pauses++
			fr, err := tr.CurrentFrame()
			if err != nil {
				b.Fatal(err)
			}
			if fr.Depth < 2 {
				kept++
			}
		}
		if kept == 0 {
			b.Fatal("no kept pauses")
		}
		b.ReportMetric(float64(pauses), "pipe-pauses/op")
		tr.Terminate()
	}
}

const ablAllocC = `int main() {
    for (int i = 0; i < 50; i++) {
        char* p = malloc(32);
        free(p);
    }
    return 0;
}`

// BenchmarkAblationHeapTrackingOff runs an allocation-heavy program without
// interposition watchpoints.
func BenchmarkAblationHeapTrackingOff(b *testing.B) {
	benchAlloc(b, false)
}

// BenchmarkAblationHeapTrackingOn pays for the silent interposition
// watchpoints on every malloc/free.
func BenchmarkAblationHeapTrackingOn(b *testing.B) {
	benchAlloc(b, true)
}

func benchAlloc(b *testing.B, track bool) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := gdbtracker.New()
		opts := []core.LoadOption{core.WithSource(ablAllocC)}
		if track {
			opts = append(opts, core.WithHeapTracking())
		}
		if err := tr.LoadProgram("alloc.c", opts...); err != nil {
			b.Fatal(err)
		}
		if err := tr.Start(); err != nil {
			b.Fatal(err)
		}
		if err := tr.Resume(); err != nil {
			b.Fatal(err)
		}
		if _, done := tr.ExitCode(); !done {
			b.Fatal("did not finish")
		}
		tr.Terminate()
	}
}

// BenchmarkAblationEngineMiniPy ablates the bytecode VM: the watchpoint
// resume workload on the default compiled engine versus the tree-walking
// reference selected by WithASTInterpreter. Both see the identical trace
// stream; the delta is what compile-time name resolution and the flat
// dispatch loop buy over per-node tree walking.
func BenchmarkAblationEngineMiniPy(b *testing.B) {
	src := "total = 0\nk = 0\nwhile k < 200:\n    k = k + 1\ntotal = 1\n"
	for _, eng := range []struct {
		name string
		opts []core.LoadOption
	}{
		{"bytecode", nil},
		{"ast", []core.LoadOption{core.WithASTInterpreter()}},
	} {
		b.Run(eng.name, func(b *testing.B) {
			b.ReportAllocs()
			opts := append([]core.LoadOption{core.WithSource(src)}, eng.opts...)
			for i := 0; i < b.N; i++ {
				tr := pytracker.New()
				if err := tr.LoadProgram("w.py", opts...); err != nil {
					b.Fatal(err)
				}
				if err := tr.Start(); err != nil {
					b.Fatal(err)
				}
				if err := tr.Watch("::total"); err != nil {
					b.Fatal(err)
				}
				for {
					if err := tr.Resume(); err != nil {
						b.Fatal(err)
					}
					if _, done := tr.ExitCode(); done {
						break
					}
				}
				tr.Terminate()
			}
		})
	}
}

// BenchmarkAblationWatchCountMiniPy measures how the number of watched
// variables scales the per-line cost of resume in the MiniPy tracker.
func BenchmarkAblationWatchCountMiniPy(b *testing.B) {
	src := `a = 0
b = 0
c = 0
d = 0
k = 0
while k < 300:
    k = k + 1
a = 1
`
	for _, watches := range []int{0, 1, 4} {
		watches := watches
		b.Run(strings.Repeat("w", watches)+"-watches", func(b *testing.B) {
			b.ReportAllocs()
			names := []string{"::a", "::b", "::c", "::d"}
			for i := 0; i < b.N; i++ {
				tr := pytracker.New()
				if err := tr.LoadProgram("w.py", core.WithSource(src)); err != nil {
					b.Fatal(err)
				}
				if err := tr.Start(); err != nil {
					b.Fatal(err)
				}
				for w := 0; w < watches; w++ {
					if err := tr.Watch(names[w]); err != nil {
						b.Fatal(err)
					}
				}
				for {
					if err := tr.Resume(); err != nil {
						b.Fatal(err)
					}
					if _, done := tr.ExitCode(); done {
						break
					}
				}
				tr.Terminate()
			}
		})
	}
}
