package easytracker_test

import (
	"fmt"
	"os"

	"easytracker"
)

// Example reproduces the paper's Listing 1 control loop: step through a
// program line by line, reading the current frame at every pause. The same
// code controls MiniPy and MiniC inferiors; only the tracker kind differs.
func Example() {
	src := `def double(v):
    return v * 2

x = double(21)
print(x)
`
	tracker, err := easytracker.New("minipy")
	if err != nil {
		fmt.Println(err)
		return
	}
	if err := tracker.LoadProgram("demo.py",
		easytracker.WithSource(src),
		easytracker.WithStdout(os.Stdout)); err != nil {
		fmt.Println(err)
		return
	}
	defer tracker.Terminate()
	if err := tracker.Start(); err != nil {
		fmt.Println(err)
		return
	}

	for {
		if code, done := tracker.ExitCode(); done {
			fmt.Printf("exit %d\n", code)
			return
		}
		frame, err := tracker.CurrentFrame()
		if err != nil {
			fmt.Println(err)
			return
		}
		_, line := tracker.Position()
		fmt.Printf("paused in %s at line %d\n", frame.Name, line)
		if err := tracker.Step(); err != nil {
			fmt.Println(err)
			return
		}
	}

	// Output:
	// paused in <module> at line 1
	// paused in <module> at line 4
	// paused in double at line 2
	// paused in <module> at line 5
	// 42
	// exit 0
}

// ExampleTracker_Watch pauses whenever a variable changes, with the old and
// new values in the pause reason.
func ExampleTracker_Watch() {
	src := `total = 0
for i in range(3):
    total = total + 10
`
	tracker, _ := easytracker.New("minipy")
	_ = tracker.LoadProgram("w.py", easytracker.WithSource(src))
	defer tracker.Terminate()
	_ = tracker.Start()
	_ = tracker.Watch("::total")
	for {
		if _, done := tracker.ExitCode(); done {
			return
		}
		if err := tracker.Resume(); err != nil {
			fmt.Println(err)
			return
		}
		if r := tracker.PauseReason(); r.Type == easytracker.PauseWatch {
			fmt.Printf("total: %s -> %s\n", deref(r.Old), deref(r.New))
		}
	}

	// Output:
	// total: <undef> -> 0
	// total: 0 -> 10
	// total: 10 -> 20
	// total: 20 -> 30
}
