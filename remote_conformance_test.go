package easytracker_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"easytracker"
	"easytracker/internal/core"
	"easytracker/internal/pt"
	"easytracker/internal/query"
	"easytracker/internal/ttd"
	"easytracker/internal/vnet"
)

// The cross-backend conformance suite: the same scenario matrix — breakpoint,
// watch, tracked function, stepping, interrupt, resource budget, crash and
// the error surface — runs against each backend twice, once on a local
// tracker and once through a loopback et-serve session, and the transcripts
// must be identical: same pause reasons, same State JSON, same typed errors
// under errors.Is. This is the contract that makes -remote invisible to
// tools.

const crashPy = `x = 10
y = 0
z = x / y
`

// startConformanceServer runs a loopback server shared by the suite.
func startConformanceServer(t *testing.T) string {
	t.Helper()
	srv := easytracker.NewServer()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return ln.Addr().String()
}

// conformanceTracker builds the tracker under test: local, or a session on
// the loopback server.
func conformanceTracker(t *testing.T, kind, remoteAddr string) easytracker.Tracker {
	t.Helper()
	if remoteAddr == "" {
		tr, err := easytracker.New(kind)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	tr, err := easytracker.Connect(remoteAddr, kind)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	return tr
}

// errClass renders an error's observable identity: which sentinels it
// matches and, for typed errors, the full header. Local and remote failures
// must classify identically.
func errClass(err error) string {
	if err == nil {
		return "ok"
	}
	sentinels := []struct {
		name string
		err  error
	}{
		{"no-program", easytracker.ErrNoProgram},
		{"not-started", easytracker.ErrNotStarted},
		{"exited", easytracker.ErrExited},
		{"unknown-variable", easytracker.ErrUnknownVariable},
		{"unknown-function", easytracker.ErrUnknownFunction},
		{"bad-line", easytracker.ErrBadLine},
		{"unsupported", easytracker.ErrUnsupported},
		{"command-timeout", easytracker.ErrCommandTimeout},
		{"session-lost", easytracker.ErrSessionLost},
		{"inferior-crash", easytracker.ErrInferiorCrash},
	}
	var parts []string
	for _, s := range sentinels {
		if errors.Is(err, s.err) {
			parts = append(parts, s.name)
		}
	}
	var te *easytracker.TrackerError
	if errors.As(err, &te) {
		parts = append(parts, fmt.Sprintf("op=%s kind=%s at=%s:%d recovery=%s backtrace=%d",
			te.Op, te.Kind, te.File, te.Line, te.Recovery, len(te.Backtrace)))
	}
	return "err[" + strings.Join(parts, " ") + "]"
}

// note records one observation line into the transcript.
type transcript struct {
	lines []string
}

func (tr *transcript) note(format string, args ...any) {
	tr.lines = append(tr.lines, fmt.Sprintf(format, args...))
}

// observePause records the pause reason, position and — when the backend
// provides snapshots — the full State JSON.
func (tr *transcript) observePause(t *testing.T, tk easytracker.Tracker) {
	t.Helper()
	r := tk.PauseReason()
	file, line := tk.Position()
	tr.note("pause %s | pos %s:%d last %d", r, file, line, tk.LastLine())
	if sp, ok := easytracker.As[easytracker.StateProvider](tk); ok {
		if _, done := tk.ExitCode(); !done {
			st, err := sp.State()
			if err != nil {
				tr.note("state err %s", errClass(err))
				return
			}
			data, err := json.Marshal(st)
			if err != nil {
				t.Fatalf("marshal state: %v", err)
			}
			tr.note("state %s", data)
		}
	}
}

// resumeUntilExit resumes, observing every pause, with a runaway guard.
func (tr *transcript) resumeUntilExit(t *testing.T, tk easytracker.Tracker) {
	t.Helper()
	for i := 0; i < 100; i++ {
		if _, done := tk.ExitCode(); done {
			code, _ := tk.ExitCode()
			tr.note("exit %d", code)
			return
		}
		tr.note("resume %s", errClass(tk.Resume()))
		tr.observePause(t, tk)
	}
	t.Fatal("runaway resume loop")
}

// conformanceScenario is one cell row of the matrix.
type conformanceScenario struct {
	name string
	skip func(kind string) bool
	run  func(t *testing.T, tr *transcript, tk easytracker.Tracker, kind, path, src string)
}

func loadStart(t *testing.T, tr *transcript, tk easytracker.Tracker, path, src string, opts ...easytracker.LoadOption) {
	t.Helper()
	opts = append([]easytracker.LoadOption{easytracker.WithSource(src)}, opts...)
	tr.note("load %s", errClass(tk.LoadProgram(path, opts...)))
	tr.note("start %s", errClass(tk.Start()))
	tr.observePause(t, tk)
}

func conformanceScenarios() []conformanceScenario {
	return []conformanceScenario{
		{name: "breakpoint", run: func(t *testing.T, tr *transcript, tk easytracker.Tracker, kind, path, src string) {
			loadStart(t, tr, tk, path, src)
			// Line 11 is "total = total + square(i)" in both languages.
			tr.note("break %s", errClass(tk.BreakBeforeLine("", 11, easytracker.WithMaxDepth(3))))
			tr.resumeUntilExit(t, tk)
		}},
		{name: "watch", run: func(t *testing.T, tr *transcript, tk easytracker.Tracker, kind, path, src string) {
			loadStart(t, tr, tk, path, src)
			tr.note("watch %s", errClass(tk.Watch("::total")))
			tr.resumeUntilExit(t, tk)
		}},
		{name: "track", run: func(t *testing.T, tr *transcript, tk easytracker.Tracker, kind, path, src string) {
			loadStart(t, tr, tk, path, src)
			tr.note("track %s", errClass(tk.TrackFunction("square")))
			tr.note("break-func %s", errClass(tk.BreakBeforeFunc("run")))
			tr.resumeUntilExit(t, tk)
		}},
		{name: "step-next", run: func(t *testing.T, tr *transcript, tk easytracker.Tracker, kind, path, src string) {
			loadStart(t, tr, tk, path, src)
			for i := 0; i < 4; i++ {
				tr.note("step %s", errClass(tk.Step()))
				tr.observePause(t, tk)
			}
			for i := 0; i < 3; i++ {
				tr.note("next %s", errClass(tk.Next()))
				tr.observePause(t, tk)
			}
		}},
		{name: "interrupt",
			skip: func(kind string) bool { return kind == "trace" },
			run: func(t *testing.T, tr *transcript, tk easytracker.Tracker, kind, path, src string) {
				loadStart(t, tr, tk, path, src)
				// Interrupt while paused: the flag is sticky, so the next
				// Resume pauses immediately and deterministically.
				if !easytracker.Interrupt(tk) {
					t.Fatal("tracker refused Interrupt")
				}
				tr.note("resume %s", errClass(tk.Resume()))
				r := tk.PauseReason()
				tr.note("pause-type %s detail %s", r.Type, r.Detail)
			}},
		{name: "budget", run: func(t *testing.T, tr *transcript, tk easytracker.Tracker, kind, path, src string) {
			budget := easytracker.Budgets{MaxSteps: 10}
			if kind == "minigdb" {
				budget = easytracker.Budgets{MaxInstructions: 60}
			}
			loadStart(t, tr, tk, path, src, easytracker.WithBudgets(budget))
			tr.note("resume %s", errClass(tk.Resume()))
			r := tk.PauseReason()
			tr.note("pause-type %s detail %s", r.Type, r.Detail)
			// The budget is one-shot: the next resume runs free.
			tr.resumeUntilExit(t, tk)
		}},
		{name: "crash",
			skip: func(kind string) bool { return kind != "minipy" },
			run: func(t *testing.T, tr *transcript, tk easytracker.Tracker, kind, path, src string) {
				loadStart(t, tr, tk, "crash.py", crashPy)
				tr.note("resume %s", errClass(tk.Resume()))
				code, done := tk.ExitCode()
				tr.note("exitcode %d %v", code, done)
			}},
		{name: "error-surface", run: func(t *testing.T, tr *transcript, tk easytracker.Tracker, kind, path, src string) {
			loadStart(t, tr, tk, path, src)
			tr.note("watch-bad %s", errClass(tk.Watch("no_such_var")))
			tr.note("break-bad %s", errClass(tk.BreakBeforeLine("", 9999)))
			tr.note("track-bad %s", errClass(tk.TrackFunction("no_such_func")))
			tr.resumeUntilExit(t, tk)
			tr.note("resume-after-exit %s", errClass(tk.Resume()))
			tr.note("step-after-exit %s", errClass(tk.Step()))
		}},
	}
}

func TestRemoteConformance(t *testing.T) {
	addr := startConformanceServer(t)
	langs := []struct{ kind, path, src string }{
		{"minipy", "agree.py", agreePy},
		{"minigdb", "agree.c", agreeC},
	}
	for _, lang := range langs {
		for _, sc := range conformanceScenarios() {
			if sc.skip != nil && sc.skip(lang.kind) {
				continue
			}
			t.Run(lang.kind+"/"+sc.name, func(t *testing.T) {
				run := func(remoteAddr string) []string {
					tk := conformanceTracker(t, lang.kind, remoteAddr)
					defer tk.Terminate()
					tr := &transcript{}
					sc.run(t, tr, tk, lang.kind, lang.path, lang.src)
					return tr.lines
				}
				local := run("")
				remote := run(addr)
				if len(local) != len(remote) {
					t.Fatalf("transcript lengths differ: local %d, remote %d\nlocal:\n%s\nremote:\n%s",
						len(local), len(remote), strings.Join(local, "\n"), strings.Join(remote, "\n"))
				}
				for i := range local {
					if local[i] != remote[i] {
						t.Errorf("transcript line %d differs:\nlocal:  %s\nremote: %s", i, local[i], remote[i])
					}
				}
			})
		}
	}
}

// TestRemoteConformanceSubscribe proves the server-side subscription filter
// is an exact optimization: the pauses a Subscribe session surfaces are
// line-identical — reasons, positions and full State JSON — to what a client
// filtering every pause locally would keep, while moving strictly fewer wire
// frames in both directions.
func TestRemoteConformanceSubscribe(t *testing.T) {
	langs := []struct{ kind, path, src string }{
		{"minipy", "agree.py", agreePy},
		{"minigdb", "agree.c", agreeC},
	}
	// Line 11 is "total = total + square(i)" in both languages; the loop
	// runs i = 1..4, so the filter keeps the last two of four hits.
	const expr = "i >= 3"
	for _, lang := range langs {
		t.Run(lang.kind, func(t *testing.T) {
			// Each run gets its own loopback server so its frame counters
			// measure that run alone.
			run := func(subscribe bool) (lines []string, in, out, filtered uint64) {
				srv := easytracker.NewServer()
				ln, err := net.Listen("tcp", "127.0.0.1:0")
				if err != nil {
					t.Fatal(err)
				}
				go srv.Serve(ln)
				defer srv.Close()
				tk, err := easytracker.Connect(ln.Addr().String(), lang.kind)
				if err != nil {
					t.Fatal(err)
				}
				defer tk.Close()
				defer tk.Terminate()
				tr := &transcript{}
				if err := tk.LoadProgram(lang.path, easytracker.WithSource(lang.src)); err != nil {
					t.Fatalf("load: %v", err)
				}
				if err := tk.Start(); err != nil {
					t.Fatalf("start: %v", err)
				}
				if err := tk.BreakBeforeLine("", 11); err != nil {
					t.Fatalf("break: %v", err)
				}
				var filter *query.Program
				if subscribe {
					if err := tk.Subscribe(expr); err != nil {
						t.Fatalf("subscribe: %v", err)
					}
				} else {
					filter = query.MustCompile(expr)
				}
				sp, ok := easytracker.As[easytracker.StateProvider](tk)
				if !ok {
					t.Fatal("remote session denies StateProvider")
				}
				for i := 0; i < 100; i++ {
					if err := tk.Resume(); err != nil {
						t.Fatalf("resume: %v", err)
					}
					if _, done := tk.ExitCode(); done {
						code, _ := tk.ExitCode()
						tr.note("exit %d", code)
						snap := srv.Stats()
						return tr.lines, snap.Counters[core.CtrRemoteFramesIn],
							snap.Counters[core.CtrRemoteFramesOut],
							snap.Counters[core.CtrRemoteFiltered]
					}
					if filter != nil {
						// Client-side filtering: pull the snapshot for every
						// pause and mirror the server's event view.
						st, err := sp.State()
						if err != nil {
							t.Fatalf("state: %v", err)
						}
						r := tk.PauseReason()
						file, line := tk.Position()
						ev := query.EventLine
						switch r.Type {
						case easytracker.PauseCall:
							ev = query.EventCall
						case easytracker.PauseReturn:
							ev = query.EventReturn
						}
						v := query.StateView{
							EventName: ev, LineNo: line, FileName: file,
							FuncName: r.Function, State: st,
						}
						if !filter.Match(&v) {
							continue
						}
					}
					tr.observePause(t, tk)
				}
				t.Fatal("runaway resume loop")
				return nil, 0, 0, 0
			}
			client, cliIn, cliOut, cliFiltered := run(false)
			server, subIn, subOut, subFiltered := run(true)
			if len(client) == 0 || strings.Join(client, "\n") != strings.Join(server, "\n") {
				t.Errorf("transcripts differ:\nclient-filtered:\n%s\nsubscribed:\n%s",
					strings.Join(client, "\n"), strings.Join(server, "\n"))
			}
			if subIn >= cliIn || subOut >= cliOut {
				t.Errorf("subscription moved no fewer frames: in %d vs %d, out %d vs %d",
					subIn, cliIn, subOut, cliOut)
			}
			if cliFiltered != 0 {
				t.Errorf("client-filtered run counted %d server-side filtered pauses, want 0", cliFiltered)
			}
			if subFiltered != 2 {
				t.Errorf("subscribed run filtered %d pauses server-side, want 2 (i = 1, 2)", subFiltered)
			}
		})
	}
}

// TestRemoteConformanceTrace replays the same recorded trace locally and
// through the server. The trace file exists only on the client side: the
// client ships its bytes in the load spec, so the server needs no shared
// filesystem.
func TestRemoteConformanceTrace(t *testing.T) {
	addr := startConformanceServer(t)

	// Record a trace with a local tracker.
	rec, err := easytracker.New("minipy")
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := rec.LoadProgram("agree.py", easytracker.WithSource(agreePy),
		easytracker.WithStdout(&out)); err != nil {
		t.Fatal(err)
	}
	trace, err := pt.Record(rec, &out, pt.Options{Mode: pt.ModeFullStep, Lang: "minipy"})
	if err != nil {
		t.Fatal(err)
	}
	data, err := trace.Encode()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "agree.trace")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	run := func(remoteAddr string) []string {
		tk := conformanceTracker(t, "trace", remoteAddr)
		defer tk.Terminate()
		tr := &transcript{}
		tr.note("load %s", errClass(tk.LoadProgram(path)))
		tr.note("start %s", errClass(tk.Start()))
		tr.observePause(t, tk)
		for i := 0; i < 10; i++ {
			tr.note("step %s", errClass(tk.Step()))
			tr.observePause(t, tk)
		}
		return tr.lines
	}
	local := run("")
	remote := run(addr)
	for i := range local {
		if i >= len(remote) || local[i] != remote[i] {
			t.Fatalf("trace transcript line %d differs:\nlocal:  %s\nremote: %v",
				i, local[i], remote[min(i, len(remote)-1)])
		}
	}
}

// recordAgreeTraces records agreePy once and writes it out in both trace
// formats: v1 (full-step states) and v2 (deltas + checkpoints). The two
// files describe the same execution, so every observation made through
// either must agree.
func recordAgreeTraces(t *testing.T) (v1Path, v2Path string) {
	t.Helper()
	rec, err := easytracker.New("minipy")
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := rec.LoadProgram("agree.py", easytracker.WithSource(agreePy),
		easytracker.WithStdout(&out)); err != nil {
		t.Fatal(err)
	}
	trace, err := pt.Record(rec, &out, pt.Options{Mode: pt.ModeFullStep, Lang: "minipy"})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	v1, err := trace.Encode()
	if err != nil {
		t.Fatal(err)
	}
	v1Path = filepath.Join(dir, "agree.v1.trace")
	if err := os.WriteFile(v1Path, v1, 0o644); err != nil {
		t.Fatal(err)
	}
	store, err := ttd.FromTrace(trace, 0)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := store.Trace().Encode()
	if err != nil {
		t.Fatal(err)
	}
	v2Path = filepath.Join(dir, "agree.v2.trace")
	if err := os.WriteFile(v2Path, v2, 0o644); err != nil {
		t.Fatal(err)
	}
	return v1Path, v2Path
}

// noteChange renders a reverse-watch answer into the transcript.
func (tr *transcript) noteChange(tag string, ch *easytracker.VarChange, err error) {
	if err != nil || ch == nil {
		tr.note("%s %s", tag, errClass(err))
		return
	}
	data, _ := json.Marshal(ch)
	tr.note("%s %s", tag, data)
}

// TestRemoteConformanceTimeTravel drives the reverse operations — StepBack,
// SeekTo, ResumeBack, NextBack, LastChange — on a trace-backed session,
// locally and through the loopback server, in both trace formats. All four
// transcripts (v1/v2 × local/remote) must be line-identical: the wire and
// the delta encoding are both invisible to a tool replaying history.
func TestRemoteConformanceTimeTravel(t *testing.T) {
	addr := startConformanceServer(t)
	v1Path, v2Path := recordAgreeTraces(t)

	run := func(remoteAddr, path string) []string {
		tk := conformanceTracker(t, "trace", remoteAddr)
		defer tk.Terminate()
		tr := &transcript{}
		tr.note("load %s", errClass(tk.LoadProgram(path)))
		_, tt := easytracker.As[easytracker.TimeTraveler](tk)
		_, rw := easytracker.As[easytracker.ReverseWatcher](tk)
		tr.note("caps tt=%v rw=%v", tt, rw)
		tr.note("start %s", errClass(tk.Start()))
		tr.observePause(t, tk)
		tr.note("watch %s", errClass(tk.Watch("::total")))
		for i := 0; i < 6; i++ {
			tr.note("step %s", errClass(tk.Step()))
			tr.observePause(t, tk)
		}
		pos, length, ok := easytracker.ReplayPos(tk)
		tr.note("replay-pos %d/%d %v", pos, length, ok)
		for i := 0; i < 3; i++ {
			tr.note("step-back %s", errClass(easytracker.StepBack(tk)))
			tr.observePause(t, tk)
		}
		mid := length / 2
		tr.note("seek %d %s", mid, errClass(easytracker.SeekTo(tk, mid)))
		tr.observePause(t, tk)
		ch, err := easytracker.LastChange(tk, "::total")
		tr.noteChange("last-change", ch, err)
		tr.note("resume-back %s", errClass(easytracker.ResumeBack(tk)))
		tr.observePause(t, tk)
		tr.note("next-back %s", errClass(easytracker.NextBack(tk)))
		tr.observePause(t, tk)
		tr.note("seek-oob %s", errClass(easytracker.SeekTo(tk, length+100)))
		tr.note("seek-zero %s", errClass(easytracker.SeekTo(tk, 0)))
		tr.observePause(t, tk)
		pos, length, ok = easytracker.ReplayPos(tk)
		tr.note("replay-pos %d/%d %v", pos, length, ok)
		return tr.lines
	}

	transcripts := map[string][]string{
		"v1-local":  run("", v1Path),
		"v1-remote": run(addr, v1Path),
		"v2-local":  run("", v2Path),
		"v2-remote": run(addr, v2Path),
	}
	ref := transcripts["v1-local"]
	for name, lines := range transcripts {
		if len(lines) != len(ref) {
			t.Fatalf("%s transcript has %d lines, v1-local has %d\n%s\nvs\n%s",
				name, len(lines), len(ref), strings.Join(lines, "\n"), strings.Join(ref, "\n"))
		}
		for i := range ref {
			if lines[i] != ref[i] {
				t.Errorf("%s line %d differs:\nv1-local: %s\n%s: %s", name, i, ref[i], name, lines[i])
			}
		}
	}
}

// TestRemoteTimeTravelSeekReplayAfterDisconnect severs the wire while the
// client is inspecting a recorded step. The redial journal must rebuild the
// session *and* re-seek the replay cursor: after the recovery error, the
// position and the full State JSON are exactly what they were before the
// outage, with nothing reported lost.
func TestRemoteTimeTravelSeekReplayAfterDisconnect(t *testing.T) {
	_, v2Path := recordAgreeTraces(t)

	n := vnet.New(11)
	ln, err := n.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	srv := easytracker.NewServer()
	go srv.Serve(ln)
	defer srv.Close()

	tk, err := easytracker.Connect("srv", "trace",
		easytracker.WithDialer(n.Dialer("tt-cli")))
	if err != nil {
		t.Fatal(err)
	}
	defer tk.Close()
	pol := easytracker.RedialPolicy{
		MaxAttempts: 50, BaseDelay: 2 * time.Millisecond, MaxDelay: 25 * time.Millisecond,
		Multiplier: 2, Jitter: 0.3, Budget: 20 * time.Second, MaxRecoveries: 4,
	}
	if err := tk.LoadProgram(v2Path, easytracker.WithRedialPolicy(pol)); err != nil {
		t.Fatal(err)
	}
	if err := tk.Start(); err != nil {
		t.Fatal(err)
	}
	if err := tk.Watch("::total"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := tk.Step(); err != nil {
			t.Fatal(err)
		}
	}
	const target = 5
	if err := easytracker.SeekTo(tk, target); err != nil {
		t.Fatal(err)
	}
	pos, length, ok := easytracker.ReplayPos(tk)
	if !ok || pos != target {
		t.Fatalf("replay pos before outage = %d/%d %v, want %d", pos, length, ok, target)
	}
	sp, ok := easytracker.As[easytracker.StateProvider](tk)
	if !ok {
		t.Fatal("remote trace session denies StateProvider")
	}
	st, err := sp.State()
	if err != nil {
		t.Fatal(err)
	}
	before, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}

	n.Sever("tt-cli", "srv")

	// The op that discovers the outage fails with a recovery report; the
	// journal replay behind it must have restored the seek position.
	rerr := easytracker.StepBack(tk)
	var te *easytracker.TrackerError
	if !errors.As(rerr, &te) || te.Recovery != easytracker.RecoveryRestarted {
		t.Fatalf("StepBack across outage: err = %v, want RecoveryRestarted", rerr)
	}
	if len(te.Lost) != 0 {
		t.Fatalf("recovery lost items: %v", te.Lost)
	}
	pos, length2, ok := easytracker.ReplayPos(tk)
	if !ok || pos != target || length2 != length {
		t.Fatalf("replay pos after recovery = %d/%d %v, want %d/%d", pos, length2, ok, target, length)
	}
	st, err = sp.State()
	if err != nil {
		t.Fatal(err)
	}
	after, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatalf("state diverged across recovery:\nbefore: %s\nafter:  %s", before, after)
	}

	// The rebuilt session keeps working in both directions.
	if err := easytracker.StepBack(tk); err != nil {
		t.Fatal(err)
	}
	if p, _, _ := easytracker.ReplayPos(tk); p != target-1 {
		t.Fatalf("pos after StepBack = %d, want %d", p, target-1)
	}
	if err := tk.Step(); err != nil {
		t.Fatal(err)
	}
	if p, _, _ := easytracker.ReplayPos(tk); p != target {
		t.Fatalf("pos after forward Step = %d, want %d", p, target)
	}
}
