package main

import (
	"strings"
	"testing"
	"time"
)

// okConfig is a baseline that validates; each case perturbs one field.
func okConfig() serveConfig {
	return serveConfig{
		MaxSessions: 64,
		Idle:        10 * time.Minute,
		Drain:       30 * time.Second,
	}
}

func TestServeConfigValidate(t *testing.T) {
	if err := okConfig().validate(); err != nil {
		t.Fatalf("baseline config rejected: %v", err)
	}
	full := serveConfig{
		MaxSessions:   1,
		Idle:          time.Minute,
		ExecTimeout:   time.Second,
		MaxSteps:      1000,
		MaxDepth:      8,
		MaxHeap:       100,
		Heartbeat:     5 * time.Second,
		HBMisses:      3,
		RetryAfter:    500 * time.Millisecond,
		Drain:         time.Second,
		StatsInterval: time.Minute,
	}
	if err := full.validate(); err != nil {
		t.Fatalf("fully specified config rejected: %v", err)
	}

	cases := []struct {
		name    string
		mutate  func(*serveConfig)
		wantSub string
	}{
		{"zero max-sessions", func(c *serveConfig) { c.MaxSessions = 0 }, "-max-sessions"},
		{"negative max-sessions", func(c *serveConfig) { c.MaxSessions = -3 }, "-max-sessions"},
		{"negative idle", func(c *serveConfig) { c.Idle = -time.Second }, "-idle"},
		{"negative exec-timeout", func(c *serveConfig) { c.ExecTimeout = -time.Millisecond }, "-exec-timeout"},
		{"negative max-steps", func(c *serveConfig) { c.MaxSteps = -1 }, "-max-steps"},
		{"negative max-depth", func(c *serveConfig) { c.MaxDepth = -1 }, "-max-depth"},
		{"negative max-heap", func(c *serveConfig) { c.MaxHeap = -1 }, "-max-heap"},
		{"negative heartbeat", func(c *serveConfig) { c.Heartbeat = -time.Second }, "-heartbeat"},
		{"negative hb-misses", func(c *serveConfig) { c.HBMisses = -1 }, "-hb-misses"},
		{"negative retry-after", func(c *serveConfig) { c.RetryAfter = -time.Second }, "-retry-after"},
		{"negative drain", func(c *serveConfig) { c.Drain = -time.Second }, "-drain"},
		{"negative stats-interval", func(c *serveConfig) { c.StatsInterval = -time.Minute }, "-stats-interval"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := okConfig()
			tc.mutate(&cfg)
			err := cfg.validate()
			if err == nil {
				t.Fatalf("config %+v accepted, want an error naming %s", cfg, tc.wantSub)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not name the offending flag %s", err, tc.wantSub)
			}
			if strings.Contains(err.Error(), "\n") {
				t.Fatalf("flag error must be one line, got %q", err)
			}
		})
	}

	// Zero durations mean "disabled", not "invalid".
	cfg := okConfig()
	cfg.Idle, cfg.Heartbeat, cfg.StatsInterval = 0, 0, 0
	if err := cfg.validate(); err != nil {
		t.Fatalf("zero (disabled) durations rejected: %v", err)
	}
}
