// Command et-serve hosts tracker sessions for remote clients: any tool run
// with -remote host:port (et-trace record, et-invariant, et-stackheap) — or
// any program using easytracker.Connect — drives its inferior inside this
// process over the wire protocol, with the same pause reasons, state
// snapshots and typed errors as a local tracker.
//
// Sessions are isolated tenants: an admission limit caps how many run
// concurrently, idle sessions are evicted, and per-session resource budgets
// and execution deadlines bound what any one client can burn. SIGTERM and
// SIGINT drain gracefully — in-flight commands finish and flush their
// responses before the process exits; a second signal forces exit.
//
// Usage:
//
//	et-serve [-addr :7070] [-http addr] [-max-sessions N] [-idle DUR]
//	         [-exec-timeout DUR] [-max-steps N] [-max-depth N] [-max-heap N]
//	         [-max-instr N] [-stats] [-stats-interval DUR] [-v]
//
// With -http the server exposes its live telemetry over HTTP: /metrics
// (Prometheus text), /healthz and /readyz (readiness flips to 503 the moment
// a drain begins), /sessions (per-session JSON), /spans (span dump;
// ?chrome=1 for the Chrome trace-event format) and /debug/pprof. The
// telemetry listener stays up through the drain so operators can watch it
// finish.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"easytracker"
)

func main() {
	addr := flag.String("addr", ":7070", "listen address")
	httpAddr := flag.String("http", "", "telemetry HTTP listen address (/metrics, /healthz, /readyz, /sessions, /spans, /debug/pprof; empty disables)")
	maxSessions := flag.Int("max-sessions", 64, "concurrent session limit")
	idle := flag.Duration("idle", 10*time.Minute, "evict sessions idle this long (0 disables)")
	execTimeout := flag.Duration("exec-timeout", 0, "cap every session's execution timeout per resuming call (0: no cap)")
	maxSteps := flag.Int64("max-steps", 0, "cap every session's source-step budget (0: no cap)")
	maxDepth := flag.Int("max-depth", 0, "cap every session's call-depth budget (0: no cap)")
	maxHeap := flag.Int64("max-heap", 0, "cap every session's heap-object budget (0: no cap)")
	maxInstr := flag.Uint64("max-instr", 0, "cap every session's instruction budget (0: no cap)")
	drainWait := flag.Duration("drain", 30*time.Second, "graceful-drain deadline on SIGTERM/SIGINT")
	showStats := flag.Bool("stats", false, "print the server's metrics snapshot (JSON) to stderr on exit")
	statsInterval := flag.Duration("stats-interval", 0, "also print the metrics snapshot to stderr every DUR while serving (0 disables)")
	verbose := flag.Bool("v", false, "log admissions, evictions and teardowns")
	flag.Parse()

	opts := []easytracker.ServerOption{
		easytracker.WithMaxSessions(*maxSessions),
		easytracker.WithIdleTimeout(*idle),
		easytracker.WithSessionExecTimeout(*execTimeout),
		easytracker.WithSessionBudgets(easytracker.Budgets{
			MaxSteps:        *maxSteps,
			MaxDepth:        *maxDepth,
			MaxHeapObjects:  *maxHeap,
			MaxInstructions: *maxInstr,
		}),
	}
	if *verbose {
		opts = append(opts, easytracker.WithServerLog(log.Printf))
	}
	srv := easytracker.NewServer(opts...)

	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe(*addr) }()

	var telemetry *http.Server
	if *httpAddr != "" {
		telemetry = &http.Server{Addr: *httpAddr, Handler: srv.TelemetryHandler()}
		go func() {
			log.Printf("et-serve: telemetry on http://%s/metrics", *httpAddr)
			if err := telemetry.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("et-serve: telemetry listener: %v", err)
			}
		}()
	}

	if *statsInterval > 0 {
		go func() {
			tick := time.NewTicker(*statsInterval)
			defer tick.Stop()
			for range tick.C {
				snap := srv.Stats()
				log.Printf("et-serve: stats: sessions=%d spans=%d %s",
					srv.SessionCount(), len(srv.Spans()), compactJSON(snap))
			}
		}()
	}

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	log.Printf("et-serve: listening on %s (max %d sessions)", *addr, *maxSessions)
	select {
	case err := <-done:
		if err != nil {
			log.Fatalf("et-serve: %v", err)
		}
	case s := <-sig:
		log.Printf("et-serve: %v: draining (%d live sessions, deadline %v)",
			s, srv.SessionCount(), *drainWait)
		go func() {
			<-sig // second signal forces exit
			os.Exit(130)
		}()
		ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("et-serve: drain deadline expired, sessions torn down hard")
		}
	}
	if telemetry != nil {
		// The telemetry listener outlives the drain (so /readyz answers 503
		// and /metrics stays scrapable through it) and closes last.
		telemetry.Close()
	}
	if *showStats {
		enc := json.NewEncoder(os.Stderr)
		enc.SetIndent("", "  ")
		_ = enc.Encode(srv.Stats())
	}
	fmt.Println("et-serve: stopped")
}

// compactJSON renders v on one line for the periodic stats log.
func compactJSON(v any) string {
	data, err := json.Marshal(v)
	if err != nil {
		return "{}"
	}
	return string(data)
}
