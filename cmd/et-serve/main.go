// Command et-serve hosts tracker sessions for remote clients: any tool run
// with -remote host:port (et-trace record, et-invariant, et-stackheap) — or
// any program using easytracker.Connect — drives its inferior inside this
// process over the wire protocol, with the same pause reasons, state
// snapshots and typed errors as a local tracker.
//
// Sessions are isolated tenants: an admission limit caps how many run
// concurrently, idle sessions are evicted, and per-session resource budgets
// and execution deadlines bound what any one client can burn. SIGTERM and
// SIGINT drain gracefully — in-flight commands finish and flush their
// responses before the process exits; a second signal forces exit.
//
// Usage:
//
//	et-serve [-addr :7070] [-http addr] [-max-sessions N] [-idle DUR]
//	         [-exec-timeout DUR] [-max-steps N] [-max-depth N] [-max-heap N]
//	         [-max-instr N] [-no-recording] [-heartbeat DUR] [-hb-misses N]
//	         [-retry-after DUR] [-stats] [-stats-interval DUR] [-v]
//
// With -heartbeat the server negotiates liveness pings with every client
// that speaks the heartbeat protocol: peers silent past -hb-misses
// consecutive intervals are evicted even mid-command, and clients detect a
// dead server instead of blocking on a dropped response. -retry-after
// stamps admission refusals (session limit, draining) with a hint that
// redialing clients honor as their backoff.
//
// With -http the server exposes its live telemetry over HTTP: /metrics
// (Prometheus text), /healthz and /readyz (readiness flips to 503 the moment
// a drain begins), /sessions (per-session JSON), /spans (span dump;
// ?chrome=1 for the Chrome trace-event format) and /debug/pprof. The
// telemetry listener stays up through the drain so operators can watch it
// finish.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"easytracker"
)

func main() {
	addr := flag.String("addr", ":7070", "listen address")
	httpAddr := flag.String("http", "", "telemetry HTTP listen address (/metrics, /healthz, /readyz, /sessions, /spans, /debug/pprof; empty disables)")
	maxSessions := flag.Int("max-sessions", 64, "concurrent session limit")
	idle := flag.Duration("idle", 10*time.Minute, "evict sessions idle this long (0 disables)")
	execTimeout := flag.Duration("exec-timeout", 0, "cap every session's execution timeout per resuming call (0: no cap)")
	maxSteps := flag.Int64("max-steps", 0, "cap every session's source-step budget (0: no cap)")
	maxDepth := flag.Int("max-depth", 0, "cap every session's call-depth budget (0: no cap)")
	maxHeap := flag.Int64("max-heap", 0, "cap every session's heap-object budget (0: no cap)")
	maxInstr := flag.Uint64("max-instr", 0, "cap every session's instruction budget (0: no cap)")
	noRecording := flag.Bool("no-recording", false, "refuse clients' time-travel recording requests (recordings grow server memory per step)")
	heartbeat := flag.Duration("heartbeat", 0, "heartbeat interval negotiated with clients; silent peers are evicted (0 disables)")
	hbMisses := flag.Int("hb-misses", 0, "missed heartbeats before a silent peer is evicted (0: protocol default)")
	retryAfter := flag.Duration("retry-after", 0, "retry-after hint attached to busy/draining refusals (0: server default)")
	drainWait := flag.Duration("drain", 30*time.Second, "graceful-drain deadline on SIGTERM/SIGINT")
	showStats := flag.Bool("stats", false, "print the server's metrics snapshot (JSON) to stderr on exit")
	statsInterval := flag.Duration("stats-interval", 0, "also print the metrics snapshot to stderr every DUR while serving (0 disables)")
	verbose := flag.Bool("v", false, "log admissions, evictions and teardowns")
	flag.Parse()

	cfg := serveConfig{
		MaxSessions:   *maxSessions,
		Idle:          *idle,
		ExecTimeout:   *execTimeout,
		MaxSteps:      *maxSteps,
		MaxDepth:      *maxDepth,
		MaxHeap:       *maxHeap,
		Heartbeat:     *heartbeat,
		HBMisses:      *hbMisses,
		RetryAfter:    *retryAfter,
		Drain:         *drainWait,
		StatsInterval: *statsInterval,
	}
	if err := cfg.validate(); err != nil {
		fmt.Fprintf(os.Stderr, "et-serve: %v\n", err)
		os.Exit(2)
	}

	opts := []easytracker.ServerOption{
		easytracker.WithMaxSessions(*maxSessions),
		easytracker.WithIdleTimeout(*idle),
		easytracker.WithSessionExecTimeout(*execTimeout),
		easytracker.WithSessionBudgets(easytracker.Budgets{
			MaxSteps:        *maxSteps,
			MaxDepth:        *maxDepth,
			MaxHeapObjects:  *maxHeap,
			MaxInstructions: *maxInstr,
		}),
	}
	if *noRecording {
		opts = append(opts, easytracker.WithRecordingDisabled())
	}
	if *heartbeat > 0 {
		opts = append(opts, easytracker.WithHeartbeat(*heartbeat, *hbMisses))
	}
	if *retryAfter > 0 {
		opts = append(opts, easytracker.WithRetryAfterHint(*retryAfter))
	}
	if *verbose {
		opts = append(opts, easytracker.WithServerLog(log.Printf))
	}
	srv := easytracker.NewServer(opts...)

	done := make(chan error, 1)
	go func() { done <- srv.ListenAndServe(*addr) }()

	var telemetry *http.Server
	if *httpAddr != "" {
		telemetry = &http.Server{Addr: *httpAddr, Handler: srv.TelemetryHandler()}
		go func() {
			log.Printf("et-serve: telemetry on http://%s/metrics", *httpAddr)
			if err := telemetry.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("et-serve: telemetry listener: %v", err)
			}
		}()
	}

	if *statsInterval > 0 {
		go func() {
			tick := time.NewTicker(*statsInterval)
			defer tick.Stop()
			for range tick.C {
				snap := srv.Stats()
				log.Printf("et-serve: stats: sessions=%d spans=%d %s",
					srv.SessionCount(), len(srv.Spans()), compactJSON(snap))
			}
		}()
	}

	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	log.Printf("et-serve: listening on %s (max %d sessions)", *addr, *maxSessions)
	select {
	case err := <-done:
		if err != nil {
			log.Fatalf("et-serve: %v", err)
		}
	case s := <-sig:
		log.Printf("et-serve: %v: draining (%d live sessions, deadline %v)",
			s, srv.SessionCount(), *drainWait)
		go func() {
			<-sig // second signal forces exit
			os.Exit(130)
		}()
		ctx, cancel := context.WithTimeout(context.Background(), *drainWait)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("et-serve: drain deadline expired, sessions torn down hard")
		}
	}
	if telemetry != nil {
		// The telemetry listener outlives the drain (so /readyz answers 503
		// and /metrics stays scrapable through it) and closes last.
		telemetry.Close()
	}
	if *showStats {
		enc := json.NewEncoder(os.Stderr)
		enc.SetIndent("", "  ")
		_ = enc.Encode(srv.Stats())
	}
	fmt.Println("et-serve: stopped")
}

// serveConfig is the checkable subset of the flag values. Validation
// catches the configurations that would start and then misbehave — a
// server that admits nobody, a negative timeout the clamping layers would
// silently turn into "no limit" — before the listener binds.
type serveConfig struct {
	MaxSessions   int
	Idle          time.Duration
	ExecTimeout   time.Duration
	MaxSteps      int64
	MaxDepth      int
	MaxHeap       int64
	Heartbeat     time.Duration
	HBMisses      int
	RetryAfter    time.Duration
	Drain         time.Duration
	StatsInterval time.Duration
}

// validate reports the first nonsensical flag value.
func (c serveConfig) validate() error {
	switch {
	case c.MaxSessions <= 0:
		return fmt.Errorf("-max-sessions must be positive, got %d (a server that admits no sessions serves nobody)", c.MaxSessions)
	case c.Idle < 0:
		return fmt.Errorf("-idle must not be negative, got %v (use 0 to disable idle eviction)", c.Idle)
	case c.ExecTimeout < 0:
		return fmt.Errorf("-exec-timeout must not be negative, got %v (use 0 for no cap)", c.ExecTimeout)
	case c.MaxSteps < 0:
		return fmt.Errorf("-max-steps must not be negative, got %d (use 0 for no cap)", c.MaxSteps)
	case c.MaxDepth < 0:
		return fmt.Errorf("-max-depth must not be negative, got %d (use 0 for no cap)", c.MaxDepth)
	case c.MaxHeap < 0:
		return fmt.Errorf("-max-heap must not be negative, got %d (use 0 for no cap)", c.MaxHeap)
	case c.Heartbeat < 0:
		return fmt.Errorf("-heartbeat must not be negative, got %v (use 0 to disable heartbeats)", c.Heartbeat)
	case c.HBMisses < 0:
		return fmt.Errorf("-hb-misses must not be negative, got %d (use 0 for the protocol default)", c.HBMisses)
	case c.RetryAfter < 0:
		return fmt.Errorf("-retry-after must not be negative, got %v (use 0 for the server default)", c.RetryAfter)
	case c.Drain < 0:
		return fmt.Errorf("-drain must not be negative, got %v", c.Drain)
	case c.StatsInterval < 0:
		return fmt.Errorf("-stats-interval must not be negative, got %v (use 0 to disable periodic stats)", c.StatsInterval)
	}
	return nil
}

// compactJSON renders v on one line for the periodic stats log.
func compactJSON(v any) string {
	data, err := json.Marshal(v)
	if err != nil {
		return "{}"
	}
	return string(data)
}
