// Command et-tables regenerates the paper's comparison tables (Tables I,
// II, III) and, with -verify, substantiates every "yes" in the EasyTracker
// rows by probing the live implementation.
//
// Usage: et-tables [-verify]
package main

import (
	"flag"
	"fmt"
	"os"

	"easytracker/internal/tables"

	_ "easytracker/internal/gdbtracker"
	_ "easytracker/internal/pytracker"
)

func main() {
	verify := flag.Bool("verify", false, "probe the EasyTracker capabilities")
	flag.Parse()

	for _, tab := range []*tables.Table{tables.TableI(), tables.TableII(), tables.TableIII()} {
		fmt.Println(tab.Render())
	}
	if !*verify {
		return
	}
	fmt.Println("verifying EasyTracker capabilities against the live implementation:")
	failed := 0
	for _, p := range tables.VerifyEasyTracker() {
		if err := p.Check(); err != nil {
			fmt.Printf("  FAIL %s: %v\n", p.Name, err)
			failed++
		} else {
			fmt.Printf("  ok   %s\n", p.Name)
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
