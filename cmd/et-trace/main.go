// Command et-trace records and replays Python-Tutor-style execution traces
// (paper Section III-E, Fig. 10): record a full trace, or a partial trace
// focused on a tracked function (roughly 10x smaller on recursion
// examples), then navigate the trace through the same Tracker API.
//
// Usage:
//
//	et-trace record [-track FUNC] [-watch VAR] [-format v1|v2] [-interval N] [-o OUT.trace] PROGRAM.{py,c}
//	et-trace replay TRACE [-at N]
//	et-trace seek -at N TRACE
//	et-trace last-change [-at N] VAR TRACE
//	et-trace query 'EXPR [| count [by FIELD]]' TRACE
//	et-trace stats TRACE
//
// Traces come in two formats: v1 stores a full state per step; v2 stores
// per-step deltas anchored by periodic checkpoints, so seeking to any step
// is O(interval) instead of O(n). Every verb accepts either format.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"time"

	"easytracker"
	"easytracker/internal/pt"
	"easytracker/internal/query"
	"easytracker/internal/tracetracker"
	"easytracker/internal/ttd"
)

// onSigint runs f on the first SIGINT — interrupting the active tracker so
// a runaway inferior ends in a clean, inspectable pause — and force-exits
// with the conventional 130 status on the second. The returned func
// detaches the handler.
func onSigint(f func()) func() {
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt)
	go func() {
		if _, ok := <-ch; !ok {
			return
		}
		f()
		if _, ok := <-ch; ok {
			os.Exit(130)
		}
	}()
	return func() { signal.Stop(ch); close(ch) }
}

func main() {
	if len(os.Args) < 3 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	case "seek":
		seek(os.Args[2:])
	case "last-change":
		lastChange(os.Args[2:])
	case "query":
		runQuery(os.Args[2:])
	case "stats":
		stats(os.Args[2:])
	case "html":
		toHTML(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: et-trace record|replay|seek|last-change|query|stats ...")
	os.Exit(2)
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	track := fs.String("track", "", "track only this function (partial trace)")
	watch := fs.String("watch", "", "also watch this variable")
	out := fs.String("o", "out.trace", "output path")
	format := fs.String("format", "v1", "trace format: v1 (full states) or v2 (deltas + checkpoints)")
	interval := fs.Int("interval", 0, "v2 checkpoint interval in steps (0 = adaptive sqrt policy)")
	remoteAddr := fs.String("remote", "", "record on a tracker server (et-serve) at host:port")
	showStats := fs.Bool("stats", false, "print the tracker's metrics snapshot (JSON) to stderr on exit")
	statsInterval := fs.Duration("stats-interval", 0, "also print the metrics snapshot to stderr every DUR while recording (0 disables)")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	prog := fs.Arg(0)

	kind := easytracker.KindFor(prog)
	tracker, err := newTracker(kind, *remoteAddr)
	check(err)
	var progOut strings.Builder
	loadOpts := []easytracker.LoadOption{easytracker.WithStdout(&progOut)}
	if *showStats || *statsInterval > 0 {
		loadOpts = append(loadOpts, easytracker.WithObservability())
	}
	check(tracker.LoadProgram(prog, loadOpts...))
	if *statsInterval > 0 {
		defer statsTicker(tracker, *statsInterval)()
	}
	// Ctrl-C interrupts the inferior; Record then returns the partial
	// trace up to the INTERRUPTED pause instead of dying mid-run.
	defer onSigint(func() { easytracker.Interrupt(tracker) })()
	opts := pt.Options{Mode: pt.ModeFullStep, Lang: kind}
	if *track != "" {
		opts.Mode = pt.ModeTracked
		opts.TrackFunctions = []string{*track}
	}
	if *watch != "" {
		opts.Watches = []string{*watch}
	}
	trace, err := pt.Record(tracker, &progOut, opts)
	check(err)
	var data []byte
	switch *format {
	case "v1":
		data, err = trace.Encode()
		check(err)
		check(os.WriteFile(*out, data, 0o644))
		fmt.Printf("recorded %d steps (%d bytes) to %s\n", len(trace.Steps), len(data), *out)
	case "v2":
		store, err := ttd.FromTrace(trace, *interval)
		check(err)
		v2 := store.Trace()
		data, err = v2.Encode()
		check(err)
		check(os.WriteFile(*out, data, 0o644))
		fmt.Printf("recorded %d steps, %d checkpoints (%d bytes) to %s\n",
			len(v2.Steps), len(v2.Checkpoints), len(data), *out)
	default:
		check(fmt.Errorf("unknown trace format %q (want v1 or v2)", *format))
	}
	if n := len(trace.Steps); n > 0 {
		if st := trace.Steps[n-1].State; st != nil && st.Reason.Type == easytracker.PauseInterrupted {
			fmt.Fprintf(os.Stderr, "recording stopped early: %s\n", st.Reason)
		}
	}
	if *showStats {
		printStats(tracker)
	}
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	at := fs.Int("at", -1, "jump to step N and print its state")
	showStats := fs.Bool("stats", false, "print the tracker's metrics snapshot (JSON) to stderr on exit")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	tracker := tracetracker.New()
	var loadOpts []easytracker.LoadOption
	if *showStats {
		loadOpts = append(loadOpts, easytracker.WithObservability())
		defer printStats(tracker)
	}
	check(tracker.LoadProgram(fs.Arg(0), loadOpts...))
	check(tracker.Start())
	// The trace tracker has no inferior to interrupt, so Ctrl-C sets a
	// flag the replay loop polls; a capable tracker would be interrupted
	// directly.
	var stop atomic.Bool
	defer onSigint(func() {
		if !easytracker.Interrupt(tracker) {
			stop.Store(true)
		}
	})()
	step := 0
	for {
		if _, done := tracker.ExitCode(); done {
			break
		}
		if stop.Load() {
			fmt.Printf("replay interrupted at step %d\n", step)
			return
		}
		if *at < 0 || step == *at {
			fr, err := tracker.CurrentFrame()
			if err == nil {
				_, line := tracker.Position()
				fmt.Printf("step %d (line %d):\n%s", step, line, fr.Backtrace())
			}
			if step == *at {
				return
			}
		}
		check(tracker.Step())
		step++
	}
	code, _ := tracker.ExitCode()
	fmt.Printf("replay finished after %d steps, exit %d\nprogram output:\n%s",
		step, code, tracker.Stdout())
}

// seek jumps straight to one step of a recorded trace and prints its state
// — no forward replay. On a v2 trace the jump applies at most one
// checkpoint interval of deltas; on v1 it is a direct index.
func seek(args []string) {
	fs := flag.NewFlagSet("seek", flag.ExitOnError)
	at := fs.Int("at", -1, "step to seek to (required)")
	_ = fs.Parse(args)
	if fs.NArg() != 1 || *at < 0 {
		fmt.Fprintln(os.Stderr, "usage: et-trace seek -at N TRACE")
		os.Exit(2)
	}
	tracker := tracetracker.New()
	check(tracker.LoadProgram(fs.Arg(0)))
	check(tracker.Start())
	check(tracker.SeekTo(*at))
	_, line := tracker.Position()
	fmt.Printf("step %d/%d (line %d):\n", tracker.Pos(), tracker.Len(), line)
	if fr, err := tracker.CurrentFrame(); err == nil {
		fmt.Print(fr.Backtrace())
	}
	if out := tracker.Stdout(); out != "" {
		fmt.Printf("output so far:\n%s", out)
	}
}

// lastChange answers a reverse watchpoint from the recording: the most
// recent write (or deletion) of a variable at or before a step, found in
// the delta index without replaying any states.
func lastChange(args []string) {
	fs := flag.NewFlagSet("last-change", flag.ExitOnError)
	at := fs.Int("at", -1, "answer relative to step N (default: the last step)")
	_ = fs.Parse(args)
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: et-trace last-change [-at N] VAR TRACE")
		os.Exit(2)
	}
	tracker := tracetracker.New()
	check(tracker.LoadProgram(fs.Arg(1)))
	check(tracker.Start())
	pos := *at
	if pos < 0 {
		pos = tracker.Len() - 1
	}
	check(tracker.SeekTo(pos))
	ch, err := tracker.LastChange(fs.Arg(0))
	check(err)
	where := ch.Var
	if ch.Func != "" && !strings.Contains(where, ":") {
		where = ch.Func + ":" + where
	}
	if ch.Deleted {
		fmt.Printf("%s went out of scope at step %d\n", where, ch.Step)
		return
	}
	fmt.Printf("%s last changed at step %d: %s\n", where, ch.Step, ch.Val)
}

// runQuery streams a recorded trace through the query engine: every step
// becomes an event view, the expression compiles once, and matching steps
// print (or aggregate, with `| count [by FIELD]`) without ever loading the
// trace into a tracker.
func runQuery(args []string) {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: et-trace query 'EXPR [| count [by FIELD]]' TRACE")
		os.Exit(2)
	}
	q, err := query.ParseQuery(args[0])
	check(err)
	data, err := os.ReadFile(args[1])
	check(err)
	trace, err := decodeAny(data)
	check(err)

	matched := 0
	counts := map[string]int{}
	var order []string
	for i, s := range trace.Steps {
		view := query.StateView{
			EventName: queryEvent(s.Event),
			LineNo:    s.Line,
			FileName:  trace.File,
			FuncName:  s.Func,
			State:     s.State,
		}
		if q.Filter != nil && !q.Filter.Match(&view) {
			continue
		}
		matched++
		if q.Count {
			if q.By != "" {
				k := fieldValue(&view, q.By)
				if _, seen := counts[k]; !seen {
					order = append(order, k)
				}
				counts[k]++
			}
			continue
		}
		fmt.Printf("step %-5d line %-4d %-8s %s\n", i, s.Line, s.Event, s.Func)
	}
	switch {
	case q.Count && q.By != "":
		for _, k := range order {
			fmt.Printf("%-20s %d\n", k, counts[k])
		}
	case q.Count:
		fmt.Println(matched)
	default:
		fmt.Printf("%d of %d steps matched\n", matched, len(trace.Steps))
	}
}

// decodeAny parses a trace file in either format. A v2 trace is
// materialized back into the full-state form: the streaming verbs walk
// every step anyway, so each StateAt hits the one-delta forward memo.
func decodeAny(data []byte) (*pt.Trace, error) {
	if pt.SniffVersion(data) == 0 {
		return pt.Decode(data)
	}
	v2, err := pt.DecodeV2(data)
	if err != nil {
		return nil, err
	}
	store, err := ttd.FromV2(v2)
	if err != nil {
		return nil, err
	}
	tr := &pt.Trace{Code: v2.Code, File: v2.File, Lang: v2.Lang, ExitCode: v2.ExitCode}
	for i := 0; i < store.Len(); i++ {
		st, err := store.StateAt(i)
		if err != nil {
			return nil, err
		}
		tr.Steps = append(tr.Steps, pt.Step{
			Event:  store.EventAt(i),
			Line:   store.LineAt(i),
			Func:   store.FuncAt(i),
			Stdout: store.StdoutAt(i),
			State:  st,
		})
	}
	return tr, nil
}

// queryEvent maps a trace event name onto the query event vocabulary
// (step_line and the bookkeeping events evaluate as "line").
func queryEvent(ev string) string {
	switch ev {
	case "call":
		return query.EventCall
	case "return":
		return query.EventReturn
	default:
		return query.EventLine
	}
}

// fieldValue renders one typed field for `count by FIELD` bucketing.
func fieldValue(v *query.StateView, field string) string {
	switch field {
	case "line":
		return fmt.Sprintf("%d", v.Line())
	case "depth":
		return fmt.Sprintf("%d", v.Depth())
	case "event":
		return v.Event()
	case "function":
		return v.Function()
	case "file":
		return v.File()
	}
	return ""
}

func stats(args []string) {
	if len(args) != 1 {
		usage()
	}
	data, err := os.ReadFile(args[0])
	check(err)
	trace, err := decodeAny(data)
	check(err)
	events := map[string]int{}
	for _, s := range trace.Steps {
		events[s.Event]++
	}
	fmt.Printf("file: %s\nlang: %s\nsteps: %d\nbytes: %d\nexit: %d\n",
		trace.File, trace.Lang, len(trace.Steps), len(data), trace.ExitCode)
	for ev, n := range events {
		fmt.Printf("  %-12s %d\n", ev, n)
	}
}

// toHTML renders a trace as the Fig. 10 self-contained navigator page.
func toHTML(args []string) {
	fs := flag.NewFlagSet("html", flag.ExitOnError)
	out := fs.String("o", "trace.html", "output path")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	data, err := os.ReadFile(fs.Arg(0))
	check(err)
	trace, err := decodeAny(data)
	check(err)
	page, err := pt.HTML(trace)
	check(err)
	check(os.WriteFile(*out, []byte(page), 0o644))
	fmt.Printf("wrote %s (%d steps); open it in a browser and use Forward\n",
		*out, len(trace.Steps))
}

// newTracker builds a local tracker, or — with -remote — connects a session
// on a tracker server. The remote tracker satisfies the same contract, so
// the rest of the command is oblivious; Ctrl-C interrupts travel over the
// wire through the same easytracker.Interrupt call.
func newTracker(kind, remoteAddr string) (easytracker.Tracker, error) {
	if remoteAddr == "" {
		return easytracker.New(kind)
	}
	return easytracker.Connect(remoteAddr, kind)
}

// printStats dumps the tracker's instrument snapshot to stderr, keeping
// stdout clean for the subcommand's own output.
func printStats(tr easytracker.Tracker) {
	snap, _ := easytracker.Stats(tr)
	enc := json.NewEncoder(os.Stderr)
	enc.SetIndent("", "  ")
	_ = enc.Encode(snap)
}

// statsTicker prints a one-line metrics snapshot to stderr every interval
// until the returned stop function runs. Stats is safe to call from a second
// goroutine: it reads atomic instruments only.
func statsTicker(tr easytracker.Tracker, interval time.Duration) (stop func()) {
	done := make(chan struct{})
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				snap, _ := easytracker.Stats(tr)
				if data, err := json.Marshal(snap); err == nil {
					fmt.Fprintf(os.Stderr, "stats: %s\n", data)
				}
			}
		}
	}()
	return func() { close(done) }
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
