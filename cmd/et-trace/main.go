// Command et-trace records and replays Python-Tutor-style execution traces
// (paper Section III-E, Fig. 10): record a full trace, or a partial trace
// focused on a tracked function (roughly 10x smaller on recursion
// examples), then navigate the trace through the same Tracker API.
//
// Usage:
//
//	et-trace record [-track FUNC] [-watch VAR] [-o OUT.trace] PROGRAM.{py,c}
//	et-trace replay TRACE [-at N]
//	et-trace query 'EXPR [| count [by FIELD]]' TRACE
//	et-trace stats TRACE
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"time"

	"easytracker"
	"easytracker/internal/pt"
	"easytracker/internal/query"
	"easytracker/internal/tracetracker"
)

// onSigint runs f on the first SIGINT — interrupting the active tracker so
// a runaway inferior ends in a clean, inspectable pause — and force-exits
// with the conventional 130 status on the second. The returned func
// detaches the handler.
func onSigint(f func()) func() {
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt)
	go func() {
		if _, ok := <-ch; !ok {
			return
		}
		f()
		if _, ok := <-ch; ok {
			os.Exit(130)
		}
	}()
	return func() { signal.Stop(ch); close(ch) }
}

func main() {
	if len(os.Args) < 3 {
		usage()
	}
	switch os.Args[1] {
	case "record":
		record(os.Args[2:])
	case "replay":
		replay(os.Args[2:])
	case "query":
		runQuery(os.Args[2:])
	case "stats":
		stats(os.Args[2:])
	case "html":
		toHTML(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: et-trace record|replay|query|stats ...")
	os.Exit(2)
}

func record(args []string) {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	track := fs.String("track", "", "track only this function (partial trace)")
	watch := fs.String("watch", "", "also watch this variable")
	out := fs.String("o", "out.trace", "output path")
	remoteAddr := fs.String("remote", "", "record on a tracker server (et-serve) at host:port")
	showStats := fs.Bool("stats", false, "print the tracker's metrics snapshot (JSON) to stderr on exit")
	statsInterval := fs.Duration("stats-interval", 0, "also print the metrics snapshot to stderr every DUR while recording (0 disables)")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	prog := fs.Arg(0)

	kind := easytracker.KindFor(prog)
	tracker, err := newTracker(kind, *remoteAddr)
	check(err)
	var progOut strings.Builder
	loadOpts := []easytracker.LoadOption{easytracker.WithStdout(&progOut)}
	if *showStats || *statsInterval > 0 {
		loadOpts = append(loadOpts, easytracker.WithObservability())
	}
	check(tracker.LoadProgram(prog, loadOpts...))
	if *statsInterval > 0 {
		defer statsTicker(tracker, *statsInterval)()
	}
	// Ctrl-C interrupts the inferior; Record then returns the partial
	// trace up to the INTERRUPTED pause instead of dying mid-run.
	defer onSigint(func() { easytracker.Interrupt(tracker) })()
	opts := pt.Options{Mode: pt.ModeFullStep, Lang: kind}
	if *track != "" {
		opts.Mode = pt.ModeTracked
		opts.TrackFunctions = []string{*track}
	}
	if *watch != "" {
		opts.Watches = []string{*watch}
	}
	trace, err := pt.Record(tracker, &progOut, opts)
	check(err)
	data, err := trace.Encode()
	check(err)
	check(os.WriteFile(*out, data, 0o644))
	fmt.Printf("recorded %d steps (%d bytes) to %s\n", len(trace.Steps), len(data), *out)
	if n := len(trace.Steps); n > 0 {
		if st := trace.Steps[n-1].State; st != nil && st.Reason.Type == easytracker.PauseInterrupted {
			fmt.Fprintf(os.Stderr, "recording stopped early: %s\n", st.Reason)
		}
	}
	if *showStats {
		printStats(tracker)
	}
}

func replay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	at := fs.Int("at", -1, "jump to step N and print its state")
	showStats := fs.Bool("stats", false, "print the tracker's metrics snapshot (JSON) to stderr on exit")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	tracker := tracetracker.New()
	var loadOpts []easytracker.LoadOption
	if *showStats {
		loadOpts = append(loadOpts, easytracker.WithObservability())
		defer printStats(tracker)
	}
	check(tracker.LoadProgram(fs.Arg(0), loadOpts...))
	check(tracker.Start())
	// The trace tracker has no inferior to interrupt, so Ctrl-C sets a
	// flag the replay loop polls; a capable tracker would be interrupted
	// directly.
	var stop atomic.Bool
	defer onSigint(func() {
		if !easytracker.Interrupt(tracker) {
			stop.Store(true)
		}
	})()
	step := 0
	for {
		if _, done := tracker.ExitCode(); done {
			break
		}
		if stop.Load() {
			fmt.Printf("replay interrupted at step %d\n", step)
			return
		}
		if *at < 0 || step == *at {
			fr, err := tracker.CurrentFrame()
			if err == nil {
				_, line := tracker.Position()
				fmt.Printf("step %d (line %d):\n%s", step, line, fr.Backtrace())
			}
			if step == *at {
				return
			}
		}
		check(tracker.Step())
		step++
	}
	code, _ := tracker.ExitCode()
	fmt.Printf("replay finished after %d steps, exit %d\nprogram output:\n%s",
		step, code, tracker.Stdout())
}

// runQuery streams a recorded trace through the query engine: every step
// becomes an event view, the expression compiles once, and matching steps
// print (or aggregate, with `| count [by FIELD]`) without ever loading the
// trace into a tracker.
func runQuery(args []string) {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: et-trace query 'EXPR [| count [by FIELD]]' TRACE")
		os.Exit(2)
	}
	q, err := query.ParseQuery(args[0])
	check(err)
	data, err := os.ReadFile(args[1])
	check(err)
	trace, err := pt.Decode(data)
	check(err)

	matched := 0
	counts := map[string]int{}
	var order []string
	for i, s := range trace.Steps {
		view := query.StateView{
			EventName: queryEvent(s.Event),
			LineNo:    s.Line,
			FileName:  trace.File,
			FuncName:  s.Func,
			State:     s.State,
		}
		if q.Filter != nil && !q.Filter.Match(&view) {
			continue
		}
		matched++
		if q.Count {
			if q.By != "" {
				k := fieldValue(&view, q.By)
				if _, seen := counts[k]; !seen {
					order = append(order, k)
				}
				counts[k]++
			}
			continue
		}
		fmt.Printf("step %-5d line %-4d %-8s %s\n", i, s.Line, s.Event, s.Func)
	}
	switch {
	case q.Count && q.By != "":
		for _, k := range order {
			fmt.Printf("%-20s %d\n", k, counts[k])
		}
	case q.Count:
		fmt.Println(matched)
	default:
		fmt.Printf("%d of %d steps matched\n", matched, len(trace.Steps))
	}
}

// queryEvent maps a trace event name onto the query event vocabulary
// (step_line and the bookkeeping events evaluate as "line").
func queryEvent(ev string) string {
	switch ev {
	case "call":
		return query.EventCall
	case "return":
		return query.EventReturn
	default:
		return query.EventLine
	}
}

// fieldValue renders one typed field for `count by FIELD` bucketing.
func fieldValue(v *query.StateView, field string) string {
	switch field {
	case "line":
		return fmt.Sprintf("%d", v.Line())
	case "depth":
		return fmt.Sprintf("%d", v.Depth())
	case "event":
		return v.Event()
	case "function":
		return v.Function()
	case "file":
		return v.File()
	}
	return ""
}

func stats(args []string) {
	if len(args) != 1 {
		usage()
	}
	data, err := os.ReadFile(args[0])
	check(err)
	trace, err := pt.Decode(data)
	check(err)
	events := map[string]int{}
	for _, s := range trace.Steps {
		events[s.Event]++
	}
	fmt.Printf("file: %s\nlang: %s\nsteps: %d\nbytes: %d\nexit: %d\n",
		trace.File, trace.Lang, len(trace.Steps), len(data), trace.ExitCode)
	for ev, n := range events {
		fmt.Printf("  %-12s %d\n", ev, n)
	}
}

// toHTML renders a trace as the Fig. 10 self-contained navigator page.
func toHTML(args []string) {
	fs := flag.NewFlagSet("html", flag.ExitOnError)
	out := fs.String("o", "trace.html", "output path")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		usage()
	}
	data, err := os.ReadFile(fs.Arg(0))
	check(err)
	trace, err := pt.Decode(data)
	check(err)
	page, err := pt.HTML(trace)
	check(err)
	check(os.WriteFile(*out, []byte(page), 0o644))
	fmt.Printf("wrote %s (%d steps); open it in a browser and use Forward\n",
		*out, len(trace.Steps))
}

// newTracker builds a local tracker, or — with -remote — connects a session
// on a tracker server. The remote tracker satisfies the same contract, so
// the rest of the command is oblivious; Ctrl-C interrupts travel over the
// wire through the same easytracker.Interrupt call.
func newTracker(kind, remoteAddr string) (easytracker.Tracker, error) {
	if remoteAddr == "" {
		return easytracker.New(kind)
	}
	return easytracker.Connect(remoteAddr, kind)
}

// printStats dumps the tracker's instrument snapshot to stderr, keeping
// stdout clean for the subcommand's own output.
func printStats(tr easytracker.Tracker) {
	snap, _ := easytracker.Stats(tr)
	enc := json.NewEncoder(os.Stderr)
	enc.SetIndent("", "  ")
	_ = enc.Encode(snap)
}

// statsTicker prints a one-line metrics snapshot to stderr every interval
// until the returned stop function runs. Stats is safe to call from a second
// goroutine: it reads atomic instruments only.
func statsTicker(tr easytracker.Tracker, interval time.Duration) (stop func()) {
	done := make(chan struct{})
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				snap, _ := easytracker.Stats(tr)
				if data, err := json.Marshal(snap); err == nil {
					fmt.Fprintf(os.Stderr, "stats: %s\n", data)
				}
			}
		}
	}()
	return func() { close(done) }
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
