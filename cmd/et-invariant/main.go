// Command et-invariant is the paper's Fig. 1 tool: it visualizes loop
// invariants of an in-place sort. The program is executed line by line; at
// each pause the tool reads the array and the loop indices and renders the
// array with index markers and the already-sorted region shaded.
//
// Pause filtering goes through the query engine: the implicit predicate
// `exists(ARRAY)` selects pauses worth rendering, and -when ANDs a user
// expression onto it (`-when 'i > 2 && function == "sort"'`), so the tool
// has no bespoke predicate code of its own.
//
// Usage:
//
//	et-invariant [-out DIR] [-array a] [-i i] [-j j] [-when EXPR] [-sorted-from|-sorted-to] PROGRAM.{py,c}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"

	"easytracker"
	"easytracker/internal/query"
	"easytracker/internal/viz"
)

// onSigint runs f on the first SIGINT — interrupting the tracker so the
// stepping loop ends in a clean pause — and force-exits (status 130) on
// the second. The returned func detaches the handler.
func onSigint(f func()) func() {
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt)
	go func() {
		if _, ok := <-ch; !ok {
			return
		}
		f()
		if _, ok := <-ch; ok {
			os.Exit(130)
		}
	}()
	return func() { signal.Stop(ch); close(ch) }
}

func main() {
	outDir := flag.String("out", ".", "output directory")
	arrName := flag.String("array", "a", "array variable name")
	iName := flag.String("i", "i", "first index variable")
	jName := flag.String("j", "j", "second index variable")
	when := flag.String("when", "", "render only pauses matching this query expression")
	sortedFrom := flag.Bool("sorted-from-i", false, "shade cells at >= i (selection-sort style)")
	sortedTo := flag.Bool("sorted-to-i", true, "shade cells at < i (insertion-style prefix)")
	maxImgs := flag.Int("max", 200, "maximum images")
	remoteAddr := flag.String("remote", "", "drive the program on a tracker server (et-serve) at host:port")
	showStats := flag.Bool("stats", false, "print the tracker's metrics snapshot (JSON) to stderr on exit")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: et-invariant [-out DIR] PROGRAM")
		os.Exit(2)
	}
	prog := flag.Arg(0)

	// The render predicate compiles once: a pause is rendered when the
	// array exists there and the user's -when expression (if any) holds.
	expr := "exists(" + *arrName + ")"
	if *when != "" {
		expr += " && (" + *when + ")"
	}
	filter, err := query.Compile(expr)
	check(err)

	// A remote tracker satisfies the same contract, so the stepping loop —
	// and the Ctrl-C interrupt below — work unchanged over the wire.
	var tracker easytracker.Tracker
	if *remoteAddr != "" {
		tracker, err = easytracker.Connect(*remoteAddr, easytracker.KindFor(prog))
	} else {
		tracker, err = easytracker.New(easytracker.KindFor(prog))
	}
	check(err)
	loadOpts := []easytracker.LoadOption{easytracker.WithStdout(os.Stdout)}
	if *showStats {
		loadOpts = append(loadOpts, easytracker.WithObservability())
		defer printStats(tracker)
	}
	check(tracker.LoadProgram(prog, loadOpts...))
	sp, ok := easytracker.As[easytracker.StateProvider](tracker)
	if !ok {
		fmt.Fprintln(os.Stderr, "et-invariant: tracker provides no state snapshots")
		os.Exit(1)
	}
	check(tracker.Start())
	defer tracker.Terminate()
	// Ctrl-C interrupts the inferior: the next Step returns an INTERRUPTED
	// pause and the loop below exits cleanly with the views written so far.
	defer onSigint(func() { easytracker.Interrupt(tracker) })()

	img := 0
	for {
		if _, done := tracker.ExitCode(); done {
			break
		}
		if r := tracker.PauseReason(); r.Type == easytracker.PauseInterrupted {
			fmt.Fprintf(os.Stderr, "stopped early: %s\n", r)
			break
		}
		st, err := sp.State()
		check(err)
		file, line := tracker.Position()
		view := query.StateView{
			EventName: query.EventLine,
			LineNo:    line,
			FileName:  file,
			FuncName:  funcName(st),
			State:     st,
		}
		if filter.Match(&view) {
			idx := map[string]int{}
			if v := view.Var("", *iName); v.Kind == query.KInt {
				idx[*iName] = int(v.I)
			}
			if v := view.Var("", *jName); v.Kind == query.KInt {
				idx[*jName] = int(v.I)
			}
			sf, st2 := -1, -1
			if i, ok := idx[*iName]; ok {
				if *sortedFrom {
					sf = i
				}
				if *sortedTo {
					st2 = i
				}
			}
			if arr := findArray(st, *arrName); arr != nil {
				doc := viz.ArraySVG(arr, viz.ArrayViewOptions{
					Title:      fmt.Sprintf("%s — line %d", prog, line),
					Indices:    idx,
					SortedFrom: sf,
					SortedTo:   st2,
				})
				img++
				check(os.WriteFile(filepath.Join(*outDir,
					fmt.Sprintf("array-%03d.svg", img)), []byte(doc), 0o644))
			}
		}
		check(tracker.Step())
		if img >= *maxImgs {
			break
		}
	}
	fmt.Printf("wrote %d array views to %s\n", img, *outDir)
}

// funcName reads the innermost frame's function for the query view.
func funcName(st *easytracker.State) string {
	if st != nil && st.Frame != nil {
		return st.Frame.Name
	}
	return ""
}

// findArray extracts the list value to render. The query engine decides
// *whether* to render (Scalars carry only a list's length); this walks the
// same scopes — frame chain, then globals — for the full value.
func findArray(st *easytracker.State, name string) *easytracker.Value {
	deref := func(v *easytracker.Value) *easytracker.Value {
		if v != nil && v.Kind == easytracker.Ref {
			v = v.Deref()
		}
		if v != nil && v.Kind == easytracker.List {
			return v
		}
		return nil
	}
	if st == nil {
		return nil
	}
	for f := st.Frame; f != nil; f = f.Parent {
		if v := f.Lookup(name); v != nil {
			if val := deref(v.Value); val != nil {
				return val
			}
		}
	}
	for _, g := range st.Globals {
		if g.Name == name {
			return deref(g.Value)
		}
	}
	return nil
}

// printStats dumps the tracker's instrument snapshot to stderr, keeping
// stdout clean for the tool's own output.
func printStats(tr easytracker.Tracker) {
	snap, _ := easytracker.Stats(tr)
	enc := json.NewEncoder(os.Stderr)
	enc.SetIndent("", "  ")
	_ = enc.Encode(snap)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
