// Command et-invariant is the paper's Fig. 1 tool: it visualizes loop
// invariants of an in-place sort. The program is executed line by line; at
// each pause the tool reads the array and the loop indices and renders the
// array with index markers and the already-sorted region shaded.
//
// Usage:
//
//	et-invariant [-out DIR] [-array a] [-i i] [-j j] [-sorted-from|-sorted-to] PROGRAM.{py,c}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"

	"easytracker"
	"easytracker/internal/viz"
)

// onSigint runs f on the first SIGINT — interrupting the tracker so the
// stepping loop ends in a clean pause — and force-exits (status 130) on
// the second. The returned func detaches the handler.
func onSigint(f func()) func() {
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt)
	go func() {
		if _, ok := <-ch; !ok {
			return
		}
		f()
		if _, ok := <-ch; ok {
			os.Exit(130)
		}
	}()
	return func() { signal.Stop(ch); close(ch) }
}

func main() {
	outDir := flag.String("out", ".", "output directory")
	arrName := flag.String("array", "a", "array variable name")
	iName := flag.String("i", "i", "first index variable")
	jName := flag.String("j", "j", "second index variable")
	sortedFrom := flag.Bool("sorted-from-i", false, "shade cells at >= i (selection-sort style)")
	sortedTo := flag.Bool("sorted-to-i", true, "shade cells at < i (insertion-style prefix)")
	maxImgs := flag.Int("max", 200, "maximum images")
	remoteAddr := flag.String("remote", "", "drive the program on a tracker server (et-serve) at host:port")
	showStats := flag.Bool("stats", false, "print the tracker's metrics snapshot (JSON) to stderr on exit")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: et-invariant [-out DIR] PROGRAM")
		os.Exit(2)
	}
	prog := flag.Arg(0)

	// A remote tracker satisfies the same contract, so the stepping loop —
	// and the Ctrl-C interrupt below — work unchanged over the wire.
	var tracker easytracker.Tracker
	var err error
	if *remoteAddr != "" {
		tracker, err = easytracker.Connect(*remoteAddr, easytracker.KindFor(prog))
	} else {
		tracker, err = easytracker.New(easytracker.KindFor(prog))
	}
	check(err)
	loadOpts := []easytracker.LoadOption{easytracker.WithStdout(os.Stdout)}
	if *showStats {
		loadOpts = append(loadOpts, easytracker.WithObservability())
		defer printStats(tracker)
	}
	check(tracker.LoadProgram(prog, loadOpts...))
	check(tracker.Start())
	defer tracker.Terminate()
	// Ctrl-C interrupts the inferior: the next Step returns an INTERRUPTED
	// pause and the loop below exits cleanly with the views written so far.
	defer onSigint(func() { easytracker.Interrupt(tracker) })()

	img := 0
	for {
		if _, done := tracker.ExitCode(); done {
			break
		}
		if r := tracker.PauseReason(); r.Type == easytracker.PauseInterrupted {
			fmt.Fprintf(os.Stderr, "stopped early: %s\n", r)
			break
		}
		fr, err := tracker.CurrentFrame()
		check(err)
		if arr := lookupList(fr, *arrName); arr != nil {
			idx := map[string]int{}
			if v, ok := lookupInt(fr, *iName); ok {
				idx[*iName] = int(v)
			}
			if v, ok := lookupInt(fr, *jName); ok {
				idx[*jName] = int(v)
			}
			sf, st := -1, -1
			if i, ok := idx[*iName]; ok {
				if *sortedFrom {
					sf = i
				}
				if *sortedTo {
					st = i
				}
			}
			_, line := tracker.Position()
			doc := viz.ArraySVG(arr, viz.ArrayViewOptions{
				Title:      fmt.Sprintf("%s — line %d", prog, line),
				Indices:    idx,
				SortedFrom: sf,
				SortedTo:   st,
			})
			img++
			check(os.WriteFile(filepath.Join(*outDir,
				fmt.Sprintf("array-%03d.svg", img)), []byte(doc), 0o644))
		}
		check(tracker.Step())
		if img >= *maxImgs {
			break
		}
	}
	fmt.Printf("wrote %d array views to %s\n", img, *outDir)
}

// lookupList finds a list-valued variable in the frame chain.
func lookupList(fr *easytracker.Frame, name string) *easytracker.Value {
	for f := fr; f != nil; f = f.Parent {
		if v := f.Lookup(name); v != nil {
			val := v.Value
			if val.Kind == easytracker.Ref {
				val = val.Deref()
			}
			if val != nil && val.Kind == easytracker.List {
				return val
			}
		}
	}
	return nil
}

func lookupInt(fr *easytracker.Frame, name string) (int64, bool) {
	for f := fr; f != nil; f = f.Parent {
		if v := f.Lookup(name); v != nil {
			val := v.Value
			if val.Kind == easytracker.Ref {
				val = val.Deref()
			}
			if val == nil {
				return 0, false
			}
			return val.Int()
		}
	}
	return 0, false
}

// printStats dumps the tracker's instrument snapshot to stderr, keeping
// stdout clean for the tool's own output.
func printStats(tr easytracker.Tracker) {
	snap, _ := easytracker.Stats(tr)
	enc := json.NewEncoder(os.Stderr)
	enc.SetIndent("", "  ")
	_ = enc.Encode(snap)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
