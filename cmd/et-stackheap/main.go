// Command et-stackheap is the paper's Listing 1 tool: it steps through a
// MiniPy or MiniC program and writes one stack(-and-heap) diagram per
// executed line (Figs. 6a/6b/6c). Only the tracker-selection line is
// language-specific; control and data representation are language-agnostic.
//
// Usage:
//
//	et-stackheap [-mode stack|heap] [-out DIR] [-max N] PROGRAM.{py,c}
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"easytracker"
	"easytracker/internal/viz"
)

func main() {
	mode := flag.String("mode", "heap", "diagram mode: stack (inline values) or heap (stack+heap)")
	outDir := flag.String("out", ".", "output directory for the SVG files")
	maxImgs := flag.Int("max", 200, "maximum number of images")
	remoteAddr := flag.String("remote", "", "drive the program on a tracker server (et-serve) at host:port")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: et-stackheap [-mode stack|heap] [-out DIR] PROGRAM.{py,c}")
		os.Exit(2)
	}
	inf := flag.Arg(0)

	// Listing 1, line by line. With -remote the same loop drives a session
	// hosted by et-serve; the capability probe below still reflects the
	// server-side backend through the handshake-advertised capability set.
	var tracker easytracker.Tracker
	var err error
	if *remoteAddr != "" {
		tracker, err = easytracker.Connect(*remoteAddr, easytracker.KindFor(inf))
	} else {
		tracker, err = easytracker.New(easytracker.KindFor(inf))
	}
	check(err)
	check(tracker.LoadProgram(inf, easytracker.WithStdout(os.Stdout),
		easytracker.WithHeapTracking()))
	check(tracker.Start())
	defer tracker.Terminate()

	snap, ok := easytracker.As[easytracker.StateProvider](tracker)
	if !ok {
		fmt.Fprintln(os.Stderr, "et-stackheap: tracker does not provide full state snapshots")
		os.Exit(2)
	}

	dm := viz.StackAndHeap
	if *mode == "stack" {
		dm = viz.StackOnly
	}
	imgCount := 1
	for {
		if _, done := tracker.ExitCode(); done {
			break
		}
		st, err := snap.State()
		check(err)
		_, line := tracker.Position()
		doc := viz.StackHeapSVG(st, viz.StackHeapOptions{
			Mode:        dm,
			Title:       fmt.Sprintf("%s — line %d", inf, line),
			ShowGlobals: true,
		})
		name := filepath.Join(*outDir, fmt.Sprintf("%03d-stack_heap.svg", imgCount))
		check(os.WriteFile(name, []byte(doc), 0o644))
		check(tracker.Step())
		imgCount++
		if imgCount > *maxImgs {
			fmt.Fprintf(os.Stderr, "stopping after %d images\n", *maxImgs)
			break
		}
	}
	fmt.Printf("wrote %d diagrams to %s\n", imgCount-1, *outDir)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
