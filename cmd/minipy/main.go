// Command minipy runs a MiniPy program directly (without tracking), like
// invoking the Python interpreter on an inferior.
//
// Usage: minipy PROGRAM.py [args...]
package main

import (
	"fmt"
	"os"

	"easytracker/internal/minipy"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: minipy PROGRAM.py [args...]")
		os.Exit(2)
	}
	path := os.Args[1]
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	mod, err := minipy.Parse(path, string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	in := minipy.NewInterp(mod)
	in.SetStdout(os.Stdout)
	in.SetStderr(os.Stderr)
	in.SetStdin(os.Stdin)
	in.SetArgs(os.Args[2:])
	code, err := in.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Exit(code)
}
