// Command minipy runs a MiniPy program directly (without tracking), like
// invoking the Python interpreter on an inferior. With -disasm it prints
// the compiled bytecode listing instead of executing.
//
// Usage: minipy [-disasm] PROGRAM.py [args...]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"easytracker/internal/minipy"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("minipy", flag.ContinueOnError)
	fs.SetOutput(stderr)
	disasm := fs.Bool("disasm", false, "print the compiled bytecode listing instead of executing")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: minipy [-disasm] PROGRAM.py [args...]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() < 1 {
		fs.Usage()
		return 2
	}
	path := fs.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	mod, err := minipy.Parse(path, string(src))
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *disasm {
		prog := minipy.Compile(mod)
		if prog == nil {
			fmt.Fprintln(stderr, "minipy: program did not compile")
			return 2
		}
		fmt.Fprint(stdout, prog.Disasm())
		return 0
	}
	in := minipy.NewInterp(mod)
	in.SetStdout(stdout)
	in.SetStderr(stderr)
	in.SetStdin(stdin)
	in.SetArgs(fs.Args()[1:])
	code, err := in.Run()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	return code
}
