package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func runCLI(t *testing.T, stdin string, args ...string) (int, string, string) {
	t.Helper()
	var out, errOut bytes.Buffer
	code := run(args, strings.NewReader(stdin), &out, &errOut)
	return code, out.String(), errOut.String()
}

func writeProgram(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "prog.py")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunProgram(t *testing.T) {
	path := writeProgram(t, "x = 6 * 7\nprint(x)\n")
	code, out, errOut := runCLI(t, "", path)
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
	if out != "42\n" {
		t.Fatalf("stdout %q", out)
	}
}

func TestRunRuntimeError(t *testing.T) {
	path := writeProgram(t, "print(1 // 0)\n")
	code, _, errOut := runCLI(t, "", path)
	if code != 1 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(errOut, "division") {
		t.Fatalf("stderr %q", errOut)
	}
}

func TestRunUsage(t *testing.T) {
	code, _, errOut := runCLI(t, "")
	if code != 2 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(errOut, "usage: minipy") {
		t.Fatalf("stderr %q", errOut)
	}
}

// TestDisasmGolden pins the bytecode listing for a representative program.
// The listing is part of the debugging surface (et users read it to see
// what the VM executes), so format drift should be a conscious choice:
// regenerate with
//
//	cd cmd/minipy && go run . -disasm testdata/disasm.py > testdata/disasm.golden
func TestDisasmGolden(t *testing.T) {
	code, out, errOut := runCLI(t, "", "-disasm", filepath.Join("testdata", "disasm.py"))
	if code != 0 {
		t.Fatalf("exit %d, stderr %q", code, errOut)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "disasm.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if out != string(want) {
		t.Fatalf("disasm drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", out, want)
	}
	if !strings.Contains(out, "fib") || !strings.Contains(out, "CALL") {
		t.Fatalf("listing missing expected content:\n%s", out)
	}
}

func TestDisasmDoesNotExecute(t *testing.T) {
	// -disasm must not run the program: executing this one would exit 7.
	path := writeProgram(t, "exit(7)\n")
	code, out, errOut := runCLI(t, "", "-disasm", path)
	if code != 0 {
		t.Fatalf("-disasm executed the program: exit %d, stderr %q", code, errOut)
	}
	if !strings.Contains(out, "CALL") {
		t.Fatalf("no listing produced:\n%s", out)
	}
}
