def fib(n):
    if n < 2:
        return n
    return fib(n - 1) + fib(n - 2)

r = fib(10)
print(r)
