// Command et-recviz is the paper's Listing 6 tool: it tracks a recursive
// function and draws the call tree (Fig. 8) — a node per call showing the
// chosen arguments, red while live and gray once returned, with the return
// value on a dashed back edge. One SVG (and DOT) file is written per
// tracked event.
//
// Usage:
//
//	et-recviz [-out DIR] [-args a,b] [-skip N] PROGRAM.{py,c} FUNC
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"easytracker"
	"easytracker/internal/viz"
)

func main() {
	outDir := flag.String("out", ".", "output directory")
	argNames := flag.String("args", "", "comma-separated argument names to display")
	skip := flag.Int("skip", 0, "skip the first N call trees (interactive focus, as in Listing 6)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: et-recviz [-out DIR] [-args a,b] PROGRAM FUNC")
		os.Exit(2)
	}
	prog, fn := flag.Arg(0), flag.Arg(1)
	var names []string
	if *argNames != "" {
		names = strings.Split(*argNames, ",")
	}

	tracker, err := easytracker.New(easytracker.KindFor(prog))
	check(err)
	check(tracker.LoadProgram(prog, easytracker.WithStdout(os.Stdout)))
	check(tracker.TrackFunction(fn))
	check(tracker.Start())
	defer tracker.Terminate()

	var root, current *viz.CallNode
	uid := 0
	img := 0
	trees := 0
	emit := func() {
		if root == nil {
			return
		}
		img++
		base := filepath.Join(*outDir, fmt.Sprintf("rec-%03d", img))
		check(os.WriteFile(base+".svg", []byte(viz.CallTreeSVG(root)), 0o644))
		check(os.WriteFile(base+".dot", []byte(viz.CallTreeDOT(root)), 0o644))
	}

	for {
		if _, done := tracker.ExitCode(); done {
			break
		}
		check(tracker.Resume())
		switch r := tracker.PauseReason(); r.Type {
		case easytracker.PauseCall:
			label := callLabel(tracker, fn, names)
			uid++
			if current == nil {
				trees++
				root = &viz.CallNode{UID: uid, Label: label, Active: true}
				current = root
			} else {
				current = current.AddChild(uid, label)
			}
			if trees > *skip {
				emit()
			}
		case easytracker.PauseReturn:
			if current != nil {
				current.Active = false
				if r.ReturnValue != nil {
					current.RetVal = deref(r.ReturnValue)
				}
				if trees > *skip {
					emit()
				}
				parent := findParent(root, current)
				current = parent
			}
		case easytracker.PauseExited:
		}
	}
	fmt.Printf("wrote %d call-tree images to %s\n", img, *outDir)
}

// callLabel renders "fn(args...)" from the entry frame.
func callLabel(tr easytracker.Tracker, fn string, names []string) string {
	fr, err := tr.CurrentFrame()
	if err != nil {
		return fn
	}
	var parts []string
	for _, v := range fr.Vars {
		if len(names) > 0 && !contains(names, v.Name) {
			continue
		}
		parts = append(parts, deref(v.Value))
	}
	return fmt.Sprintf("%s(%s)", fn, strings.Join(parts, ", "))
}

func deref(v *easytracker.Value) string {
	if v == nil {
		return "?"
	}
	if v.Kind == easytracker.Ref && v.Deref() != nil {
		return v.Deref().String()
	}
	return v.String()
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

// findParent locates n's parent in the tree (nil for the root).
func findParent(root, n *viz.CallNode) *viz.CallNode {
	if root == nil || root == n {
		return nil
	}
	for _, c := range root.Children {
		if c == n {
			return root
		}
		if p := findParent(c, n); p != nil {
			return p
		}
	}
	return nil
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
