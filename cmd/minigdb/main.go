// Command minigdb runs the MiniGDB MI server over stdin/stdout, so a
// tracker (or a human) can drive it as a real subprocess — the
// process-separated configuration of the paper's Fig. 4.
//
// Usage:
//
//	minigdb [PROG.c|PROG.s|PROG.mobj]
//
// Commands are GDB/MI-style lines (-exec-run, -break-insert 12,
// -exec-continue, -et-inspect, ...); responses end with "(gdb)".
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"easytracker/internal/asm"
	"easytracker/internal/isa"
	"easytracker/internal/mi"
	"easytracker/internal/minic"
)

func main() {
	var prog *isa.Program
	if len(os.Args) > 1 {
		path := os.Args[1]
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		switch {
		case strings.HasSuffix(path, ".mobj"):
			prog = new(isa.Program)
			err = json.Unmarshal(data, prog)
		case strings.HasSuffix(path, ".s"), strings.HasSuffix(path, ".asm"):
			prog, err = asm.Assemble(path, string(data))
		default:
			prog, err = minic.Compile(path, string(data))
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	srv := mi.NewServer(prog)
	srv.SetStdin(strings.NewReader("")) // inferior input not wired on stdio
	conn := mi.NewStdioConn(os.Stdin, os.Stdout, nil)
	_ = conn.Send("(gdb)")
	if err := srv.Serve(conn); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
