// Command minigdb runs the MiniGDB MI server over stdin/stdout, so a
// tracker (or a human) can drive it as a real subprocess — the
// process-separated configuration of the paper's Fig. 4.
//
// Usage:
//
//	minigdb [-die-after N] [-stats] [-stats-interval DUR] [PROG.c|PROG.s|PROG.mobj]
//
// Commands are GDB/MI-style lines (-exec-run, -break-insert 12,
// -exec-continue, -et-inspect, ...); responses end with "(gdb)".
//
// -die-after N makes the process exit abruptly (status 3) when command
// N+1 arrives, before any response is written — a deterministic debugger
// crash used by the session-recovery fault tests.
//
// -stats prints the server-side instrument snapshot (commands served,
// records written, the last commands seen) as JSON to stderr when the
// session ends; -stats-interval DUR prints a one-line snapshot periodically
// while serving, so a long session can be watched live.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"easytracker/internal/asm"
	"easytracker/internal/isa"
	"easytracker/internal/mi"
	"easytracker/internal/minic"
	"easytracker/internal/obs"
)

// dieConn wraps the stdio transport and kills the process after serving
// the configured number of commands.
type dieConn struct {
	mi.Conn
	left int
}

func (d *dieConn) Recv() (string, error) {
	line, err := d.Conn.Recv()
	if err != nil {
		return line, err
	}
	if d.left--; d.left < 0 {
		os.Exit(3)
	}
	return line, nil
}

// statsConn instruments the server side of the pipe: every command line
// received and record line written lands in the panel, so -stats can report
// what this debugger process actually served.
type statsConn struct {
	mi.Conn
	m *obs.Metrics
}

func (s *statsConn) Recv() (string, error) {
	line, err := s.Conn.Recv()
	if err == nil {
		s.m.Counter("server.commands").Inc()
		s.m.Event("cmd", line)
	}
	return line, err
}

func (s *statsConn) Send(line string) error {
	err := s.Conn.Send(line)
	if err == nil && line != "(gdb)" {
		s.m.Counter("server.records").Inc()
	}
	return err
}

func main() {
	dieAfter := flag.Int("die-after", -1, "crash (exit 3) when command N+1 arrives; -1 disables")
	showStats := flag.Bool("stats", false, "print the server's metrics snapshot (JSON) to stderr on exit")
	statsInterval := flag.Duration("stats-interval", 0, "also print the metrics snapshot to stderr every DUR while serving (0 disables)")
	flag.Parse()

	var prog *isa.Program
	if flag.NArg() > 0 {
		path := flag.Arg(0)
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		switch {
		case strings.HasSuffix(path, ".mobj"):
			prog = new(isa.Program)
			err = json.Unmarshal(data, prog)
		case strings.HasSuffix(path, ".s"), strings.HasSuffix(path, ".asm"):
			prog, err = asm.Assemble(path, string(data))
		default:
			prog, err = minic.Compile(path, string(data))
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	srv := mi.NewServer(prog)
	srv.SetStdin(strings.NewReader("")) // inferior input not wired on stdio
	var conn mi.Conn = mi.NewStdioConn(os.Stdin, os.Stdout, nil)
	var metrics *obs.Metrics
	if *showStats || *statsInterval > 0 {
		metrics = obs.New(obs.Config{Enabled: true, Events: obs.DefaultEvents})
		conn = &statsConn{Conn: conn, m: metrics}
	}
	if *statsInterval > 0 {
		go func() {
			tick := time.NewTicker(*statsInterval)
			defer tick.Stop()
			for range tick.C {
				snap := metrics.Snapshot()
				snap.Tracker = "minigdb-server"
				if data, err := json.Marshal(snap); err == nil {
					fmt.Fprintf(os.Stderr, "stats: %s\n", data)
				}
			}
		}()
	}
	if *dieAfter >= 0 {
		conn = &dieConn{Conn: conn, left: *dieAfter}
	}
	dumpStats := func() {
		if metrics == nil {
			return
		}
		snap := metrics.Snapshot()
		snap.Tracker = "minigdb-server"
		enc := json.NewEncoder(os.Stderr)
		enc.SetIndent("", "  ")
		_ = enc.Encode(snap)
	}
	// A SIGINT (e.g. a Ctrl-C shared with an interactive parent's process
	// group) interrupts the running inferior — equivalent to receiving
	// -exec-interrupt — so the exec command in flight returns an
	// interrupted stop instead of the server wedging. A second SIGINT
	// dumps stats and exits.
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt)
	go func() {
		<-sig
		srv.Interrupt()
		<-sig
		dumpStats()
		os.Exit(130)
	}()
	_ = conn.Send("(gdb)")
	err := srv.Serve(conn)
	dumpStats()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
