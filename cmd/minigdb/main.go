// Command minigdb runs the MiniGDB MI server over stdin/stdout, so a
// tracker (or a human) can drive it as a real subprocess — the
// process-separated configuration of the paper's Fig. 4.
//
// Usage:
//
//	minigdb [-die-after N] [PROG.c|PROG.s|PROG.mobj]
//
// Commands are GDB/MI-style lines (-exec-run, -break-insert 12,
// -exec-continue, -et-inspect, ...); responses end with "(gdb)".
//
// -die-after N makes the process exit abruptly (status 3) when command
// N+1 arrives, before any response is written — a deterministic debugger
// crash used by the session-recovery fault tests.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"easytracker/internal/asm"
	"easytracker/internal/isa"
	"easytracker/internal/mi"
	"easytracker/internal/minic"
)

// dieConn wraps the stdio transport and kills the process after serving
// the configured number of commands.
type dieConn struct {
	mi.Conn
	left int
}

func (d *dieConn) Recv() (string, error) {
	line, err := d.Conn.Recv()
	if err != nil {
		return line, err
	}
	if d.left--; d.left < 0 {
		os.Exit(3)
	}
	return line, nil
}

func main() {
	dieAfter := flag.Int("die-after", -1, "crash (exit 3) when command N+1 arrives; -1 disables")
	flag.Parse()

	var prog *isa.Program
	if flag.NArg() > 0 {
		path := flag.Arg(0)
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		switch {
		case strings.HasSuffix(path, ".mobj"):
			prog = new(isa.Program)
			err = json.Unmarshal(data, prog)
		case strings.HasSuffix(path, ".s"), strings.HasSuffix(path, ".asm"):
			prog, err = asm.Assemble(path, string(data))
		default:
			prog, err = minic.Compile(path, string(data))
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	srv := mi.NewServer(prog)
	srv.SetStdin(strings.NewReader("")) // inferior input not wired on stdio
	var conn mi.Conn = mi.NewStdioConn(os.Stdin, os.Stdout, nil)
	if *dieAfter >= 0 {
		conn = &dieConn{Conn: conn, left: *dieAfter}
	}
	_ = conn.Send("(gdb)")
	if err := srv.Serve(conn); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
