// Command et-game plays the paper's debugging game (Fig. 9): each level is
// a buggy MiniC program moving a character on a map. Run the level, watch
// the character, read the hints, edit the program file, and run again until
// the character reaches the exit.
//
// Usage:
//
//	et-game [-level N] [PROGRAM.c]
//
// Without PROGRAM.c the built-in (buggy) level source is used; pass your
// edited copy to test a fix. Use `et-game -dump-level N > level.c` to get
// the source to edit.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"

	"easytracker/internal/game"
)

func main() {
	levelNo := flag.Int("level", 1, "level number (1-based)")
	dump := flag.Bool("dump-level", false, "print the level program and exit")
	svgDir := flag.String("svg", "", "also write one SVG frame per step to this directory")
	flag.Parse()

	if *levelNo < 1 || *levelNo > len(game.Levels) {
		fmt.Fprintf(os.Stderr, "no level %d (have 1..%d)\n", *levelNo, len(game.Levels))
		os.Exit(2)
	}
	level := game.Levels[*levelNo-1]
	if *dump {
		fmt.Print(level.Source)
		return
	}

	src := ""
	if flag.NArg() == 1 {
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		src = string(data)
	}

	engine, err := game.NewEngine(level)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	// Ctrl-C interrupts the level program (a buggy level can loop forever);
	// Play returns a normal result reporting the interruption. A second
	// Ctrl-C force-quits.
	sig := make(chan os.Signal, 2)
	signal.Notify(sig, os.Interrupt)
	go func() {
		<-sig
		engine.Interrupt()
		<-sig
		os.Exit(130)
	}()
	res, err := engine.Play(src)
	signal.Stop(sig)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for i, f := range res.Frames {
		fmt.Printf("-- step %d --\n%s\n", i, f)
	}
	if *svgDir != "" {
		for i, doc := range game.FramesSVG(level, res) {
			name := filepath.Join(*svgDir, fmt.Sprintf("game-%03d.svg", i))
			if err := os.WriteFile(name, []byte(doc), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		fmt.Printf("wrote %d SVG frames to %s\n", len(res.Frames), *svgDir)
	}
	for _, ev := range res.Events {
		if ev.Note != "" {
			fmt.Printf("event: %s at (%d,%d)\n", ev.Note, ev.Pos.X, ev.Pos.Y)
		}
	}
	if res.Won {
		fmt.Println("*** LEVEL COMPLETE:", res.Reason)
		return
	}
	fmt.Println("level failed:", res.Reason)
	if len(res.Hints) > 0 {
		fmt.Println("hints:")
		for _, h := range res.Hints {
			fmt.Println("  -", h)
		}
	}
	fmt.Println("edit the level program and run again (et-game -dump-level", *levelNo, "> level.c)")
	os.Exit(1)
}
