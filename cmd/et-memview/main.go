// Command et-memview is the paper's Fig. 7 tool: a registers-and-memory
// viewer for assembly/MiniC programs, stepping line by line and showing the
// source next to the CPU registers and raw memory (one-dimensional array of
// words), using the GDB-tracker-specific inspection extensions
// (get_registers_gdb / get_value_at_gdb).
//
// Usage:
//
//	et-memview [-svg DIR] [-seg data,stack] PROGRAM.{s,c}
//
// Without -svg the tool prints the text view per step; with -svg it writes
// one SVG per step.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"easytracker"
	"easytracker/internal/viz"
)

func main() {
	svgDir := flag.String("svg", "", "write SVG frames to this directory instead of printing text")
	segNames := flag.String("seg", "data,stack", "comma-separated segments to display")
	maxWords := flag.Int("words", 12, "words shown per segment")
	interactive := flag.Bool("i", false, "wait for Enter between steps")
	maxSteps := flag.Int("max", 100, "maximum steps")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: et-memview [-svg DIR] PROGRAM.{s,c}")
		os.Exit(2)
	}
	prog := flag.Arg(0)

	tracker, err := easytracker.New("minigdb")
	check(err)
	check(tracker.LoadProgram(prog, easytracker.WithStdout(os.Stdout)))
	check(tracker.Start())
	defer tracker.Terminate()

	caps := easytracker.Capabilities(tracker)
	if !caps.Registers || !caps.Memory {
		fmt.Fprintln(os.Stderr, "et-memview: tracker exposes neither registers nor raw memory; use a minigdb program")
		os.Exit(2)
	}
	regInsp, _ := easytracker.As[easytracker.RegisterInspector](tracker)
	memInsp, _ := easytracker.As[easytracker.MemoryInspector](tracker)
	lines, err := tracker.SourceLines()
	check(err)
	stdin := bufio.NewReader(os.Stdin)

	wanted := map[string]bool{}
	for _, s := range strings.Split(*segNames, ",") {
		wanted[strings.TrimSpace(s)] = true
	}

	step := 0
	for {
		if _, done := tracker.ExitCode(); done {
			break
		}
		regs, err := regInsp.Registers()
		check(err)
		var segs []easytracker.Segment
		for _, sg := range memInsp.MemorySegments() {
			if wanted[sg.Name] {
				segs = append(segs, sg)
			}
		}
		_, line := tracker.Position()
		hl := map[uint64]string{
			regs["sp"] &^ 7: "sp",
			regs["fp"] &^ 7: "fp",
		}
		opt := viz.MemViewOptions{
			Title:     fmt.Sprintf("%s — line %d", prog, line),
			Segments:  segs,
			MaxWords:  *maxWords,
			Highlight: hl,
		}
		if *svgDir != "" {
			step++
			doc := viz.MemViewSVG(regs, memInsp, opt)
			check(os.WriteFile(filepath.Join(*svgDir,
				fmt.Sprintf("mem-%03d.svg", step)), []byte(doc), 0o644))
			src := viz.SourceSVG(lines, line, prog)
			check(os.WriteFile(filepath.Join(*svgDir,
				fmt.Sprintf("src-%03d.svg", step)), []byte(src), 0o644))
		} else {
			fmt.Println(viz.SourceListing(lines, line))
			fmt.Println(viz.MemViewText(regs, memInsp, opt))
			step++
		}
		if *interactive {
			_, _ = stdin.ReadString('\n')
		}
		check(tracker.Step())
		if step >= *maxSteps {
			fmt.Fprintf(os.Stderr, "stopping after %d steps\n", *maxSteps)
			break
		}
	}
	if *svgDir != "" {
		fmt.Printf("wrote %d frames to %s\n", step, *svgDir)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
