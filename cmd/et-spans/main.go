// Command et-spans merges span dumps from a tracker fleet into one Chrome
// trace-event document loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing. Each argument is either a JSON dump file (written with
// easytracker.ExportSpans or saved from et-serve's /spans endpoint) or an
// http(s) URL, fetched live — so one command can splice a tool's client-side
// spans against the server's half of the same traces:
//
//	et-spans client-spans.json http://localhost:8080/spans -o timeline.json
//
// Spans sharing a trace id line up on the same timeline row per process;
// span and parent ids ride in the event args for cross-referencing.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"

	"easytracker/internal/spanexport"
)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: et-spans [-o out.json] dump.json|URL ...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	var dumps []*spanexport.Dump
	for _, arg := range flag.Args() {
		data, err := fetch(arg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "et-spans: %s: %v\n", arg, err)
			os.Exit(1)
		}
		dump, err := spanexport.DecodeDump(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "et-spans: %s: %v\n", arg, err)
			os.Exit(1)
		}
		dumps = append(dumps, dump)
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "et-spans: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := spanexport.WriteChromeTrace(w, dumps...); err != nil {
		fmt.Fprintf(os.Stderr, "et-spans: %v\n", err)
		os.Exit(1)
	}
	n := 0
	for _, d := range dumps {
		n += len(d.Spans)
	}
	fmt.Fprintf(os.Stderr, "et-spans: merged %d spans from %d dumps\n", n, len(dumps))
}

// fetch reads one dump source: an http(s) URL or a file path.
func fetch(arg string) ([]byte, error) {
	if strings.HasPrefix(arg, "http://") || strings.HasPrefix(arg, "https://") {
		resp, err := http.Get(arg)
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("HTTP %s", resp.Status)
		}
		return io.ReadAll(resp.Body)
	}
	return os.ReadFile(arg)
}
