// Command minicc is the MiniC compiler driver: it compiles MiniC source (or
// assembles .s files) and either runs the program, dumps the disassembly,
// or writes a loadable .mobj image for minigdb.
//
// Usage:
//
//	minicc run PROG.c [--] [stdin<file]   compile and execute
//	minicc build PROG.c -o PROG.mobj      write the program image
//	minicc disasm PROG.c                  dump the disassembly
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"easytracker/internal/asm"
	"easytracker/internal/isa"
	"easytracker/internal/minic"
	"easytracker/internal/vm"
)

func compile(path string) (*isa.Program, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if strings.HasSuffix(path, ".s") || strings.HasSuffix(path, ".asm") {
		return asm.Assemble(path, string(src))
	}
	return minic.Compile(path, string(src))
}

func main() {
	if len(os.Args) < 3 {
		fmt.Fprintln(os.Stderr, "usage: minicc run|build|disasm PROG.c [-o OUT.mobj]")
		os.Exit(2)
	}
	mode := os.Args[1]
	fs := flag.NewFlagSet("minicc", flag.ExitOnError)
	out := fs.String("o", "", "output image path (build)")
	_ = fs.Parse(os.Args[3:])
	prog, err := compile(os.Args[2])
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	switch mode {
	case "run":
		m, err := vm.New(prog, vm.Config{Stdout: os.Stdout, Stderr: os.Stderr, Stdin: os.Stdin})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		stop := m.Run(0)
		switch stop.Kind {
		case vm.StopExit:
			os.Exit(stop.ExitCode)
		case vm.StopFault:
			fmt.Fprintln(os.Stderr, stop.Err)
			os.Exit(139)
		default:
			fmt.Fprintf(os.Stderr, "program stopped unexpectedly: %v\n", stop.Kind)
			os.Exit(1)
		}
	case "build":
		if *out == "" {
			*out = strings.TrimSuffix(os.Args[2], ".c") + ".mobj"
		}
		data, err := json.MarshalIndent(prog, "", " ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("wrote %s (%d instructions, %d bytes data)\n",
			*out, len(prog.Instrs), len(prog.Data))
	case "disasm":
		for _, fn := range prog.Funcs {
			fmt.Printf("%s:\n", fn.Name)
			for _, d := range prog.Disassemble(fn.Entry, fn.End) {
				line := prog.LineAt(d.PC)
				loc := ""
				if line > 0 {
					loc = fmt.Sprintf("  ; line %d", line)
				}
				fmt.Printf("  %#06x  %s%s\n", d.PC, d.Text, loc)
			}
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", mode)
		os.Exit(2)
	}
}
