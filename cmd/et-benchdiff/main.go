// Command et-benchdiff runs the watchpoint and observability benchmarks,
// compares them against the committed baseline, and writes a JSON report.
// It exits non-zero when any gated benchmark's allocs/op or ns/op regresses
// beyond its tolerance, so it can serve as a CI guard for the watchpoint
// fast path and for the obs-off overhead budget.
//
// Usage:
//
//	et-benchdiff [-bench REGEX] [-baseline FILE] [-o FILE]
//	             [-count N] [-gate NAME[,NAME...]] [-tolerance PCT]
//	             [-ns-tolerance PCT] [-dir DIR]
//
// The baseline (cmd/et-benchdiff/baseline.json) holds the numbers
// measured before the dirty-tracking write barriers landed, plus the
// watchpoint-resume numbers BenchmarkObsOverheadOff must not regress
// from; the report quotes both sides plus the improvement factors.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// BenchResult is one benchmark measurement.
type BenchResult struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      float64 `json:"b_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Baseline is the committed reference measurement set.
type Baseline struct {
	Note       string                 `json:"note,omitempty"`
	Benchmarks map[string]BenchResult `json:"benchmarks"`
}

// Comparison pairs a current measurement with its baseline.
type Comparison struct {
	Before *BenchResult `json:"before,omitempty"`
	After  BenchResult  `json:"after"`
	// SpeedupX and AllocReductionX are before/after ratios (> 1 means
	// the current code is better); omitted without a baseline.
	SpeedupX        float64 `json:"speedup_x,omitempty"`
	AllocReductionX float64 `json:"alloc_reduction_x,omitempty"`
}

// Report is the emitted JSON document.
type Report struct {
	Bench        string                `json:"bench"`
	Gate         string                `json:"gate"`
	ToleranceP   float64               `json:"tolerance_pct"`
	NsToleranceP float64               `json:"ns_tolerance_pct"`
	Pass         bool                  `json:"pass"`
	Results      map[string]Comparison `json:"results"`
}

// benchLine matches `BenchmarkName-8   123   456 ns/op   789 B/op   12 allocs/op`.
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(.*)$`)

func parseBenchOutput(out []byte) map[string]BenchResult {
	results := map[string]BenchResult{}
	sc := bufio.NewScanner(bytes.NewReader(out))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		r := BenchResult{}
		r.NsPerOp, _ = strconv.ParseFloat(m[2], 64)
		for _, f := range strings.Split(m[3], "\t") {
			f = strings.TrimSpace(f)
			switch {
			case strings.HasSuffix(f, " B/op"):
				r.BPerOp, _ = strconv.ParseFloat(strings.TrimSuffix(f, " B/op"), 64)
			case strings.HasSuffix(f, " allocs/op"):
				r.AllocsPerOp, _ = strconv.ParseFloat(strings.TrimSuffix(f, " allocs/op"), 64)
			}
		}
		if prev, ok := results[m[1]]; ok && prev.NsPerOp <= r.NsPerOp {
			continue // -count N repetitions: keep the fastest run
		}
		results[m[1]] = r
	}
	return results
}

func loadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &b, nil
}

func main() {
	bench := flag.String("bench", "BenchmarkResumeWithWatchpointMiniPy|BenchmarkAblationWatchCountMiniPy|BenchmarkAblationEngineMiniPy|BenchmarkCompileMiniPy|BenchmarkObsOverhead|BenchmarkSpanOverhead|BenchmarkBudgetCheckOverhead|BenchmarkConditionalBreakMiniPy|BenchmarkRemoteRoundTrip|BenchmarkRedialOverheadOff|BenchmarkSeekColdVsCheckpoint|BenchmarkRecordingOverhead", "benchmark regex passed to go test -bench")
	baselinePath := flag.String("baseline", filepath.Join("cmd", "et-benchdiff", "baseline.json"), "committed baseline JSON")
	outPath := flag.String("o", "BENCH_1.json", "report output path")
	count := flag.Int("count", 1, "benchmark repetitions (best of N is kept)")
	gate := flag.String("gate", "BenchmarkResumeWithWatchpointMiniPy,BenchmarkObsOverheadOff,BenchmarkSpanOverheadOff,BenchmarkBudgetCheckOverhead,BenchmarkConditionalBreakMiniPy,BenchmarkAblationWatchCountMiniPy/-watches,allocs:BenchmarkRedialOverheadOff,BenchmarkRecordingOverheadOff", "comma-separated benchmarks whose allocs/op and ns/op are gated against the baseline; an allocs: prefix gates allocs/op only (for wire benchmarks whose ns/op rides loopback latency)")
	tolerance := flag.Float64("tolerance", 10, "allowed allocs/op regression in percent")
	nsTolerance := flag.Float64("ns-tolerance", 15, "allowed ns/op regression in percent (ns/op is noisier than allocs/op)")
	dir := flag.String("dir", ".", "module directory to benchmark")
	flag.Parse()

	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", *bench, "-benchmem", "-count", strconv.Itoa(*count), ".")
	cmd.Dir = *dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		fmt.Fprintf(os.Stderr, "et-benchdiff: go test failed: %v\n%s", err, out)
		os.Exit(1)
	}
	current := parseBenchOutput(out)
	if len(current) == 0 {
		fmt.Fprintf(os.Stderr, "et-benchdiff: no benchmarks matched %q\n%s", *bench, out)
		os.Exit(1)
	}

	var base *Baseline
	if b, err := loadBaseline(filepath.Join(*dir, *baselinePath)); err == nil {
		base = b
	} else {
		fmt.Fprintf(os.Stderr, "et-benchdiff: no baseline (%v); reporting without comparison\n", err)
	}

	report := Report{
		Bench: *bench, Gate: *gate,
		ToleranceP: *tolerance, NsToleranceP: *nsTolerance,
		Pass: true, Results: map[string]Comparison{},
	}
	names := make([]string, 0, len(current))
	for name := range current {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		cur := current[name]
		cmp := Comparison{After: cur}
		if base != nil {
			if ref, ok := base.Benchmarks[name]; ok {
				r := ref
				cmp.Before = &r
				if cur.NsPerOp > 0 {
					cmp.SpeedupX = round2(ref.NsPerOp / cur.NsPerOp)
				}
				if cur.AllocsPerOp > 0 {
					cmp.AllocReductionX = round2(ref.AllocsPerOp / cur.AllocsPerOp)
				}
			}
		}
		report.Results[name] = cmp
	}

	if base != nil {
		for _, g := range strings.Split(*gate, ",") {
			g = strings.TrimSpace(g)
			if g == "" {
				continue
			}
			allocsOnly := strings.HasPrefix(g, "allocs:")
			g = strings.TrimPrefix(g, "allocs:")
			ref, hasRef := base.Benchmarks[g]
			cur, hasCur := current[g]
			switch {
			case !hasCur:
				fmt.Fprintf(os.Stderr, "et-benchdiff: gate %s did not run\n", g)
				report.Pass = false
			case hasRef:
				limit := ref.AllocsPerOp * (1 + *tolerance/100)
				if cur.AllocsPerOp > limit {
					fmt.Fprintf(os.Stderr,
						"et-benchdiff: %s allocs/op %.0f exceeds baseline %.0f by more than %.0f%%\n",
						g, cur.AllocsPerOp, ref.AllocsPerOp, *tolerance)
					report.Pass = false
				}
				nsLimit := ref.NsPerOp * (1 + *nsTolerance/100)
				if !allocsOnly && ref.NsPerOp > 0 && cur.NsPerOp > nsLimit {
					fmt.Fprintf(os.Stderr,
						"et-benchdiff: %s ns/op %.0f exceeds baseline %.0f by more than %.0f%%\n",
						g, cur.NsPerOp, ref.NsPerOp, *nsTolerance)
					report.Pass = false
				}
			}
		}
	}

	data, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "et-benchdiff: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*outPath, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "et-benchdiff: %v\n", err)
		os.Exit(1)
	}
	for _, name := range names {
		c := report.Results[name]
		line := fmt.Sprintf("%s: %.0f ns/op, %.0f allocs/op", name, c.After.NsPerOp, c.After.AllocsPerOp)
		if c.Before != nil {
			line += fmt.Sprintf(" (was %.0f ns/op, %.0f allocs/op; %.2fx faster, %.2fx fewer allocs)",
				c.Before.NsPerOp, c.Before.AllocsPerOp, c.SpeedupX, c.AllocReductionX)
		}
		fmt.Println(line)
	}
	if !report.Pass {
		os.Exit(1)
	}
}

func round2(v float64) float64 { return float64(int(v*100+0.5)) / 100 }
