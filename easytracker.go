// Package easytracker is a Go reproduction of EasyTracker (Barollet et al.,
// CGO 2024): a language-agnostic library for controlling and inspecting
// program execution, designed so that teachers who are not debugging experts
// can build program-visualization tools.
//
// A tool written against this package loads an inferior program, controls
// its execution (start, step, next, resume; line and function breakpoints
// with a maxdepth filter; function tracking; variable watchpoints) and,
// whenever the inferior is paused, inspects a serializable, language-
// agnostic representation of its state: a stack of Frames holding Variables
// whose Values carry an abstract type (PRIMITIVE, REF, LIST, DICT, STRUCT,
// NONE, INVALID, FUNCTION), a conceptual memory location, an address, and
// the type name in the inferior language's own terms.
//
// Two trackers ship with the library, mirroring the paper:
//
//   - "minipy" controls MiniPy programs (a Python-like interpreted language,
//     internal/minipy) through settrace-style hooks, with the inferior in
//     its own goroutine;
//   - "minigdb" controls compiled MiniC and assembly programs through a
//     GDB/MI-style protocol spoken to MiniGDB (internal/dbg) over a pipe,
//     with function-exit breakpoints found by disassembly and heap sizes
//     recovered through allocator interposition;
//
// plus "trace", which replays a recorded execution trace through the same
// interface (internal/tracetracker).
//
// The minimal control loop — the paper's Listing 1 — is identical for every
// tracker:
//
//	tracker, _ := easytracker.New(easytracker.KindFor(path))
//	tracker.LoadProgram(path)
//	tracker.Start()
//	for {
//	    if _, done := tracker.ExitCode(); done {
//	        break
//	    }
//	    frame, _ := tracker.CurrentFrame()
//	    draw(frame)
//	    tracker.Step()
//	}
package easytracker

import (
	"encoding/json"
	"io"
	"strings"

	"easytracker/internal/core"
	"easytracker/internal/obs"
	"easytracker/internal/remote"
	"easytracker/internal/spanexport"

	// Register the built-in trackers.
	_ "easytracker/internal/gdbtracker"
	_ "easytracker/internal/pytracker"
	_ "easytracker/internal/tracetracker"
)

// Tracker is the language-agnostic control and inspection interface
// (paper Section II-B). Control functions return only when the inferior is
// paused or terminated.
type Tracker = core.Tracker

// State-model types (paper Fig. 3).
type (
	// Frame is one activation record of the paused inferior.
	Frame = core.Frame
	// Variable is a named slot holding a Value.
	Variable = core.Variable
	// Value is the serializable representation of one runtime value.
	Value = core.Value
	// AbstractType classifies a Value across languages.
	AbstractType = core.AbstractType
	// Location places a Value in the conceptual memory of the program.
	Location = core.Location
	// DictEntry is one key/value pair of a Dict value.
	DictEntry = core.DictEntry
	// Field is one named member of a Struct value.
	Field = core.Field
	// State is a full inspection snapshot (frames, globals, pause
	// reason); it is what crosses the MI pipe and what traces record.
	State = core.State
)

// Pause reasons (paper Section II-B1).
type (
	// PauseReason describes why and where the inferior paused.
	PauseReason = core.PauseReason
	// PauseReasonType enumerates the pause kinds.
	PauseReasonType = core.PauseReasonType
)

// Abstract type values.
const (
	Primitive = core.Primitive
	Ref       = core.Ref
	List      = core.List
	Dict      = core.Dict
	Struct    = core.Struct
	None      = core.None
	Invalid   = core.Invalid
	Function  = core.Function
)

// Locations.
const (
	LocNowhere  = core.LocNowhere
	LocStack    = core.LocStack
	LocHeap     = core.LocHeap
	LocGlobal   = core.LocGlobal
	LocRegister = core.LocRegister
)

// Pause reason types.
const (
	PauseNone       = core.PauseNone
	PauseEntry      = core.PauseEntry
	PauseStep       = core.PauseStep
	PauseBreakpoint = core.PauseBreakpoint
	PauseWatch      = core.PauseWatch
	PauseCall       = core.PauseCall
	PauseReturn     = core.PauseReturn
	PauseExited     = core.PauseExited
	// PauseInterrupted is a supervision pause: Interrupt(), an expired
	// WithExecutionTimeout deadline, or a tripped WithBudgets resource
	// budget stopped the run; PauseReason.Detail names which.
	PauseInterrupted = core.PauseInterrupted
)

// Options for LoadProgram and breakpoints.
type (
	// LoadOption customizes LoadProgram.
	LoadOption = core.LoadOption
	// BreakOption customizes breakpoint placement.
	BreakOption = core.BreakOption
)

// Load options.
var (
	// WithArgs sets the inferior's argv.
	WithArgs = core.WithArgs
	// WithStdout routes the inferior's standard output.
	WithStdout = core.WithStdout
	// WithStderr routes the inferior's standard error.
	WithStderr = core.WithStderr
	// WithStdin provides the inferior's standard input.
	WithStdin = core.WithStdin
	// WithHeapTracking enables allocator interposition (compiled
	// inferiors), so heap pointers expand to full arrays on inspection.
	WithHeapTracking = core.WithHeapTracking
	// WithSource supplies program text in memory.
	WithSource = core.WithSource
	// WithASTInterpreter runs a MiniPy inferior on the tree-walking
	// reference engine instead of the default bytecode VM.
	WithASTInterpreter = core.WithASTInterpreter
	// WithMaxDepth restricts a breakpoint to frame depths below d.
	WithMaxDepth = core.WithMaxDepth
	// When makes a probe conditional: it fires only when the query
	// expression (see internal/query; e.g. `n > 10 && depth < 5`)
	// evaluates true at the probe site. Alias of WithCondition.
	When = core.WithCondition
	// WithCondition makes a probe conditional on a query expression.
	WithCondition = core.WithCondition
	// WithIgnoreHits skips the first n matching hits of a probe.
	WithIgnoreHits = core.WithIgnoreHits
	// WithOneShot disarms a probe after its first report.
	WithOneShot = core.WithOneShot
	// WithCommandTimeout bounds every debugger round trip (MiniGDB
	// tracker): a command with no complete response within the deadline
	// fails with ErrCommandTimeout and the session layer restarts the
	// debugger instead of blocking the tool forever.
	WithCommandTimeout = core.WithCommandTimeout
	// WithRedialPolicy sets the remote client's reconnect policy for the
	// session being loaded (ignored by local trackers): how many dial
	// attempts per outage, the backoff curve between them, the total
	// wall-clock budget, and how many separate outages one session may
	// survive. See RedialPolicy and DefaultRedialPolicy.
	WithRedialPolicy = core.WithRedialPolicy
	// WithObservability enables the tracker's instrumentation — op
	// counters, latency histograms, gauges and the flight recorder — read
	// back with Stats. Off by default and near-free when off.
	WithObservability = core.WithObservability
	// WithFlightRecorder sizes the flight recorder (an ObsOption for
	// WithObservability) to retain the last n events.
	WithFlightRecorder = core.WithFlightRecorder
	// WithExecutionTimeout bounds the inferior's run time per resuming
	// call (Start/Resume/Step/Next): when the deadline expires the run is
	// interrupted and pauses with PauseInterrupted (Detail "deadline"),
	// fully inspectable — a runaway loop becomes a normal pause, not a
	// hung tool or a torn-down session.
	WithExecutionTimeout = core.WithExecutionTimeout
	// WithBudgets caps the inferior's resource usage (steps, recursion
	// depth, live heap objects, instructions); a tripped budget pauses
	// with PauseInterrupted and a Detail naming the budget.
	WithBudgets = core.WithBudgets
	// WithRecording records the inferior's execution as it runs (per-step
	// state deltas plus periodic checkpoints), enabling the TimeTraveler
	// and ReverseWatcher capabilities on live trackers. The argument is
	// the checkpoint interval in steps; 0 picks an adaptive policy with
	// O(sqrt n) seek cost. Trace replays are recordings already and need
	// no option.
	WithRecording = core.WithRecording
)

// Budgets is the resource-budget set for WithBudgets; zero fields are
// unlimited.
type Budgets = core.Budgets

// Extension interfaces implemented by the MiniGDB tracker only (the paper's
// get_registers_gdb / get_value_at_gdb), plus the full-snapshot interface
// both live trackers and the trace replayer provide. Access them through
// Capabilities and As rather than raw type asserts.
type (
	// RegisterInspector exposes machine registers.
	RegisterInspector = core.RegisterInspector
	// MemoryInspector exposes raw memory and segment maps.
	MemoryInspector = core.MemoryInspector
	// HeapInspector exposes the live heap-allocation map.
	HeapInspector = core.HeapInspector
	// StateProvider exposes the full inspection snapshot in one call.
	StateProvider = core.StateProvider
	// Segment describes one mapped memory region.
	Segment = core.Segment
	// CapabilitySet reports which extension interfaces a tracker has.
	CapabilitySet = core.CapabilitySet
	// Interrupter is the supervision capability: Interrupt() asks a
	// running inferior to pause. Both live trackers implement it; so does
	// AsyncTracker.
	Interrupter = core.Interrupter
	// ConditionalBreaker is the capability interface of trackers that
	// evaluate probe conditions at the probe site (Capabilities(tr)
	// .ConditionalBreak).
	ConditionalBreaker = core.ConditionalBreaker
	// TimeTraveler is the time-travel capability: sessions that record
	// execution (trace replays always; live trackers loaded with
	// WithRecording) can step backwards, run backwards to the previous
	// probe hit, and seek to any recorded step. Reverse navigation rewinds
	// inspection only — a live inferior never re-executes.
	TimeTraveler = core.TimeTraveler
	// ReverseWatcher is the reverse-watchpoint capability: LastChange
	// answers "when did this variable last change?" from the recording's
	// write index, without scanning states backwards.
	ReverseWatcher = core.ReverseWatcher
	// VarChange is one recorded variable mutation, as reported by
	// ReverseWatcher.LastChange.
	VarChange = core.VarChange
)

// Probes: the unified arming surface. Every breakpoint, watchpoint and
// tracked function is one Probe — a kind, a target and a shared option set
// (condition, ignore count, one-shot, maxdepth) — armed with Tracker.Arm.
// BreakBeforeLine/BreakBeforeFunc/TrackFunction/Watch remain as thin
// wrappers over the corresponding probe constructors.
type (
	// Probe is one typed arming request.
	Probe = core.Probe
	// ProbeKind discriminates line/function/watch/track probes.
	ProbeKind = core.ProbeKind
)

// Probe kinds.
const (
	ProbeLine  = core.ProbeLine
	ProbeFunc  = core.ProbeFunc
	ProbeWatch = core.ProbeWatch
	ProbeTrack = core.ProbeTrack
)

// Probe constructors.
var (
	// LineProbe builds a line-breakpoint probe for Arm.
	LineProbe = core.LineProbe
	// FuncProbe builds a function-breakpoint probe for Arm.
	FuncProbe = core.FuncProbe
	// WatchProbe builds a watchpoint probe for Arm.
	WatchProbe = core.WatchProbe
	// TrackProbe builds a function-tracking probe for Arm.
	TrackProbe = core.TrackProbe
)

// WatchWhen arms a conditional watchpoint: the watch reports a mutation of
// varID only while expr holds at the mutation site.
func WatchWhen(tr Tracker, varID, expr string) error {
	return tr.Arm(core.WatchProbe(varID, core.WithCondition(expr)))
}

// TrackWhen arms conditional function tracking: entries and exits of name
// report only while expr holds (`event == "call"` / `event == "return"`
// distinguish the two sites).
func TrackWhen(tr Tracker, name, expr string) error {
	return tr.Arm(core.TrackProbe(name, core.WithCondition(expr)))
}

// Interrupt asks tr's running inferior to pause at the next opportunity,
// reporting whether tr supports interruption. Safe to call from any
// goroutine — including a signal handler while another goroutine is blocked
// inside Resume; that Resume then returns normally with the tracker paused
// and PauseReason().Type == PauseInterrupted.
func Interrupt(tr Tracker) bool {
	in, ok := core.As[core.Interrupter](tr)
	if ok {
		in.Interrupt()
	}
	return ok
}

// Time travel helpers: typed accessors over the TimeTraveler and
// ReverseWatcher capabilities, so the common "rewind if you can" flows read
// as one call. Each returns ErrUnsupported (wrapped) when tr has no
// recording to navigate.

// errNoTimeTravel builds the failure for a tracker without the capability.
func errNoTimeTravel(op string) error {
	return core.WrapErr("easytracker", op, "", 0, core.ErrUnsupported)
}

// StepBack rewinds tr's inspection one recorded step.
func StepBack(tr Tracker) error {
	if tt, ok := core.As[core.TimeTraveler](tr); ok {
		return tt.StepBack()
	}
	return errNoTimeTravel("StepBack")
}

// ResumeBack runs tr's inspection backwards to the previous probe hit
// (breakpoint, watchpoint, tracked function), or to the recording's start.
func ResumeBack(tr Tracker) error {
	if tt, ok := core.As[core.TimeTraveler](tr); ok {
		return tt.ResumeBack()
	}
	return errNoTimeTravel("ResumeBack")
}

// NextBack rewinds one step at the current frame depth or above, skipping
// the inside of calls — Next, mirrored.
func NextBack(tr Tracker) error {
	if tt, ok := core.As[core.TimeTraveler](tr); ok {
		return tt.NextBack()
	}
	return errNoTimeTravel("NextBack")
}

// SeekTo jumps tr's inspection to recorded step n (0 is the entry pause).
func SeekTo(tr Tracker, n int) error {
	if tt, ok := core.As[core.TimeTraveler](tr); ok {
		return tt.SeekTo(n)
	}
	return errNoTimeTravel("SeekTo")
}

// ReplayPos reports tr's position in its recording — the current step index
// and the number of recorded steps. ok is false when tr records nothing.
func ReplayPos(tr Tracker) (pos, length int, ok bool) {
	tt, ok := core.As[core.TimeTraveler](tr)
	if !ok {
		return 0, 0, false
	}
	return tt.Pos(), tt.Len(), true
}

// LastChange answers the reverse watchpoint "when did varID last change
// before now?" from tr's recording.
func LastChange(tr Tracker, varID string) (*VarChange, error) {
	if rw, ok := core.As[core.ReverseWatcher](tr); ok {
		return rw.LastChange(varID)
	}
	return nil, errNoTimeTravel("LastChange")
}

// Capabilities probes a tracker for its optional extension interfaces, so
// tools can adapt or refuse early with a clear message:
//
//	caps := easytracker.Capabilities(tr)
//	if !caps.Registers { ... }
func Capabilities(tr Tracker) CapabilitySet { return core.CapabilitiesOf(tr) }

// As returns tr viewed as the extension interface T — the typed accessor
// that replaces raw type asserts on trackers:
//
//	regs, ok := easytracker.As[easytracker.RegisterInspector](tr)
func As[T any](tr Tracker) (T, bool) { return core.As[T](tr) }

// Errors shared by all trackers.
var (
	ErrNoProgram       = core.ErrNoProgram
	ErrNotStarted      = core.ErrNotStarted
	ErrExited          = core.ErrExited
	ErrUnknownVariable = core.ErrUnknownVariable
	ErrUnknownFunction = core.ErrUnknownFunction
	ErrBadLine         = core.ErrBadLine
	ErrUnsupported     = core.ErrUnsupported
	// ErrBadQuery classifies a probe condition or trace query that failed
	// to lex, parse or type-check; the wrapping error quotes the position.
	ErrBadQuery = core.ErrBadQuery
	// ErrCommandTimeout and ErrSessionLost classify debugger session
	// failures (hung command, crashed or corrupted connection).
	ErrCommandTimeout = core.ErrCommandTimeout
	ErrSessionLost    = core.ErrSessionLost
	// ErrInferiorCrash classifies an inferior that died of an internal
	// fault (an interpreter panic) rather than exiting; the TrackerError
	// wrapping it carries the inferior-language backtrace.
	ErrInferiorCrash = core.ErrInferiorCrash
	// ErrServerBusy and ErrServerDraining classify a remote server's
	// admission refusals (session limit reached; graceful shutdown in
	// progress). Both may carry a retry-after hint (RetryAfterError) that
	// the client's redial policy honors.
	ErrServerBusy     = core.ErrServerBusy
	ErrServerDraining = core.ErrServerDraining
)

// Typed errors: every tracker method reports failures as a *TrackerError
// carrying the operation, tracker kind, source position and — for session
// failures — the recovery outcome. errors.Is against the sentinels above
// sees through it.
type (
	// TrackerError is the structured error returned by tracker methods.
	TrackerError = core.TrackerError
	// RecoveryStatus reports what the session layer did about a failure.
	RecoveryStatus = core.RecoveryStatus
	// RetryAfterError decorates a retryable server refusal with the
	// server's suggested wait before the next attempt.
	RetryAfterError = core.RetryAfterError
	// RedialPolicy governs the remote client's reconnect loop: capped
	// exponential backoff with jitter, per-outage attempt and wall-clock
	// budgets, and a per-session outage cap. See WithRedialPolicy.
	RedialPolicy = core.RedialPolicy
)

// DefaultRedialPolicy is the reconnect policy used when LoadProgram got no
// WithRedialPolicy option.
func DefaultRedialPolicy() RedialPolicy { return core.DefaultRedialPolicy() }

// Recovery statuses.
const (
	RecoveryNone      = core.RecoveryNone
	RecoveryRestarted = core.RecoveryRestarted
	RecoveryFailed    = core.RecoveryFailed
)

// Asynchronous control helpers (the paper's §V future-work item): control
// commands return immediately and pauses arrive on an event channel.
type (
	// AsyncTracker wraps a Tracker with non-blocking control.
	AsyncTracker = core.AsyncTracker
	// AsyncEvent reports one completed asynchronous command.
	AsyncEvent = core.AsyncEvent
)

// NewAsync wraps a tracker for asynchronous control.
func NewAsync(tr Tracker) *AsyncTracker { return core.NewAsync(tr) }

// Observability: every built-in tracker carries an instrument panel —
// counters, latency histograms per operation, gauges and a flight recorder
// of the most recent tracker/debugger events. Instrumentation is off by
// default (enable with WithObservability); the MiniGDB tracker's flight
// recorder is always on, and its dump rides along in TrackerError.Trail
// when a debugger session is recovered or retired.
type (
	// Snapshot is the JSON-serializable instrument snapshot Stats returns.
	Snapshot = obs.Snapshot
	// LatencyStats summarizes one operation's latency histogram.
	LatencyStats = obs.LatencyStats
	// GaugeStats is a gauge's current value and high watermark.
	GaugeStats = obs.GaugeStats
	// ObsEvent is one flight-recorder entry.
	ObsEvent = obs.Event
	// ObsOption customizes WithObservability.
	ObsOption = core.ObsOption
	// StatsProvider is the capability interface behind Stats.
	StatsProvider = core.StatsProvider
)

// Stats returns tr's instrument snapshot (ok is false when tr has no
// instrument panel; the snapshot is then empty but non-nil):
//
//	snap, _ := easytracker.Stats(tr)
//	json.NewEncoder(os.Stderr).Encode(snap)
func Stats(tr Tracker) (*Snapshot, bool) { return core.StatsOf(tr) }

// Span tracing: where Stats answers "how often and how long on average",
// spans answer "what exactly happened inside THIS slow Resume" — one record
// per completed operation, linked into a tree by 64-bit trace/span/parent
// ids. Enable with WithObservability(WithSpanTracing(n)); across a remote
// session the trace context rides the wire, so the client's call span, the
// server's executor span and the backend's op span share one trace id and
// merge into one timeline (the et-spans tool renders the Chrome trace-event
// format Perfetto and chrome://tracing load directly).
type (
	// SpanRecord is one completed span.
	SpanRecord = obs.SpanRecord
	// SpanContext identifies a span within a trace.
	SpanContext = obs.SpanContext
	// SpanProvider is the capability interface behind Spans.
	SpanProvider = core.SpanProvider
	// SpanDump is one process's span export (what et-serve's /spans
	// endpoint serves).
	SpanDump = spanexport.Dump
)

// WithSpanTracing (an ObsOption for WithObservability) turns on span
// tracing, retaining the last n completed spans (n <= 0 picks the default
// capacity).
var WithSpanTracing = core.WithSpanTracing

// Spans returns tr's retained spans, ordered by start time (ok is false
// when tr records no spans).
func Spans(tr Tracker) ([]SpanRecord, bool) { return core.SpansOf(tr) }

// ExportSpans writes tr's spans as a JSON span dump, the unit et-spans
// merges into a fleet-wide timeline.
func ExportSpans(w io.Writer, proc string, tr Tracker) error {
	spans, _ := Spans(tr)
	return json.NewEncoder(w).Encode(&SpanDump{Proc: proc, Spans: spans})
}

// WriteChromeTrace merges span dumps into one Chrome trace-event document.
func WriteChromeTrace(w io.Writer, dumps ...*SpanDump) error {
	return spanexport.WriteChromeTrace(w, dumps...)
}

// New instantiates a tracker by kind ("minipy", "minigdb", "trace") — the
// paper's init_tracker.
func New(kind string) (Tracker, error) { return core.NewTracker(kind) }

// Kinds lists the registered tracker kinds.
func Kinds() []string { return core.TrackerKinds() }

// KindFor picks the tracker kind for a program path by extension, as the
// paper's Listing 1 does: MiniPy for .py, MiniGDB for everything else
// (.c, .s, .mobj).
func KindFor(path string) string {
	if strings.HasSuffix(path, ".py") {
		return "minipy"
	}
	return "minigdb"
}

// Remote sessions: a tracker server (et-serve) hosts many concurrent tracker
// sessions behind the wire protocol of internal/remote, and Connect returns
// a client Tracker that drives one of them. The remote tracker satisfies the
// same contract as a local one — same pause reasons, same State JSON, same
// typed errors under errors.Is — so tools, AsyncTracker and the capability
// API work unchanged; a lost connection surfaces through the session-loss
// model (ErrSessionLost, one reconnect-and-replay attempt, RecoveryRestarted
// / RecoveryFailed).
type (
	// RemoteTracker is the client side of a remote tracker session. Beyond
	// the Tracker contract it offers Close (release the connection; Terminate
	// alone keeps it open so Stats stays readable) and Capabilities.
	RemoteTracker = remote.Tracker
	// Server hosts tracker sessions for remote clients.
	Server = remote.Server
	// ServerOption customizes NewServer.
	ServerOption = remote.ServerOption
	// ConnectOption customizes Connect (transport dialer, dial timeout).
	ConnectOption = remote.ConnectOption
)

// Server options.
var (
	// WithMaxSessions caps the number of concurrently live sessions.
	WithMaxSessions = remote.WithMaxSessions
	// WithIdleTimeout evicts sessions idle longer than d.
	WithIdleTimeout = remote.WithIdleTimeout
	// WithSessionBudgets caps every session's resource budgets (tenant
	// isolation: the effective budgets are the tighter of the client's and
	// the server's).
	WithSessionBudgets = remote.WithSessionBudgets
	// WithSessionExecTimeout caps every session's execution timeout.
	WithSessionExecTimeout = remote.WithSessionExecTimeout
	// WithRecordingDisabled drops clients' time-travel recording requests
	// (tenant policy: recordings grow server memory per step); affected
	// sessions advertise TimeTravel off and clients degrade gracefully.
	WithRecordingDisabled = remote.WithRecordingDisabled
	// WithServerLog routes the server's diagnostic log lines.
	WithServerLog = remote.WithLogf
	// WithHeartbeat arms liveness heartbeats: clients ping every interval,
	// and a connection totally silent for misses intervals is evicted even
	// mid-command (silence from a beating client means the wire is dead).
	WithHeartbeat = remote.WithHeartbeat
	// WithRetryAfterHint attaches a retry-after hint to admission refusals
	// so policy-driven clients back off by the operator's chosen amount.
	WithRetryAfterHint = remote.WithRetryAfterHint
)

// Client connect options.
var (
	// WithDialer replaces the remote client's transport dialer — the seam
	// tests and chaos harnesses plug a virtual network into.
	WithDialer = remote.WithDialer
	// WithDialTimeout bounds each dial plus hello handshake, for Connect
	// and for every redial attempt.
	WithDialTimeout = remote.WithDialTimeout
)

// Connect dials a tracker server and opens one session of the given backend
// kind ("minipy", "minigdb", "trace"):
//
//	tr, err := easytracker.Connect("localhost:7070", "minipy")
//	...
//	tr.LoadProgram("prog.py")
func Connect(addr, kind string, opts ...ConnectOption) (*RemoteTracker, error) {
	return remote.Connect(addr, kind, opts...)
}

// NewServer builds a tracker server; run it with Serve/ListenAndServe and
// stop it with Shutdown (graceful drain) or Close.
func NewServer(opts ...ServerOption) *Server { return remote.NewServer(opts...) }
