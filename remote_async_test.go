package easytracker_test

import (
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"easytracker"
)

// AsyncTracker over a remote session: the wrapper must work unchanged when
// the tracker it owns drives an inferior on the other side of a socket —
// queued commands drain in order, Interrupt crosses both layers, and a
// server that dies mid-command produces an error event, never a hang.

func startAsyncServer(t *testing.T) (*easytracker.Server, string) {
	t.Helper()
	srv := easytracker.NewServer()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return srv, ln.Addr().String()
}

func recvEvent(t *testing.T, a *easytracker.AsyncTracker) easytracker.AsyncEvent {
	t.Helper()
	select {
	case ev := <-a.Events():
		return ev
	case <-time.After(10 * time.Second):
		t.Fatal("timeout waiting for async event")
		return easytracker.AsyncEvent{}
	}
}

// TestAsyncOverRemoteQueueDrain queues several commands at once against a
// remote session and checks they complete in order.
func TestAsyncOverRemoteQueueDrain(t *testing.T) {
	_, addr := startAsyncServer(t)
	tr, err := easytracker.Connect(addr, "minipy")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	var out strings.Builder
	if err := tr.LoadProgram("p.py",
		easytracker.WithSource("a = 1\nb = 2\nc = a + b\nprint(c)\n"),
		easytracker.WithStdout(&out)); err != nil {
		t.Fatal(err)
	}
	a := easytracker.NewAsync(tr)
	defer a.Close()

	a.Start()
	if ev := recvEvent(t, a); ev.Err != nil || ev.Reason.Type != easytracker.PauseEntry {
		t.Fatalf("start event %+v", ev)
	}
	a.Step()
	a.Step()
	a.Step()
	lines := []int{}
	for i := 0; i < 3; i++ {
		ev := recvEvent(t, a)
		if ev.Err != nil {
			t.Fatal(ev.Err)
		}
		lines = append(lines, ev.Reason.Line)
	}
	if lines[0] != 2 || lines[1] != 3 || lines[2] != 4 {
		t.Errorf("stepped lines = %v, want [2 3 4]", lines)
	}
	// Inspection through Do sees the remote state.
	err = a.Do(func(tk easytracker.Tracker) error {
		fr, err := tk.CurrentFrame()
		if err != nil {
			return err
		}
		if fr.Lookup("c") == nil {
			t.Error("c not visible at line 4")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Resume()
	ev := recvEvent(t, a)
	if ev.Err != nil || ev.Reason.Type != easytracker.PauseExited {
		t.Fatalf("final event %+v", ev)
	}
	if !strings.Contains(out.String(), "3") {
		t.Errorf("program output = %q, want it to contain 3", out.String())
	}
}

// TestAsyncOverRemoteServerDeath kills the server while a Resume is in
// flight: the tool must receive an error event carrying the session-loss
// error — not hang on a channel that never delivers.
func TestAsyncOverRemoteServerDeath(t *testing.T) {
	srv, addr := startAsyncServer(t)
	tr, err := easytracker.Connect(addr, "minipy")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if err := tr.LoadProgram("spin.py",
		easytracker.WithSource("n = 0\nwhile True:\n    n = n + 1\n")); err != nil {
		t.Fatal(err)
	}
	a := easytracker.NewAsync(tr)
	defer a.Close()

	a.Start()
	if ev := recvEvent(t, a); ev.Err != nil {
		t.Fatalf("start event %+v", ev)
	}
	a.Resume() // runs forever server-side
	time.Sleep(50 * time.Millisecond)
	srv.Close() // hard stop mid-command

	ev := recvEvent(t, a)
	if ev.Err == nil {
		t.Fatalf("event after server death has no error: %+v", ev)
	}
	var te *easytracker.TrackerError
	if !errors.As(ev.Err, &te) || te.Recovery != easytracker.RecoveryFailed {
		t.Fatalf("event error = %v, want RecoveryFailed", ev.Err)
	}
	if !errors.Is(ev.Err, easytracker.ErrSessionLost) {
		t.Error("event error lost its ErrSessionLost identity")
	}
}

// TestRemoteStatsServerSide: easytracker.Stats on a remote tracker returns
// the *server-side* backend's instrument panel through the capability chain
// — counters the client process never incremented.
func TestRemoteStatsServerSide(t *testing.T) {
	_, addr := startAsyncServer(t)
	tr, err := easytracker.Connect(addr, "minipy")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if err := tr.LoadProgram("count.py",
		easytracker.WithSource("total = 0\nk = 0\nwhile k < 5:\n    k = k + 1\ntotal = 1\n"),
		easytracker.WithObservability()); err != nil {
		t.Fatal(err)
	}
	if err := tr.Watch("::total"); err != nil {
		t.Fatal(err)
	}
	if err := tr.Start(); err != nil {
		t.Fatal(err)
	}
	for {
		if _, done := tr.ExitCode(); done {
			break
		}
		if err := tr.Resume(); err != nil {
			t.Fatal(err)
		}
	}
	snap, ok := easytracker.Stats(tr)
	if !ok {
		t.Fatal("remote tracker has no Stats capability")
	}
	if snap.Tracker != "minipy" {
		t.Errorf("snapshot tracker = %q, want minipy (the server-side backend)", snap.Tracker)
	}
	if snap.Counters["pauses"] == 0 {
		t.Error("server-side pause counter is zero; snapshot did not cross the wire")
	}
	if snap.Counters["watch_hits"] == 0 {
		t.Error("server-side watch_hits counter is zero")
	}
}
